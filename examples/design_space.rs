//! Design-space walk: sweep store-queue size and predictor geometry on one
//! workload and print how the paper's design point (64-entry SQ, 4K-entry
//! 2-way FSP/DDP) sits in the space. Also prints the Table 2 hardware
//! latencies for each SQ size, connecting the IPC study to the circuit
//! study.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use sqip_cacti::{SqGeometry, TechParams};
use sqip_core::{Processor, SimConfig, SqDesign};
use sqip_workloads::by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = by_name("gzip").expect("gzip is a Table 3 workload");
    let trace = spec.trace()?;
    let tech = TechParams::default();

    println!("workload: gzip model ({} dynamic instructions)\n", trace.len());
    println!(
        "{:>8} | {:>12} {:>12} | {:>9} {:>9}",
        "SQ size", "assoc ns(cy)", "index ns(cy)", "IPC assoc", "IPC index"
    );
    for sq in [16usize, 32, 64, 128] {
        let a = SqGeometry::associative(sq, 2);
        let i = SqGeometry::indexed(sq, 2);
        let ipc = |design| {
            let mut cfg = SimConfig::with_design(design);
            cfg.sq_size = sq;
            cfg.ddp.max_distance = sq as u64;
            Processor::new(cfg, &trace).run().ipc()
        };
        println!(
            "{:>8} | {:>7.2} ({:>2}) {:>7.2} ({:>2}) | {:>9.2} {:>9.2}",
            sq,
            tech.sq_latency_ns(a),
            tech.sq_cycles(a),
            tech.sq_latency_ns(i),
            tech.sq_cycles(i),
            ipc(SqDesign::Associative3),
            ipc(SqDesign::Indexed3FwdDly),
        );
    }

    println!("\nFSP capacity sweep (indexed-3-fwd+dly):");
    for entries in [512usize, 1024, 4096] {
        let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
        cfg.fsp.entries = entries;
        let stats = Processor::new(cfg, &trace).run();
        println!(
            "  {entries:>5}-entry FSP: IPC {:.2}, misfwd/1k {:.2}",
            stats.ipc(),
            stats.mis_forwards_per_1000()
        );
    }
    Ok(())
}
