//! Quickstart: build a small program, run it through the paper's indexed
//! store queue, and print the headline statistics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sqip_core::{Processor, SimConfig, SqDesign};
use sqip_isa::{trace_program, ProgramBuilder, Reg};
use sqip_types::DataSize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A classic store-load forwarding loop: every iteration spills a value
    // to memory and immediately reloads it (think register save/restore).
    let mut b = ProgramBuilder::new();
    let (ctr, v, t) = (Reg::new(1), Reg::new(2), Reg::new(3));
    b.load_imm(ctr, 2_000);
    b.load_imm(v, 7);
    let top = b.label("top");
    b.add_imm(v, v, 3);
    b.store(DataSize::Quad, v, Reg::ZERO, 0x100); // spill
    b.load(DataSize::Quad, t, Reg::ZERO, 0x100); // reload
    b.add(t, t, v); // consume
    b.add_imm(ctr, ctr, -1);
    b.branch_nz(ctr, top);
    b.halt();
    let program = b.build()?;

    // Functionally execute it into a golden trace...
    let trace = trace_program(&program, 1_000_000)?;
    println!(
        "program: {} static instructions, {} dynamic ({} loads, {} stores)",
        program.len(),
        trace.len(),
        trace.dynamic_loads(),
        trace.dynamic_stores()
    );

    // ...and replay it through two machines: the paper's speculative
    // indexed SQ and the idealised associative baseline.
    for design in [SqDesign::IdealOracle, SqDesign::Indexed3FwdDly] {
        let stats = Processor::new(SimConfig::with_design(design), &trace).run();
        println!(
            "\n{design}\n  cycles {:>8}   IPC {:.2}",
            stats.cycles,
            stats.ipc()
        );
        println!(
            "  loads forwarded from the SQ: {} of {} ({:.1}%)",
            stats.loads_forwarded,
            stats.loads,
            100.0 * stats.loads_forwarded as f64 / stats.loads as f64
        );
        println!(
            "  mis-forwardings: {} ({:.2} per 1000 loads), re-executions: {}",
            stats.mis_forwards,
            stats.mis_forwards_per_1000(),
            stats.re_executions
        );
    }
    Ok(())
}
