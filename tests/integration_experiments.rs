//! Miniature end-to-end versions of every experiment the harness
//! regenerates, asserting the paper's qualitative claims hold.

use sqip_bench::{geomean, shrink, sim, sim_with};
use sqip_cacti::{sq_energy_pj, table2_sq_rows, SqGeometry, TechParams};
use sqip_core::{SimConfig, SqDesign};
use sqip_predictors::TrainRatio;
use sqip_workloads::by_name;

/// Table 2: indexed SQ latency beats associative at every size/porting,
/// and the paper's headline 64-entry/2-port comparison holds.
#[test]
fn table2_claims() {
    let tech = TechParams::default();
    for row in table2_sq_rows(&tech) {
        assert!(row.index_2p.0 < row.assoc_2p.0);
    }
    assert!(tech.sq_cycles(SqGeometry::associative(64, 2)) >= 4);
    assert_eq!(tech.sq_cycles(SqGeometry::indexed(64, 2)), 2);
    let saving = 1.0
        - sq_energy_pj(SqGeometry::indexed(64, 2)) / sq_energy_pj(SqGeometry::associative(64, 2));
    assert!((saving - 0.30).abs() < 0.05, "~30% energy saving, got {saving:.2}");
}

/// Table 3: delay prediction cuts mis-forwarding by a large factor at a
/// small delayed-load cost (shrunk three-benchmark sample).
#[test]
fn table3_claims() {
    let mut fwd_rates = Vec::new();
    let mut dly_rates = Vec::new();
    let mut pct_delayed = Vec::new();
    for name in ["mesa.t", "eon.k", "twolf"] {
        let spec = shrink(by_name(name).unwrap(), 800);
        let fwd = sim(&spec, SqDesign::Indexed3Fwd);
        let dly = sim(&spec, SqDesign::Indexed3FwdDly);
        fwd_rates.push(fwd.mis_forwards_per_1000());
        dly_rates.push(dly.mis_forwards_per_1000());
        pct_delayed.push(dly.pct_loads_delayed());
    }
    let fwd_avg = fwd_rates.iter().sum::<f64>() / 3.0;
    let dly_avg = dly_rates.iter().sum::<f64>() / 3.0;
    assert!(fwd_avg > 3.0, "pathological sample must mis-forward, got {fwd_avg:.1}");
    assert!(
        dly_avg < fwd_avg / 2.0,
        "delay must cut mis-forwarding substantially: {dly_avg:.2} vs {fwd_avg:.2}"
    );
    assert!(
        pct_delayed.iter().all(|&p| p < 35.0),
        "delays stay bounded: {pct_delayed:?}"
    );
}

/// Figure 4: the design ordering on a mixed sample — ideal fastest,
/// indexed-with-delay competitive with the associative designs, raw
/// indexed worst.
#[test]
fn figure4_claims() {
    let names = ["gzip", "vortex", "gsm.e"];
    let mut rel = std::collections::HashMap::new();
    for design in [
        SqDesign::Associative3,
        SqDesign::Indexed3Fwd,
        SqDesign::Indexed3FwdDly,
    ] {
        let mut ratios = Vec::new();
        for name in names {
            let spec = shrink(by_name(name).unwrap(), 1500);
            let base = sim(&spec, SqDesign::IdealOracle).cycles as f64;
            ratios.push(sim(&spec, design).cycles as f64 / base);
        }
        rel.insert(design.label(), geomean(ratios));
    }
    let assoc3 = rel["associative-3"];
    let idx_fwd = rel["indexed-3-fwd"];
    let idx_dly = rel["indexed-3-fwd+dly"];
    assert!(assoc3 >= 0.99, "oracle is the floor, got {assoc3:.3}");
    assert!(
        idx_fwd > idx_dly,
        "delay prediction must improve raw indexed forwarding ({idx_fwd:.3} vs {idx_dly:.3})"
    );
    assert!(
        idx_dly < assoc3 + 0.06,
        "indexed+delay competitive with associative: {idx_dly:.3} vs {assoc3:.3}"
    );
}

/// Figure 5: a 512-entry FSP/DDP must not beat the default 4K tables on a
/// large-footprint workload, and the 0:1 DDP ratio degenerates to the raw
/// forwarding configuration.
#[test]
fn figure5_claims() {
    let spec = shrink(by_name("vortex").unwrap(), 1500);

    let run_cap = |entries: usize| {
        let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
        cfg.fsp.entries = entries;
        cfg.ddp.entries = entries;
        sim_with(&spec, cfg).cycles
    };
    assert!(run_cap(512) as f64 >= run_cap(4096) as f64 * 0.98);

    let mut zero_one = SimConfig::with_design(SqDesign::Indexed3FwdDly);
    zero_one.ddp.ratio = TrainRatio::new(0, 1);
    zero_one.ddp.threshold = 1;
    let degenerate = sim_with(&spec, zero_one);
    let raw = sim(&spec, SqDesign::Indexed3Fwd);
    assert_eq!(
        degenerate.loads_delayed, 0,
        "0:1 never learns delay, matching the raw Fwd configuration"
    );
    assert_eq!(degenerate.mis_forwards, raw.mis_forwards);
}
