//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! in-tree shim provides exactly the surface `sqip-workloads` uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over half-open integer ranges. The generator is a
//! fixed splitmix64, so workload generation is deterministic across
//! platforms and toolchains (a property the real `SmallRng` does not
//! guarantee across versions, and one the experiment harness relies on for
//! bit-identical parallel/serial sweeps).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self.next_u64(), &range)
    }
}

/// Integer types `gen_range` can sample.
pub trait SampleUniform: Copy {
    /// Maps 64 raw random bits into `range`.
    fn sample(bits: u64, range: &Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(bits: u64, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let off = (bits as u128) % span;
                (range.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    /// A small, fast, deterministic generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl crate::Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(0..4);
            assert!((0..4).contains(&v));
            let w: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
