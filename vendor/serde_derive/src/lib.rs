//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the sibling in-tree `serde` shim, with no syn/quote dependency: the
//! macro input is parsed directly from the token stream. Two item shapes
//! are supported, which cover every type sqip serializes:
//!
//! * **structs with named fields** — serialized as an object keyed by
//!   field name;
//! * **fieldless enums** — serialized as the variant name string.
//!
//! Anything else (tuple structs, data-carrying enums, generics) produces a
//! `compile_error!` pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a named struct or fieldless enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

/// Derives `serde::Deserialize` for a named struct or fieldless enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match (&item, which) {
        (Item::Struct { name, fields }, Which::Serialize) => struct_serialize(name, fields),
        (Item::Struct { name, fields }, Which::Deserialize) => struct_deserialize(name, fields),
        (Item::Enum { name, variants }, Which::Serialize) => enum_serialize(name, variants),
        (Item::Enum { name, variants }, Which::Deserialize) => enum_deserialize(name, variants),
    };
    code.parse().unwrap()
}

fn struct_serialize(name: &str, fields: &[String]) -> String {
    let pushes: String = fields
        .iter()
        .map(|f| {
            format!("fields.push(({f:?}.to_string(), ::serde::Serialize::serialize(&self.{f})));\n")
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn serialize(&self) -> ::serde::Value {{\n\
             let mut fields = Vec::new();\n\
             {pushes}\
             ::serde::Value::Object(fields)\n\
           }}\n\
         }}"
    )
}

fn struct_deserialize(name: &str, fields: &[String]) -> String {
    let inits: String = fields
        .iter()
        .map(|f| format!("{f}: ::serde::field(value, {f:?})?,\n"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
             ::std::result::Result::Ok({name} {{ {inits} }})\n\
           }}\n\
         }}"
    )
}

fn enum_serialize(name: &str, variants: &[String]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),\n"))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn serialize(&self) -> ::serde::Value {{\n\
             match self {{ {arms} }}\n\
           }}\n\
         }}"
    )
}

fn enum_deserialize(name: &str, variants: &[String]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),\n"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
             match value {{\n\
               ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {arms}\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(format!(\n\
                   \"unknown {name} variant `{{other}}`\"))),\n\
               }},\n\
               _ => ::std::result::Result::Err(::serde::Error::custom(\n\
                 \"expected a {name} variant string\")),\n\
             }}\n\
           }}\n\
         }}"
    )
}

/// Parses the derive input down to the item name and field/variant names.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: expected an item name".into()),
    };
    i += 1;

    // Find the body brace group; anything before it that looks like
    // generics is unsupported.
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.clone(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err("serde shim derive: generic types are not supported".into());
            }
            Some(_) => i += 1,
            None => return Err("serde shim derive: missing item body".into()),
        }
    };

    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_struct_fields(body.stream())?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_enum_variants(body.stream())?,
        }),
        other => Err(format!(
            "serde shim derive: unsupported item kind `{other}`"
        )),
    }
}

/// Field names of a named-field struct body.
fn parse_struct_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes and visibility.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tt) = tokens.get(i) else { break };
        let TokenTree::Ident(id) = tt else {
            return Err("serde shim derive: only named struct fields are supported".into());
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err("serde shim derive: only named struct fields are supported".into()),
        }
        // Skip the type up to the next top-level comma (angle brackets are
        // punct tokens, not groups, so track their depth).
        let mut angle_depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Variant names of a fieldless enum body.
fn parse_enum_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let Some(tt) = tokens.get(i) else { break };
        let TokenTree::Ident(id) = tt else {
            return Err("serde shim derive: unexpected token in enum body".into());
        };
        variants.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err("serde shim derive: only fieldless enum variants are supported".into());
            }
            Some(_) => {
                return Err("serde shim derive: unsupported enum variant shape".into());
            }
        }
    }
    Ok(variants)
}
