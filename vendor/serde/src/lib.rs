//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so this in-tree shim
//! provides the derive-based serialization surface sqip uses: a
//! [`Serialize`]/[`Deserialize`] trait pair over a JSON-shaped [`Value`]
//! model, `#[derive(Serialize, Deserialize)]` (from the sibling
//! `serde_derive` proc-macro crate, re-exported here exactly like real
//! serde's `derive` feature), and impls for the primitive, `String`,
//! `Option` and `Vec` types. The sibling `serde_json` crate renders
//! [`Value`] to JSON text and parses it back.
//!
//! Supported derive shapes — plain structs with named fields (serialized
//! as objects) and fieldless enums (serialized as their variant name) —
//! cover every type the simulator serializes.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A (de)serialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Wraps a failure message.
    #[must_use]
    pub fn custom(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts `self` to the dynamic value model.
    fn serialize(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, reporting shape mismatches as [`Error`].
    ///
    /// # Errors
    ///
    /// Returns an error if `value`'s shape does not match `Self`.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Extracts and deserializes an object field (used by derived impls).
///
/// # Errors
///
/// Returns an error if the field is missing or has the wrong shape.
pub fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    let v = value
        .get(name)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))?;
    T::deserialize(v).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = match *value {
                    Value::U64(v) => v,
                    Value::I64(v) if v >= 0 => v as u64,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let raw = u64::deserialize(value).map_err(|_| Error::custom("expected usize"))?;
        usize::try_from(raw).map_err(|_| Error::custom("out of range for usize"))
    }
}

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match *value {
                    Value::I64(v) => v,
                    Value::U64(v) => {
                        i64::try_from(v).map_err(|_| Error::custom("integer overflow"))?
                    }
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::F64(v) => Ok(v),
            Value::U64(v) => Ok(v as f64),
            Value::I64(v) => Ok(v as f64),
            _ => Err(Error::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-7i64).serialize()).unwrap(), -7);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()).unwrap(), v);
        let none: Option<u8> = None;
        assert_eq!(Option::<u8>::deserialize(&none.serialize()).unwrap(), None);
    }

    #[test]
    fn u64_preserves_values_beyond_f64_precision() {
        let big = u64::MAX - 1;
        assert_eq!(u64::deserialize(&big.serialize()).unwrap(), big);
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(u64::deserialize(&Value::Str("x".into())).is_err());
        assert!(bool::deserialize(&Value::U64(1)).is_err());
        assert!(field::<u64>(&Value::Object(vec![]), "missing").is_err());
    }
}
