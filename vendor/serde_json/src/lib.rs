//! Offline stand-in for the `serde_json` crate: renders the serde shim's
//! [`Value`] model to JSON text and parses JSON text back.

#![forbid(unsafe_code)]

pub use serde::Value;
use serde::{Deserialize, Error, Serialize};

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0)?;
    Ok(out)
}

/// Serializes `value` to two-space-indented JSON.
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0)?;
    Ok(out)
}

/// Converts any serializable value into the dynamic [`Value`] model.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.serialize()
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::deserialize(&value)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if !v.is_finite() {
                return Err(Error::custom("JSON cannot represent non-finite floats"));
            }
            // Keep an integral float recognizable as a float.
            if v.fract() == 0.0 && v.abs() < 1e15 {
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&format!("{v}"));
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )));
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = Value::Object(vec![
            (
                "name".to_string(),
                Value::Str("gzip \"fast\"\n".to_string()),
            ),
            ("cycles".to_string(), Value::U64(u64::MAX - 3)),
            ("delta".to_string(), Value::I64(-42)),
            ("ipc".to_string(), Value::F64(2.5)),
            ("whole".to_string(), Value::F64(3.0)),
            ("ok".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
            (
                "xs".to_string(),
                Value::Array(vec![Value::U64(1), Value::U64(2)]),
            ),
            ("empty".to_string(), Value::Array(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v, "via {text}");
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = to_string(&Value::F64(53.0)).unwrap();
        assert_eq!(text, "53.0");
        assert_eq!(from_str::<Value>(&text).unwrap(), Value::F64(53.0));
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("\"open").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            from_str::<Value>("\"a\\u00e9b\"").unwrap(),
            Value::Str("a\u{e9}b".to_string())
        );
    }
}
