//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this in-tree shim
//! implements the subset of proptest the sqip property tests use:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! * [`Strategy`] with `prop_map`, integer-range / tuple / [`Just`]
//!   strategies, [`prop_oneof!`], [`any`], `collection::vec` and
//!   `sample::Index`,
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike real proptest there is no shrinking: a failing case reports its
//! generated inputs and the deterministic case number instead. Generation
//! is a pure function of (test name, case index), so failures reproduce
//! exactly across runs and machines.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::rc::Rc;

/// Deterministic per-case random source (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one named test case: a pure function of the inputs.
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case) << 32) ^ u64::from(case),
        }
    }

    /// The next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sampling range");
        self.next_u64() % n
    }
}

/// A value generator. The shim generates eagerly and does not shrink.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Object-safe adapter so heterogeneous strategies can share a union.
#[doc(hidden)]
pub trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between strategies; built by [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<Rc<dyn DynStrategy<V>>>,
}

impl<V> Union<V> {
    /// Builds a union over `arms` (must be non-empty).
    #[must_use]
    pub fn new(arms: Vec<Rc<dyn DynStrategy<V>>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate_dyn(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64())
                    | (u128::from(rng.next_u64()) << 64))
                    % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over `T`'s whole domain.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of values from `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helpers (subset of `proptest::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Resolves the index against a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.raw % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index {
                raw: rng.next_u64(),
            }
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property, carried out of the test body by `prop_assert*`.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    #[must_use]
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(::std::rc::Rc::new($arm) as ::std::rc::Rc<dyn $crate::DynStrategy<_>>),+
        ])
    };
}

/// Fallible assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fallible equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

/// Fallible inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{}` != `{}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l
                    )));
                }
            }
        }
    };
}

/// Declares property tests. Each `fn` runs `config.cases` deterministic
/// cases; a failure panics with the case number and generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = format!("{:#?}", ($(&$arg,)+));
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\ninputs: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e,
                        __inputs
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let s = (0u64..100, any::<bool>());
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u64..50, y in -3i64..3) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((-3..3).contains(&y));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u32..4).prop_map(|x| x * 2),
            Just(99u32),
        ]) {
            prop_assert!(v == 99u32 || v < 8u32, "got {}", v);
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn sample_index_resolves(ix in any::<crate::sample::Index>()) {
            prop_assert!(ix.index(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_and_inputs() {
        proptest! {
            fn always_fails(_x in 0u8..4) {
                prop_assert!(false, "doomed");
            }
        }
        always_fails();
    }
}
