//! Property-based tests: the store queue's associative search and indexed
//! read must agree with a brute-force reference model on arbitrary store
//! sets.

use proptest::prelude::*;
use sqip_queues::{SqSearch, StoreQueue};
use sqip_types::{Addr, AddrSpan, DataSize, Pc, Ssn};

fn size_strategy() -> impl Strategy<Value = DataSize> {
    prop_oneof![
        Just(DataSize::Byte),
        Just(DataSize::Half),
        Just(DataSize::Word),
        Just(DataSize::Quad),
    ]
}

/// (address, size, data, executed) per store, ages implicit in order.
fn stores_strategy() -> impl Strategy<Value = Vec<(u64, DataSize, u64, bool)>> {
    proptest::collection::vec(
        (0u64..64, size_strategy(), any::<u64>(), any::<bool>()),
        1..8,
    )
}

/// Brute-force reference: youngest executed store with ssn <= bound whose
/// span overlaps the load span.
fn reference_search(
    stores: &[(u64, DataSize, u64, bool)],
    bound: usize,
    load: AddrSpan,
    load_size: DataSize,
) -> SqSearch {
    for (idx, &(a, s, d, executed)) in stores.iter().enumerate().rev() {
        let ssn = Ssn::new(idx as u64 + 1);
        if ssn > Ssn::new(bound as u64) || !executed {
            continue;
        }
        let span = Addr::new(a).span(s);
        if !span.overlaps(load) {
            continue;
        }
        if span.contains(load) && load_size.bytes() <= span.len() {
            let shift = (load.base().0 - span.base().0) * 8;
            return SqSearch::Forward {
                ssn,
                value: load_size.truncate(d >> shift),
            };
        }
        return SqSearch::Partial { ssn };
    }
    SqSearch::Miss
}

proptest! {
    #[test]
    fn search_matches_reference(
        stores in stores_strategy(),
        load_addr in 0u64..64,
        load_size in size_strategy(),
        bound_sel in any::<proptest::sample::Index>(),
    ) {
        let mut sq = StoreQueue::new(16);
        for (idx, &(a, s, d, executed)) in stores.iter().enumerate() {
            let ssn = Ssn::new(idx as u64 + 1);
            sq.allocate(ssn, Pc::from_index(idx)).unwrap();
            if executed {
                sq.write(ssn, Addr::new(a).span(s), s.truncate(d));
            }
        }
        let bound = bound_sel.index(stores.len() + 1); // 0..=len
        let load = Addr::new(load_addr).span(load_size);
        let got = sq.search(Ssn::new(bound as u64), load, load_size);
        // Reference works on truncated data like the SQ write path does.
        let truncated: Vec<_> = stores
            .iter()
            .map(|&(a, s, d, e)| (a, s, s.truncate(d), e))
            .collect();
        let want = reference_search(&truncated, bound, load, load_size);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn indexed_read_agrees_with_search_on_correct_prediction(
        stores in stores_strategy(),
        load_addr in 0u64..64,
        load_size in size_strategy(),
    ) {
        let mut sq = StoreQueue::new(16);
        for (idx, &(a, s, d, executed)) in stores.iter().enumerate() {
            let ssn = Ssn::new(idx as u64 + 1);
            sq.allocate(ssn, Pc::from_index(idx)).unwrap();
            if executed {
                sq.write(ssn, Addr::new(a).span(s), s.truncate(d));
            }
        }
        let load = Addr::new(load_addr).span(load_size);
        // If the associative search forwards from ssn S, then an indexed
        // read predicting exactly S must return the same value.
        let bound = Ssn::new(stores.len() as u64);
        if let SqSearch::Forward { ssn, value } = sq.search(bound, load, load_size) {
            prop_assert_eq!(sq.indexed_read(ssn, load, load_size), Some(value));
        }
    }

    #[test]
    fn squash_then_refill_is_clean(
        stores in stores_strategy(),
        squash_at in 1u64..8,
    ) {
        let mut sq = StoreQueue::new(16);
        for (idx, &(a, s, d, _)) in stores.iter().enumerate() {
            let ssn = Ssn::new(idx as u64 + 1);
            sq.allocate(ssn, Pc::from_index(idx)).unwrap();
            sq.write(ssn, Addr::new(a).span(s), d);
        }
        sq.squash_from(Ssn::new(squash_at));
        let expected = (squash_at as usize - 1).min(stores.len());
        prop_assert_eq!(sq.len(), expected);
        // Re-allocation from the squash point must succeed densely.
        let next = Ssn::new(expected as u64 + 1);
        if !sq.is_full() {
            sq.allocate(next, Pc::from_index(99)).unwrap();
            prop_assert!(sq.entry(next).is_some());
        }
    }
}
