//! The age-ordered store queue, with both associative and indexed access.

use std::collections::VecDeque;

use sqip_types::{AddrSpan, DataSize, Pc, Ssn};

use crate::FullError;

/// One in-flight store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SqEntry {
    /// The store's SSN (names the entry; low bits are its SQ index).
    pub ssn: Ssn,
    /// The store's static PC.
    pub pc: Pc,
    /// Address span, known once the store executes.
    pub span: Option<AddrSpan>,
    /// Store data (valid once executed), truncated to the access width.
    pub data: u64,
}

impl SqEntry {
    /// Whether the store has executed (address and data known).
    #[must_use]
    pub fn is_executed(&self) -> bool {
        self.span.is_some()
    }
}

/// Outcome of an associative SQ search for a load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqSearch {
    /// No older executed store overlaps the load.
    Miss,
    /// The youngest overlapping older store fully covers the load: forward.
    Forward {
        /// The forwarding store.
        ssn: Ssn,
        /// The load's value, extracted from the store's data.
        value: u64,
    },
    /// The youngest overlapping older store only partially covers the load;
    /// a single SQ entry cannot supply the value (load must stall until the
    /// store commits).
    Partial {
        /// The partially-overlapping store.
        ssn: Ssn,
    },
}

/// An age-ordered store queue.
///
/// Entries are held oldest-first; allocation at rename appends, commit pops
/// the head, and a mis-forwarding flush truncates the tail. SSNs are dense
/// within the queue, so entry lookup by SSN is O(1).
#[derive(Debug, Clone)]
pub struct StoreQueue {
    entries: VecDeque<SqEntry>,
    capacity: usize,
    /// In-flight stores whose address is still unknown. Maintained so the
    /// per-load "any older store with an unknown address?" question — the
    /// unfiltered re-execution trigger, asked on every load execution —
    /// answers `false` in O(1) in the common all-executed case.
    unexecuted: usize,
}

impl StoreQueue {
    /// Builds an SQ with `capacity` entries (64 in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> StoreQueue {
        assert!(capacity > 0, "store queue must have capacity");
        StoreQueue {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            unexecuted: 0,
        }
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of in-flight stores.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the queue is full (rename must stall).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Allocates an entry for a renaming store.
    ///
    /// # Errors
    ///
    /// Returns [`FullError`] when at capacity.
    ///
    /// # Panics
    ///
    /// Panics if `ssn` is not one greater than the current tail (SSNs must
    /// stay dense and age-ordered).
    pub fn allocate(&mut self, ssn: Ssn, pc: Pc) -> Result<(), FullError> {
        if self.is_full() {
            return Err(FullError);
        }
        if let Some(tail) = self.entries.back() {
            assert_eq!(
                tail.ssn.next(),
                ssn,
                "SQ allocation must be age-ordered and dense"
            );
        }
        self.entries.push_back(SqEntry {
            ssn,
            pc,
            span: None,
            data: 0,
        });
        self.unexecuted += 1;
        Ok(())
    }

    /// Records an executing store's address and data.
    ///
    /// # Panics
    ///
    /// Panics if `ssn` is not in flight.
    pub fn write(&mut self, ssn: Ssn, span: AddrSpan, data: u64) {
        let first_write = {
            let e = self.entry_mut(ssn).expect("store not in flight");
            let first = e.span.is_none();
            e.span = Some(span);
            e.data = data;
            first
        };
        // (Guarded so a re-executed store does not double-count.)
        if first_write {
            debug_assert!(self.unexecuted > 0);
            self.unexecuted -= 1;
        }
    }

    /// The in-flight entry named by `ssn`, if present.
    #[must_use]
    pub fn entry(&self, ssn: Ssn) -> Option<&SqEntry> {
        let head = self.entries.front()?.ssn;
        if ssn < head {
            return None;
        }
        let idx = (ssn.0 - head.0) as usize;
        self.entries.get(idx)
    }

    /// Whether the store named by `ssn` is in flight and has executed.
    #[must_use]
    pub fn is_executed(&self, ssn: Ssn) -> bool {
        self.entry(ssn).is_some_and(SqEntry::is_executed)
    }

    /// Pops the oldest store for commit.
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty or the head has not executed.
    pub fn commit_head(&mut self) -> SqEntry {
        let e = self.entries.pop_front().expect("commit from empty SQ");
        assert!(e.is_executed(), "committing a store that never executed");
        e
    }

    /// Removes all stores with `ssn >= from` (mis-forwarding flush).
    pub fn squash_from(&mut self, from: Ssn) {
        while self.entries.back().is_some_and(|e| e.ssn >= from) {
            let e = self.entries.pop_back().expect("back checked above");
            if !e.is_executed() {
                self.unexecuted -= 1;
            }
        }
    }

    /// Fully-associative search-and-read: the youngest *executed* store
    /// with `ssn <= older_than` whose span overlaps the load's. This is the
    /// CAM + priority-encoder operation of a conventional SQ.
    ///
    /// `older_than` is the SSN of the youngest store preceding the load in
    /// program order (stores younger than the load must not match).
    #[must_use]
    pub fn search(&self, older_than: Ssn, load_span: AddrSpan, load_size: DataSize) -> SqSearch {
        for e in self.entries.iter().rev() {
            if e.ssn > older_than {
                continue;
            }
            let Some(span) = e.span else { continue };
            if !span.overlaps(load_span) {
                continue;
            }
            if span.contains(load_span) && load_size.bytes() <= span.len() {
                return SqSearch::Forward {
                    ssn: e.ssn,
                    value: extract(span, e.data, load_span, load_size),
                };
            }
            return SqSearch::Partial { ssn: e.ssn };
        }
        SqSearch::Miss
    }

    /// The paper's speculative indexed access: read exactly the entry at
    /// `SSN mod capacity` and forward only if (1) that slot currently holds
    /// the predicted SSN, (2) the store has executed, (3) its span covers
    /// the load, and (4) the load width is ≤ the store width. Returns the
    /// forwarded value, or `None` (load reads the cache).
    #[must_use]
    pub fn indexed_read(
        &self,
        predicted: Ssn,
        load_span: AddrSpan,
        load_size: DataSize,
    ) -> Option<u64> {
        let e = self.entry(predicted)?;
        debug_assert_eq!(
            e.ssn.sq_index(self.capacity),
            predicted.sq_index(self.capacity),
            "entry lookup and SQ indexing agree"
        );
        let span = e.span?;
        if span.contains(load_span) && load_size.bytes() <= span.len() {
            Some(extract(span, e.data, load_span, load_size))
        } else {
            None
        }
    }

    /// Whether any older store (`ssn <= older_than`) has not yet executed —
    /// the classic "unknown address" condition that triggers unfiltered
    /// re-execution in the Cain–Lipasti scheme.
    #[must_use]
    pub fn has_unexecuted_older(&self, older_than: Ssn) -> bool {
        if self.unexecuted == 0 {
            return false; // O(1) fast path: everything has executed
        }
        // Age order means the first unexecuted entry carries the minimum
        // unexecuted SSN; younger entries can only have larger SSNs, so
        // the scan stops there.
        self.entries
            .iter()
            .find(|e| !e.is_executed())
            .is_some_and(|e| e.ssn <= older_than)
    }

    /// Iterates over in-flight stores, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &SqEntry> {
        self.entries.iter()
    }

    /// Drops everything (SSN wrap-around drain; only legal once all stores
    /// have committed, which the drain protocol guarantees).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.unexecuted = 0;
    }

    fn entry_mut(&mut self, ssn: Ssn) -> Option<&mut SqEntry> {
        let head = self.entries.front()?.ssn;
        if ssn < head {
            return None;
        }
        let idx = (ssn.0 - head.0) as usize;
        self.entries.get_mut(idx)
    }
}

sqip_snapshot::snapshot_struct!(SqEntry {
    ssn,
    pc,
    span,
    data
});
sqip_snapshot::snapshot_struct!(StoreQueue {
    entries,
    capacity,
    unexecuted,
});

/// Extracts the load's bytes from a covering store's data.
fn extract(store_span: AddrSpan, store_data: u64, load_span: AddrSpan, load_size: DataSize) -> u64 {
    debug_assert!(store_span.contains(load_span));
    let shift = (load_span.base().0 - store_span.base().0) * 8;
    load_size.truncate(store_data >> shift)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqip_types::Addr;

    fn sq_with(entries: &[(u64, u64, DataSize, u64)]) -> StoreQueue {
        // (ssn, addr, size, data) — allocates and executes each store.
        let mut sq = StoreQueue::new(8);
        for &(ssn, addr, size, data) in entries {
            sq.allocate(Ssn::new(ssn), Pc::new(ssn * 4)).unwrap();
            sq.write(Ssn::new(ssn), Addr::new(addr).span(size), data);
        }
        sq
    }

    #[test]
    fn allocate_execute_commit_cycle() {
        let mut sq = StoreQueue::new(4);
        sq.allocate(Ssn::new(1), Pc::new(0)).unwrap();
        assert!(!sq.is_executed(Ssn::new(1)));
        sq.write(Ssn::new(1), Addr::new(0x10).span(DataSize::Quad), 99);
        assert!(sq.is_executed(Ssn::new(1)));
        let e = sq.commit_head();
        assert_eq!(e.ssn, Ssn::new(1));
        assert_eq!(e.data, 99);
        assert!(sq.is_empty());
    }

    #[test]
    fn capacity_limits_allocation() {
        let mut sq = StoreQueue::new(2);
        sq.allocate(Ssn::new(1), Pc::new(0)).unwrap();
        sq.allocate(Ssn::new(2), Pc::new(4)).unwrap();
        assert!(sq.is_full());
        assert_eq!(sq.allocate(Ssn::new(3), Pc::new(8)), Err(FullError));
    }

    #[test]
    #[should_panic(expected = "age-ordered")]
    fn allocation_must_be_dense() {
        let mut sq = StoreQueue::new(4);
        sq.allocate(Ssn::new(1), Pc::new(0)).unwrap();
        let _ = sq.allocate(Ssn::new(3), Pc::new(8));
    }

    #[test]
    fn search_finds_youngest_older_match() {
        let sq = sq_with(&[
            (1, 0x100, DataSize::Quad, 0xAAAA),
            (2, 0x100, DataSize::Quad, 0xBBBB),
            (3, 0x100, DataSize::Quad, 0xCCCC),
        ]);
        // Load older than store 3: must get store 2's value.
        let r = sq.search(
            Ssn::new(2),
            Addr::new(0x100).span(DataSize::Quad),
            DataSize::Quad,
        );
        assert_eq!(
            r,
            SqSearch::Forward {
                ssn: Ssn::new(2),
                value: 0xBBBB
            }
        );
    }

    #[test]
    fn search_ignores_younger_stores() {
        let sq = sq_with(&[(5, 0x100, DataSize::Quad, 1)]);
        let r = sq.search(
            Ssn::new(4),
            Addr::new(0x100).span(DataSize::Quad),
            DataSize::Quad,
        );
        assert_eq!(r, SqSearch::Miss, "store 5 is younger than the load");
    }

    #[test]
    fn search_ignores_unexecuted_stores() {
        let mut sq = StoreQueue::new(4);
        sq.allocate(Ssn::new(1), Pc::new(0)).unwrap(); // never executes
        let r = sq.search(
            Ssn::new(1),
            Addr::new(0x100).span(DataSize::Quad),
            DataSize::Quad,
        );
        assert_eq!(r, SqSearch::Miss);
        assert!(sq.has_unexecuted_older(Ssn::new(1)));
        assert!(!sq.has_unexecuted_older(Ssn::NONE));
    }

    #[test]
    fn search_partial_overlap_stalls() {
        // Store writes [0x100,0x104); load wants [0x102,0x10A) — overlap
        // without containment.
        let sq = sq_with(&[(1, 0x100, DataSize::Word, 0xAABBCCDD)]);
        let r = sq.search(
            Ssn::new(1),
            Addr::new(0x102).span(DataSize::Quad),
            DataSize::Quad,
        );
        assert_eq!(r, SqSearch::Partial { ssn: Ssn::new(1) });
    }

    #[test]
    fn forwarded_value_respects_offset_and_width() {
        // Quad store of 0x1122334455667788 at 0x100; byte load at 0x102
        // must see 0x66 (little-endian byte 2).
        let sq = sq_with(&[(1, 0x100, DataSize::Quad, 0x1122_3344_5566_7788)]);
        let r = sq.search(
            Ssn::new(1),
            Addr::new(0x102).span(DataSize::Byte),
            DataSize::Byte,
        );
        assert_eq!(
            r,
            SqSearch::Forward {
                ssn: Ssn::new(1),
                value: 0x66
            }
        );
    }

    #[test]
    fn indexed_read_hits_on_correct_prediction() {
        let sq = sq_with(&[(1, 0x100, DataSize::Quad, 42)]);
        let v = sq.indexed_read(
            Ssn::new(1),
            Addr::new(0x100).span(DataSize::Quad),
            DataSize::Quad,
        );
        assert_eq!(v, Some(42));
    }

    #[test]
    fn indexed_read_address_mismatch_reads_cache() {
        let sq = sq_with(&[(1, 0x200, DataSize::Quad, 42)]);
        let v = sq.indexed_read(
            Ssn::new(1),
            Addr::new(0x100).span(DataSize::Quad),
            DataSize::Quad,
        );
        assert_eq!(v, None, "address mismatch: load uses the cache value");
    }

    #[test]
    fn indexed_read_of_departed_store_misses() {
        let mut sq = sq_with(&[
            (1, 0x100, DataSize::Quad, 42),
            (2, 0x100, DataSize::Quad, 43),
        ]);
        sq.commit_head();
        let v = sq.indexed_read(
            Ssn::new(1),
            Addr::new(0x100).span(DataSize::Quad),
            DataSize::Quad,
        );
        assert_eq!(v, None, "committed store no longer forwards from the SQ");
    }

    #[test]
    fn indexed_read_width_rule() {
        // Word store; quad load at same base — load width > store width.
        let sq = sq_with(&[(1, 0x100, DataSize::Word, 42)]);
        let v = sq.indexed_read(
            Ssn::new(1),
            Addr::new(0x100).span(DataSize::Quad),
            DataSize::Quad,
        );
        assert_eq!(v, None);
        // Byte load within the word store forwards.
        let v = sq.indexed_read(
            Ssn::new(1),
            Addr::new(0x101).span(DataSize::Byte),
            DataSize::Byte,
        );
        assert_eq!(v, Some(0));
    }

    #[test]
    fn squash_from_truncates_tail() {
        let mut sq = sq_with(&[
            (1, 0x100, DataSize::Quad, 1),
            (2, 0x100, DataSize::Quad, 2),
            (3, 0x100, DataSize::Quad, 3),
        ]);
        sq.squash_from(Ssn::new(2));
        assert_eq!(sq.len(), 1);
        assert!(sq.entry(Ssn::new(2)).is_none());
        assert!(sq.entry(Ssn::new(1)).is_some());
        // The queue accepts re-allocation of the squashed SSNs.
        sq.allocate(Ssn::new(2), Pc::new(8)).unwrap();
        assert_eq!(sq.len(), 2);
    }

    #[test]
    fn entry_lookup_by_ssn_after_commits() {
        let mut sq = sq_with(&[
            (1, 0x100, DataSize::Quad, 1),
            (2, 0x110, DataSize::Quad, 2),
            (3, 0x120, DataSize::Quad, 3),
        ]);
        sq.commit_head();
        assert_eq!(sq.entry(Ssn::new(1)), None);
        assert_eq!(sq.entry(Ssn::new(3)).unwrap().data, 3);
    }

    #[test]
    #[should_panic(expected = "never executed")]
    fn committing_unexecuted_store_panics() {
        let mut sq = StoreQueue::new(4);
        sq.allocate(Ssn::new(1), Pc::new(0)).unwrap();
        let _ = sq.commit_head();
    }
}
