//! A generic capacity-limited in-flight window (ROB, issue queue).

use std::collections::VecDeque;

use crate::FullError;

/// An age-ordered, capacity-limited window of in-flight items.
///
/// Used for the reorder buffer (allocate at rename, retire at commit,
/// truncate on flush) and anywhere else a bounded in-order buffer is
/// needed.
#[derive(Debug, Clone)]
pub struct Window<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> Window<T> {
    /// Builds a window holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Window<T> {
        assert!(capacity > 0, "window must have capacity");
        Window {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently in flight.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the window is full.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Appends at the tail (youngest position).
    ///
    /// # Errors
    ///
    /// Returns the item back inside [`FullError`]-like semantics — the
    /// window is unchanged when full.
    pub fn push_back(&mut self, item: T) -> Result<(), FullError> {
        if self.is_full() {
            return Err(FullError);
        }
        self.items.push_back(item);
        Ok(())
    }

    /// Removes and returns the oldest item.
    #[must_use]
    pub fn pop_front(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// The oldest item.
    #[must_use]
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Mutable access to the oldest item.
    #[must_use]
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.items.front_mut()
    }

    /// The youngest item.
    #[must_use]
    pub fn back(&self) -> Option<&T> {
        self.items.back()
    }

    /// Indexed access (0 = oldest).
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&T> {
        self.items.get(index)
    }

    /// Mutable indexed access (0 = oldest).
    #[must_use]
    pub fn get_mut(&mut self, index: usize) -> Option<&mut T> {
        self.items.get_mut(index)
    }

    /// Keeps the oldest `len` items, discarding the younger tail (flush).
    pub fn truncate(&mut self, len: usize) {
        self.items.truncate(len);
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterates oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Mutable iteration oldest → youngest.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.items.iter_mut()
    }
}

impl<T: sqip_snapshot::Snapshot> sqip_snapshot::Snapshot for Window<T> {
    fn save(&self, w: &mut sqip_snapshot::SnapWriter) -> Result<(), sqip_snapshot::SnapError> {
        self.items.save(w)?;
        self.capacity.save(w)
    }
    fn load(r: &mut sqip_snapshot::SnapReader) -> Result<Window<T>, sqip_snapshot::SnapError> {
        let items = VecDeque::<T>::load(r)?;
        let capacity = usize::load(r)?;
        if capacity == 0 || items.len() > capacity {
            return Err(sqip_snapshot::SnapError::Corrupt(format!(
                "window of {} items with capacity {capacity}",
                items.len()
            )));
        }
        Ok(Window { items, capacity })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut w = Window::new(3);
        w.push_back(1).unwrap();
        w.push_back(2).unwrap();
        assert_eq!(w.pop_front(), Some(1));
        assert_eq!(w.front(), Some(&2));
        assert_eq!(w.back(), Some(&2));
    }

    #[test]
    fn capacity_enforced() {
        let mut w = Window::new(2);
        w.push_back(1).unwrap();
        w.push_back(2).unwrap();
        assert!(w.is_full());
        assert_eq!(w.push_back(3), Err(FullError));
        assert_eq!(w.len(), 2, "failed push leaves window unchanged");
    }

    #[test]
    fn truncate_flushes_tail() {
        let mut w = Window::new(4);
        for i in 0..4 {
            w.push_back(i).unwrap();
        }
        w.truncate(1);
        assert_eq!(w.len(), 1);
        assert_eq!(w.front(), Some(&0));
    }

    #[test]
    fn indexed_and_iter_access() {
        let mut w = Window::new(4);
        for i in 10..13 {
            w.push_back(i).unwrap();
        }
        assert_eq!(w.get(0), Some(&10));
        assert_eq!(w.get(2), Some(&12));
        assert_eq!(w.get(3), None);
        let all: Vec<i32> = w.iter().copied().collect();
        assert_eq!(all, vec![10, 11, 12]);
        for x in w.iter_mut() {
            *x += 1;
        }
        assert_eq!(w.get(0), Some(&11));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _: Window<u8> = Window::new(0);
    }
}
