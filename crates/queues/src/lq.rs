//! The load queue with Store Vulnerability Window fields.
//!
//! Following Roth (ISCA'05) and the paper's baseline, the LQ has **no
//! address CAM**: memory ordering is verified by SVW-filtered in-order
//! re-execution before commit. Each entry therefore carries the executed
//! value and the SVW SSN instead of participating in associative search.

use std::collections::VecDeque;

use sqip_types::{AddrSpan, Pc, Seq, Ssn};

use crate::FullError;

/// One in-flight load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LqEntry {
    /// The load's dynamic sequence number.
    pub seq: Seq,
    /// The load's static PC.
    pub pc: Pc,
    /// Address span, known once the load executes.
    pub span: Option<AddrSpan>,
    /// The value the load obtained at execute (SQ or cache).
    pub value: u64,
    /// SVW field: the SSN of the youngest older store the load is *not*
    /// vulnerable to — the forwarding store's SSN, or `SSNcmt` at execute
    /// time if the load got its value from the cache.
    pub svw: Ssn,
    /// Whether the load executed in the presence of an older store with an
    /// unknown address (the unfiltered re-execution trigger).
    pub older_store_unknown: bool,
}

impl LqEntry {
    /// Whether the load has executed.
    #[must_use]
    pub fn is_executed(&self) -> bool {
        self.span.is_some()
    }
}

/// A capacity-limited, age-ordered load queue.
#[derive(Debug, Clone)]
pub struct LoadQueue {
    entries: VecDeque<LqEntry>,
    capacity: usize,
}

impl LoadQueue {
    /// Builds an LQ with `capacity` entries (128 in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> LoadQueue {
        assert!(capacity > 0, "load queue must have capacity");
        LoadQueue {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of in-flight loads.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the queue is full (rename must stall).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Allocates an entry for a renaming load.
    ///
    /// # Errors
    ///
    /// Returns [`FullError`] when at capacity.
    ///
    /// # Panics
    ///
    /// Panics if allocation is not in age order.
    pub fn allocate(&mut self, seq: Seq, pc: Pc) -> Result<(), FullError> {
        if self.is_full() {
            return Err(FullError);
        }
        if let Some(tail) = self.entries.back() {
            assert!(
                tail.seq.is_older_than(seq),
                "LQ allocation must be age-ordered"
            );
        }
        self.entries.push_back(LqEntry {
            seq,
            pc,
            span: None,
            value: 0,
            svw: Ssn::NONE,
            older_store_unknown: false,
        });
        Ok(())
    }

    /// Records an executing load's address, value, and SVW metadata.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not in flight.
    pub fn record_execution(
        &mut self,
        seq: Seq,
        span: AddrSpan,
        value: u64,
        svw: Ssn,
        older_store_unknown: bool,
    ) {
        let e = self.entry_mut(seq).expect("load not in flight");
        e.span = Some(span);
        e.value = value;
        e.svw = svw;
        e.older_store_unknown = older_store_unknown;
    }

    /// The in-flight entry for `seq`, if present.
    #[must_use]
    pub fn entry(&self, seq: Seq) -> Option<&LqEntry> {
        self.entries
            .binary_search_by_key(&seq, |e| e.seq)
            .ok()
            .and_then(|i| self.entries.get(i))
    }

    /// Pops the oldest load for commit.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn commit_head(&mut self) -> LqEntry {
        self.entries.pop_front().expect("commit from empty LQ")
    }

    /// Iterates over in-flight loads, oldest first — the CAM search path a
    /// conventional LQ performs on every store execution.
    pub fn iter(&self) -> impl Iterator<Item = &LqEntry> {
        self.entries.iter()
    }

    /// Removes all loads with `seq >= from` (flush).
    pub fn squash_from(&mut self, from: Seq) {
        while self.entries.back().is_some_and(|e| e.seq >= from) {
            self.entries.pop_back();
        }
    }

    /// Drops everything (drain).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    fn entry_mut(&mut self, seq: Seq) -> Option<&mut LqEntry> {
        self.entries
            .binary_search_by_key(&seq, |e| e.seq)
            .ok()
            .and_then(move |i| self.entries.get_mut(i))
    }
}

sqip_snapshot::snapshot_struct!(LqEntry {
    seq,
    pc,
    span,
    value,
    svw,
    older_store_unknown,
});
sqip_snapshot::snapshot_struct!(LoadQueue { entries, capacity });

#[cfg(test)]
mod tests {
    use super::*;
    use sqip_types::{Addr, DataSize};

    #[test]
    fn allocate_execute_commit() {
        let mut lq = LoadQueue::new(4);
        lq.allocate(Seq(10), Pc::new(0x40)).unwrap();
        assert!(!lq.entry(Seq(10)).unwrap().is_executed());
        lq.record_execution(
            Seq(10),
            Addr::new(0x100).span(DataSize::Quad),
            7,
            Ssn::new(3),
            false,
        );
        let e = lq.commit_head();
        assert_eq!(e.value, 7);
        assert_eq!(e.svw, Ssn::new(3));
        assert!(lq.is_empty());
    }

    #[test]
    fn capacity_enforced() {
        let mut lq = LoadQueue::new(1);
        lq.allocate(Seq(1), Pc::new(0)).unwrap();
        assert_eq!(lq.allocate(Seq(2), Pc::new(4)), Err(FullError));
    }

    #[test]
    fn squash_removes_younger() {
        let mut lq = LoadQueue::new(4);
        lq.allocate(Seq(1), Pc::new(0)).unwrap();
        lq.allocate(Seq(5), Pc::new(4)).unwrap();
        lq.allocate(Seq(9), Pc::new(8)).unwrap();
        lq.squash_from(Seq(5));
        assert_eq!(lq.len(), 1);
        assert!(lq.entry(Seq(1)).is_some());
        assert!(lq.entry(Seq(5)).is_none());
    }

    #[test]
    fn entries_need_not_be_dense() {
        // Loads are sparse in sequence space (other instruction types sit
        // between them); lookup is by binary search.
        let mut lq = LoadQueue::new(4);
        lq.allocate(Seq(3), Pc::new(0)).unwrap();
        lq.allocate(Seq(17), Pc::new(4)).unwrap();
        assert!(lq.entry(Seq(17)).is_some());
        assert!(lq.entry(Seq(10)).is_none());
    }

    #[test]
    #[should_panic(expected = "age-ordered")]
    fn out_of_order_allocation_panics() {
        let mut lq = LoadQueue::new(4);
        lq.allocate(Seq(5), Pc::new(0)).unwrap();
        let _ = lq.allocate(Seq(3), Pc::new(4));
    }
}
