//! In-flight instruction queues: the two store-queue designs the paper
//! compares, the load queue with SVW fields, and a generic capacity-limited
//! in-flight window used for the ROB and issue queue.
//!
//! The central type is [`StoreQueue`], an age-ordered circular buffer that
//! supports **both** access disciplines:
//!
//! * [`StoreQueue::search`] — the conventional fully-associative
//!   search-and-read: find the youngest *executed* store older than the
//!   load with an overlapping address (the CAM + age-logic path the paper
//!   eliminates).
//! * [`StoreQueue::indexed_read`] — the paper's direct, decoder-only read
//!   of a single predicted entry, verified by SSN and address match.
//!
//! Both disciplines run against the same entries, which is what lets the
//! simulator in `sqip-core` swap SQ designs while holding everything else
//! fixed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lq;
mod sq;
mod window;

pub use lq::{LoadQueue, LqEntry};
pub use sq::{SqEntry, SqSearch, StoreQueue};
pub use window::Window;

/// Error returned when a capacity-limited structure is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FullError;

impl std::fmt::Display for FullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "structure is at capacity")
    }
}

impl std::error::Error for FullError {}
