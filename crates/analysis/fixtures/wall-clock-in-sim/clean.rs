//! Fixture: the same stage timer, expressed in simulated cycles — the
//! only notion of time simulation code may use.

pub struct StageTimer {
    started_cycle: u64,
}

impl StageTimer {
    pub fn start(now_cycle: u64) -> Self {
        StageTimer {
            started_cycle: now_cycle,
        }
    }

    pub fn elapsed_cycles(&self, now_cycle: u64) -> u64 {
        now_cycle - self.started_cycle
    }
}
