//! Fixture: a simulation module that reaches for host time. Each line
//! expected to fire carries a trailing hit marker; `Instant::now` in a
//! doc comment or string must NOT be flagged.

use std::time::Instant; // HIT

/// Doc text mentioning Instant::now() is fine.
pub struct StageTimer {
    started: Instant, // HIT
}

impl StageTimer {
    pub fn start() -> Self {
        // A comment mentioning SystemTime is fine.
        let started = Instant::now(); // HIT
        let _label = "Instant::now() in a string is fine";
        StageTimer { started }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_in_tests_is_allowed() {
        let _t = std::time::Instant::now(); // not flagged: test code
    }
}
