//! Fixture: a crate root carrying the attribute (position and company
//! of other attributes do not matter).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

fn main() {
    println!("safe crate root");
}
