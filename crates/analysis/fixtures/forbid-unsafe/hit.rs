//! Fixture: a crate root (lint runs this file with `is_crate_root`
//! set) missing `#![forbid(unsafe_code)]`. Other inner attributes do
//! not satisfy the rule; the finding anchors to line 1.

#![warn(missing_docs)]

fn main() {
    println!("a bin crate root without forbid(unsafe_code)");
}
