//! Fixture: a lock guard held across blocking channel/socket calls —
//! the stalled-client hazard. Sends *after* the guard's block ends, or
//! after an explicit `drop(guard)`, must NOT be flagged (see clean.rs).

pub fn broadcast(state: &std::sync::Mutex<Vec<u64>>, tx: &std::sync::mpsc::SyncSender<u64>) {
    let guard = state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    // The channel is bounded: this can block while the lock is held.
    tx.send(guard[0]).ok(); // HIT
    tx.try_send(guard[1]).ok(); // HIT
}

pub fn flush_stats(state: &std::sync::Mutex<String>, out: &mut impl std::io::Write) {
    let stats = state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    out.write_all(stats.as_bytes()).ok(); // HIT
    out.flush().ok(); // HIT
}

pub fn nested_block_still_counts(
    state: &std::sync::Mutex<u64>,
    tx: &std::sync::mpsc::SyncSender<u64>,
) {
    let guard = state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if *guard > 0 {
        tx.send(*guard).ok(); // HIT
    }
}
