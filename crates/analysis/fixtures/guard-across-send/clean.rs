//! Fixture: the same communication patterns with the guard released
//! before anything can block.

pub fn broadcast(state: &std::sync::Mutex<Vec<u64>>, tx: &std::sync::mpsc::SyncSender<u64>) {
    // Copy out, drop, then send: a blocked consumer never holds the lock.
    let (first, second) = {
        let guard = state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        (guard[0], guard[1])
    };
    tx.send(first).ok();
    tx.try_send(second).ok();
}

pub fn flush_stats(state: &std::sync::Mutex<String>, out: &mut impl std::io::Write) {
    let stats = state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let bytes = stats.clone().into_bytes();
    drop(stats);
    out.write_all(&bytes).ok();
    out.flush().ok();
}

pub fn send_without_any_lock(tx: &std::sync::mpsc::SyncSender<u64>) {
    let value = 42;
    tx.send(value).ok();
}
