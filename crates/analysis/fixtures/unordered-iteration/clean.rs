//! Fixture: the same serialization path on ordered containers — the
//! emitted artifact is a pure function of the data.

use std::collections::{BTreeMap, BTreeSet};

pub fn emit_rows(stats: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (name, value) in stats {
        out.push_str(&format!("{name},{value}\n"));
    }
    out
}

pub fn seen_designs() -> BTreeSet<String> {
    BTreeSet::new()
}

/// An explicitly sorted Vec is equally fine.
pub fn emit_sorted(mut rows: Vec<(String, u64)>) -> String {
    rows.sort();
    let mut out = String::new();
    for (name, value) in rows {
        out.push_str(&format!("{name},{value}\n"));
    }
    out
}
