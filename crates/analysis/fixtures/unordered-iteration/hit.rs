//! Fixture: hash containers on a result-serialization path. "HashMap"
//! in doc comments and strings must NOT be flagged.

use std::collections::HashMap; // HIT
use std::collections::HashSet; // HIT

/// Mentions of HashMap in docs are fine.
pub fn emit_rows(stats: &HashMap<String, u64>) -> String { // HIT
    // Iteration order leaks straight into the artifact.
    let mut out = String::from("HashMap header is fine in a string\n");
    for (name, value) in stats {
        out.push_str(&format!("{name},{value}\n"));
    }
    out
}

pub fn seen_designs() -> HashSet<String> { // HIT
    HashSet::new() // HIT
}
