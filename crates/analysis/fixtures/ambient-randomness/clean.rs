//! Fixture: seeded randomness — reproducible from the recorded seed.

use rand::{Rng, SeedableRng, SmallRng};

pub fn shuffle_seed(root_seed: u64, stream: u64) -> u64 {
    // Splitmix-style per-stream derivation, as the loader does it.
    let mut rng = SmallRng::seed_from_u64(root_seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    rng.gen()
}

pub fn from_fixed(seed: [u8; 32]) -> SmallRng {
    SmallRng::from_seed(seed)
}
