//! Fixture: ambient randomness that can never be replayed. Mentions in
//! comments ("thread_rng") and strings must NOT be flagged.

use rand::thread_rng; // HIT

pub fn shuffle_seed() -> u64 {
    // thread_rng in this comment is fine.
    let mut rng = thread_rng(); // HIT
    let _doc = "rand::random is fine in a string";
    rng.gen()
}

pub fn lucky() -> u64 {
    rand::random::<u64>() // HIT
}

pub fn entropy() -> u64 {
    let rng = SmallRng::from_entropy(); // HIT
    rng.gen()
}
