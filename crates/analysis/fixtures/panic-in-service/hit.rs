//! Fixture: panicking constructs in service code. Recovery combinators
//! (`unwrap_or_else`), comments and strings must NOT be flagged, nor
//! may anything inside `#[cfg(test)]` / `#[test]` items.

pub fn handle(line: &str, table: &std::sync::Mutex<u32>) -> u32 {
    // .unwrap() in this comment is fine.
    let parsed: u32 = line.parse().unwrap(); // HIT
    let guard = table.lock().expect("table lock"); // HIT
    let _msg = "calling .unwrap() in a string is fine";
    let fallback = line.parse().unwrap_or_else(|_| 0); // recovery: not flagged
    match parsed {
        0 => panic!("zero is not a job id"), // HIT
        1 => unreachable!(), // HIT
        2 => todo!("job class 2"), // HIT
        3 => unimplemented!(), // HIT
        _ => *guard + fallback,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: u32 = "7".parse().unwrap();
        assert_eq!(v, 7);
    }
}
