//! Fixture: the same handler degrading gracefully — every failure
//! becomes an error value or a recovered default, never a panic.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the data if a previous holder panicked.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub fn handle(line: &str, table: &Mutex<u32>) -> Result<u32, String> {
    let parsed: u32 = line
        .parse()
        .map_err(|e| format!("bad job id `{line}`: {e}"))?;
    let guard = lock_unpoisoned(table);
    match parsed {
        0 => Err("zero is not a job id".to_string()),
        n if n < 4 => Err(format!("job class {n} is not supported")),
        _ => Ok(*guard + parsed),
    }
}
