//! The `cargo test` gate: runs the full configured `sqip-lint` pass
//! over the real workspace and fails on any error-severity finding —
//! the same pass the `sqip-lint` binary and the CI `conformance` job
//! run.

use std::path::Path;

use sqip_analysis::{engine, Config};

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analysis sits two levels below the workspace root")
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let cfg = Config::load(&root.join("lint.toml")).expect("lint.toml parses");
    let report = engine::run(root, &cfg).expect("lint pass runs");

    // The walker must actually be walking the workspace: every
    // first-party crate root plus module files. A collapse of this
    // number would mean the gate silently stopped gating.
    assert!(
        report.files > 50,
        "suspiciously few files walked: {}",
        report.files
    );

    let errors: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.severity == sqip_analysis::Severity::Error)
        .map(ToString::to_string)
        .collect();
    assert!(
        errors.is_empty(),
        "sqip-lint found {} error(s) in the workspace:\n{}",
        errors.len(),
        errors.join("\n")
    );
}

#[test]
fn the_pass_is_deterministic() {
    let root = workspace_root();
    let cfg = Config::load(&root.join("lint.toml")).expect("lint.toml parses");
    let a = engine::run(root, &cfg).expect("first run");
    let b = engine::run(root, &cfg).expect("second run");
    assert_eq!(a.findings, b.findings);
    assert_eq!(a.files, b.files);
    assert_eq!(a.suppressed, b.suppressed);
}

#[test]
fn every_configured_rule_scope_resolves() {
    // Each rule in lint.toml must point at at least one walked file;
    // a stale path would silently disable the rule.
    let root = workspace_root();
    let cfg = Config::load(&root.join("lint.toml")).expect("lint.toml parses");
    let files = sqip_analysis::walker::walk(root, &cfg).expect("walk");
    for (rule, rc) in &cfg.rules {
        let covered = files.iter().any(|f| {
            rc.paths
                .iter()
                .any(|p| sqip_analysis::walker::path_has_prefix(&f.rel, p))
        });
        assert!(covered, "rule `{rule}` scopes no existing files");
    }
}
