//! Per-rule fixture self-tests: every rule must fire on its `hit.rs`
//! fixture (on exactly the lines marked `// HIT`) and stay silent on
//! its `clean.rs` fixture.
//!
//! The fixtures live under `crates/analysis/fixtures/<rule>/` — a
//! directory `lint.toml` excludes from the real workspace walk, since
//! the hit files violate the rules on purpose.

use std::path::Path;

use sqip_analysis::lint_source_with_rule;

/// `(rule name, lint the fixture as a crate root?)`.
const CASES: [(&str, bool); 6] = [
    ("wall-clock-in-sim", false),
    ("ambient-randomness", false),
    ("unordered-iteration", false),
    ("panic-in-service", false),
    ("guard-across-send", false),
    ("forbid-unsafe", true),
];

fn read_fixture(rule: &str, which: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rule)
        .join(which);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()))
}

/// Lines (1-based) carrying a `// HIT` marker; a fixture with no
/// markers expects exactly one finding at line 1 (file-level rules).
fn expected_lines(src: &str) -> Vec<u32> {
    let marked: Vec<u32> = src
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("// HIT"))
        .map(|(i, _)| u32::try_from(i).unwrap() + 1)
        .collect();
    if marked.is_empty() {
        vec![1]
    } else {
        marked
    }
}

#[test]
fn every_rule_fires_on_its_hit_fixture_at_the_marked_lines() {
    for (rule, as_crate_root) in CASES {
        let src = read_fixture(rule, "hit.rs");
        let rel = format!("crates/analysis/fixtures/{rule}/hit.rs");
        let findings = lint_source_with_rule(&rel, &src, as_crate_root, rule);
        assert!(
            !findings.is_empty(),
            "rule `{rule}` produced no findings on its hit fixture"
        );
        for f in &findings {
            assert_eq!(f.rule, rule, "unexpected rule in findings: {f}");
        }
        let mut got: Vec<u32> = findings.iter().map(|f| f.line).collect();
        got.dedup();
        assert_eq!(
            got,
            expected_lines(&src),
            "rule `{rule}` fired on the wrong lines:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn every_rule_stays_silent_on_its_clean_fixture() {
    for (rule, as_crate_root) in CASES {
        let src = read_fixture(rule, "clean.rs");
        let rel = format!("crates/analysis/fixtures/{rule}/clean.rs");
        let findings = lint_source_with_rule(&rel, &src, as_crate_root, rule);
        assert!(
            findings.is_empty(),
            "rule `{rule}` fired on its clean fixture:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn hit_fixtures_are_silenceable_with_a_reasoned_suppression() {
    // Take the unordered-iteration hit fixture and suppress every
    // marked line: the rule must honour each reasoned directive.
    let src = read_fixture("unordered-iteration", "hit.rs");
    let suppressed: String = src
        .lines()
        .map(|l| {
            if l.contains("// HIT") {
                format!("{l} // sqip-lint: allow(unordered-iteration, reason = \"fixture demo\")\n")
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    let findings = lint_source_with_rule(
        "crates/analysis/fixtures/unordered-iteration/hit.rs",
        &suppressed,
        false,
        "unordered-iteration",
    );
    assert!(
        findings.is_empty(),
        "suppressions were not honoured:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
