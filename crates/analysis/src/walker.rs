//! Finds the workspace's Rust sources.
//!
//! Walks the configured roots (default `crates/`) recursively, in
//! sorted order so the report is deterministic, and classifies each
//! `.rs` file:
//!
//! - **crate roots** (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`,
//!   `examples/*.rs`) — the files the `forbid-unsafe` rule applies to;
//!   every one of them starts a distinct crate as far as `#![…]` inner
//!   attributes are concerned,
//! - **test files** (any path containing a `tests/` component) —
//!   skipped by every rule: `sqip-lint` lints production code.
//!
//! `vendor/` is not walked at all (third-party stand-ins), and
//! `lint.toml`'s `exclude` list drops further prefixes — notably the
//! lint's own rule fixtures, which *deliberately* violate the rules.

use std::io;
use std::path::{Path, PathBuf};

use crate::config::Config;

/// One source file the linter will scan.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across
    /// platforms; all reporting uses this).
    pub rel: String,
    /// Absolute path for reading.
    pub path: PathBuf,
    /// Whether this file is a crate root (see module docs).
    pub is_crate_root: bool,
    /// Whether this file is test-only code.
    pub is_test_file: bool,
}

/// Walks `root` per `cfg` and returns the sources, sorted by relative
/// path.
///
/// # Errors
///
/// Propagates directory-read failures; a configured root that does not
/// exist is an error (a silently-skipped root would quietly disable
/// whole rule scopes).
pub fn walk(root: &Path, cfg: &Config) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    for walk_root in &cfg.roots {
        let dir = root.join(walk_root);
        if !dir.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "configured root `{walk_root}` is not a directory under {}",
                    root.display()
                ),
            ));
        }
        walk_dir(&dir, walk_root, cfg, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn excluded(rel: &str, cfg: &Config) -> bool {
    cfg.exclude.iter().any(|p| path_has_prefix(rel, p))
}

/// Whether `rel` equals `prefix` or starts with it at a `/` boundary.
#[must_use]
pub fn path_has_prefix(rel: &str, prefix: &str) -> bool {
    rel == prefix
        || (rel.len() > prefix.len()
            && rel.starts_with(prefix)
            && rel.as_bytes()[prefix.len()] == b'/')
}

fn walk_dir(dir: &Path, rel: &str, cfg: &Config, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let child_rel = format!("{rel}/{name}");
        if path.is_dir() {
            // Build output and VCS metadata are never sources.
            if name == "target" || name == ".git" {
                continue;
            }
            if excluded(&child_rel, cfg) {
                continue;
            }
            walk_dir(&path, &child_rel, cfg, out)?;
        } else if name.ends_with(".rs") && !excluded(&child_rel, cfg) {
            out.push(SourceFile {
                is_crate_root: classify_crate_root(&child_rel),
                is_test_file: child_rel.split('/').any(|c| c == "tests"),
                rel: child_rel,
                path,
            });
        }
    }
    Ok(())
}

fn classify_crate_root(rel: &str) -> bool {
    let comps: Vec<&str> = rel.split('/').collect();
    let n = comps.len();
    if n < 2 {
        return false;
    }
    let file = comps[n - 1];
    let parent = comps[n - 2];
    (parent == "src" && (file == "lib.rs" || file == "main.rs"))
        || (parent == "bin" && n >= 3 && comps[n - 3] == "src")
        || parent == "examples"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_root_classification() {
        assert!(classify_crate_root("crates/core/src/lib.rs"));
        assert!(classify_crate_root("crates/bench/src/main.rs"));
        assert!(classify_crate_root("crates/bench/src/bin/figure4.rs"));
        assert!(classify_crate_root("crates/sqip/examples/quickstart.rs"));
        assert!(!classify_crate_root("crates/core/src/pipeline/mod.rs"));
        assert!(!classify_crate_root("crates/sqip/tests/sweep.rs"));
        assert!(!classify_crate_root("lib.rs"));
    }

    #[test]
    fn prefix_matching_respects_component_boundaries() {
        assert!(path_has_prefix("crates/core/src/lib.rs", "crates/core"));
        assert!(path_has_prefix("crates/core", "crates/core"));
        assert!(!path_has_prefix("crates/core2/src/lib.rs", "crates/core"));
    }

    #[test]
    fn walks_this_crate() {
        // The analysis crate's own sources are a stable walk target.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap();
        let cfg = Config {
            roots: vec!["crates/analysis".to_string()],
            exclude: vec!["crates/analysis/fixtures".to_string()],
            ..Config::default()
        };
        let files = walk(root, &cfg).unwrap();
        let lib = files
            .iter()
            .find(|f| f.rel == "crates/analysis/src/lib.rs")
            .expect("walker must find its own lib.rs");
        assert!(lib.is_crate_root);
        assert!(!lib.is_test_file);
        assert!(files
            .iter()
            .all(|f| !path_has_prefix(&f.rel, "crates/analysis/fixtures")));
        let test_file = files
            .iter()
            .find(|f| f.rel.starts_with("crates/analysis/tests/"))
            .expect("walker must find the integration tests");
        assert!(test_file.is_test_file);
        // Sorted output: determinism of the report depends on it.
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }

    #[test]
    fn missing_root_is_an_error() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let cfg = Config {
            roots: vec!["no-such-dir".to_string()],
            ..Config::default()
        };
        assert!(walk(root, &cfg).is_err());
    }
}
