//! `lint.toml` — the root configuration scoping each rule to crates.
//!
//! No TOML crate is vendored, so this is a strict parser for the small
//! subset the config actually uses: `[section]` headers, `key = value`
//! with string / boolean / single-line string-array values, and `#`
//! comments. Anything outside that subset is a hard error — a typo in
//! `lint.toml` should fail the lint run, not silently widen or narrow a
//! rule's scope.
//!
//! ```toml
//! [lint]
//! roots = ["crates"]
//! exclude = ["crates/analysis/fixtures"]
//!
//! [rules.panic-in-service]
//! severity = "error"
//! paths = ["crates/service/src"]
//! # exempt = ["crates/foo: why this crate cannot satisfy the rule"]
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// How a finding from a rule is reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported, but does not fail the run.
    Warn,
    /// Fails the run (exit code 1 / test failure).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warning",
            Severity::Error => "error",
        })
    }
}

/// A per-file exemption from a rule, with a mandatory reason (the
/// config-level analogue of an inline suppression).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemption {
    /// Workspace-relative path prefix the exemption covers.
    pub path: String,
    /// Why the exemption exists. Never empty.
    pub reason: String,
}

/// Configuration of one rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleConfig {
    /// Severity of the rule's findings.
    pub severity: Severity,
    /// Workspace-relative path prefixes the rule applies to. A rule
    /// with no `paths` entry never runs — scope is always explicit.
    pub paths: Vec<String>,
    /// Path prefixes excused from the rule, each with a reason
    /// (written `"path: reason"` in the TOML).
    pub exempt: Vec<Exemption>,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig {
            severity: Severity::Error,
            paths: Vec::new(),
            exempt: Vec::new(),
        }
    }
}

/// The parsed `lint.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Directories (workspace-relative) walked for `.rs` sources.
    pub roots: Vec<String>,
    /// Path prefixes never walked (fixtures, generated code).
    pub exclude: Vec<String>,
    /// Per-rule configuration, keyed by rule name. A `BTreeMap` on
    /// purpose: iteration order feeds the (deterministic) report.
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            roots: vec!["crates".to_string()],
            exclude: Vec::new(),
            rules: BTreeMap::new(),
        }
    }
}

/// One parsed right-hand-side value.
enum Value {
    Str(String),
    Array(Vec<String>),
}

impl Config {
    /// Reads and parses `path`.
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O or parse failure.
    pub fn load(path: &Path) -> Result<Config, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Config::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses the `lint.toml` subset described in the module docs.
    ///
    /// # Errors
    ///
    /// Returns `"line N: …"` for the first malformed line — unknown
    /// sections and keys are errors, not warnings.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        for (n, line) in logical_lines(text)? {
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(format!("line {n}: unterminated section header"));
                };
                let name = name.trim();
                if name != "lint" && !name.starts_with("rules.") {
                    return Err(format!(
                        "line {n}: unknown section `[{name}]` (expected `[lint]` or `[rules.<name>]`)"
                    ));
                }
                if let Some(rule) = name.strip_prefix("rules.") {
                    if rule.is_empty() {
                        return Err(format!("line {n}: empty rule name in section header"));
                    }
                }
                section = name.to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {n}: expected `key = value`"));
            };
            let key = key.trim();
            let value = parse_value(value.trim()).map_err(|e| format!("line {n}: {e}"))?;
            match (section.as_str(), key) {
                ("lint", "roots") => cfg.roots = expect_array(value, n)?,
                ("lint", "exclude") => cfg.exclude = expect_array(value, n)?,
                ("lint", other) => {
                    return Err(format!("line {n}: unknown key `{other}` in [lint]"));
                }
                ("", _) => {
                    return Err(format!("line {n}: key before any section header"));
                }
                (sec, key) => {
                    let rule = sec
                        .strip_prefix("rules.")
                        .map_or_else(String::new, str::to_string);
                    let rc = cfg.rules.entry(rule).or_default();
                    match key {
                        "severity" => {
                            rc.severity = match expect_str(value, n)?.as_str() {
                                "error" => Severity::Error,
                                "warn" => Severity::Warn,
                                other => {
                                    return Err(format!(
                                        "line {n}: severity must be \"error\" or \"warn\", got \"{other}\""
                                    ));
                                }
                            };
                        }
                        "paths" => rc.paths = expect_array(value, n)?,
                        "exempt" => {
                            for entry in expect_array(value, n)? {
                                let Some((path, reason)) = entry.split_once(':') else {
                                    return Err(format!(
                                        "line {n}: exemption `{entry}` must be \"path: reason\""
                                    ));
                                };
                                let reason = reason.trim();
                                if reason.is_empty() {
                                    return Err(format!(
                                        "line {n}: exemption for `{path}` has an empty reason"
                                    ));
                                }
                                rc.exempt.push(Exemption {
                                    path: path.trim().to_string(),
                                    reason: reason.to_string(),
                                });
                            }
                        }
                        other => {
                            return Err(format!("line {n}: unknown key `{other}` in [{sec}]"));
                        }
                    }
                }
            }
        }
        Ok(cfg)
    }
}

/// Strips comments and joins multi-line arrays into single logical
/// lines; returns `(first line number, text)` pairs.
fn logical_lines(text: &str) -> Result<Vec<(usize, String)>, String> {
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String, i64)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let n = idx + 1;
        let stripped = strip_comment(raw).trim().to_string();
        if stripped.is_empty() {
            continue;
        }
        let bal = bracket_balance(&stripped);
        let (start, acc, depth) = match pending.take() {
            None => (n, stripped, bal),
            Some((start, mut acc, depth)) => {
                acc.push(' ');
                acc.push_str(&stripped);
                (start, acc, depth + bal)
            }
        };
        if depth > 0 {
            pending = Some((start, acc, depth));
        } else if depth < 0 {
            return Err(format!("line {n}: unbalanced `]`"));
        } else {
            out.push((start, acc));
        }
    }
    if let Some((start, _, _)) = pending {
        return Err(format!("line {start}: unterminated array"));
    }
    Ok(out)
}

/// Net `[`/`]` balance outside quoted strings.
fn bracket_balance(line: &str) -> i64 {
    let mut bal = 0i64;
    let mut in_str = false;
    for c in line.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => bal += 1,
            ']' if !in_str => bal -= 1,
            _ => {}
        }
    }
    bal
}

/// Cuts a `#` comment, respecting `"`-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(v: &str) -> Result<Value, String> {
    if let Some(rest) = v.strip_prefix('[') {
        let Some(inner) = rest.strip_suffix(']') else {
            return Err("arrays must open and close on one line".to_string());
        };
        let mut items = Vec::new();
        let mut rest = inner.trim();
        while !rest.is_empty() {
            let (item, tail) = take_string(rest)?;
            items.push(item);
            rest = tail.trim();
            if let Some(after) = rest.strip_prefix(',') {
                rest = after.trim();
            } else if !rest.is_empty() {
                return Err(format!("expected `,` between array items, found `{rest}`"));
            }
        }
        return Ok(Value::Array(items));
    }
    if v.starts_with('"') {
        let (s, tail) = take_string(v)?;
        if !tail.trim().is_empty() {
            return Err(format!("trailing input after string: `{tail}`"));
        }
        return Ok(Value::Str(s));
    }
    Err(format!(
        "unsupported value `{v}` (strings and string arrays only)"
    ))
}

/// Takes one `"…"` string off the front of `v`; no escape support (the
/// config never needs it). Returns the content and the remaining input.
fn take_string(v: &str) -> Result<(String, &str), String> {
    let Some(rest) = v.strip_prefix('"') else {
        return Err(format!("expected a quoted string, found `{v}`"));
    };
    let Some(end) = rest.find('"') else {
        return Err("unterminated string".to_string());
    };
    Ok((rest[..end].to_string(), &rest[end + 1..]))
}

fn expect_array(v: Value, n: usize) -> Result<Vec<String>, String> {
    match v {
        Value::Array(a) => Ok(a),
        Value::Str(_) => Err(format!("line {n}: expected an array of strings")),
    }
}

fn expect_str(v: Value, n: usize) -> Result<String, String> {
    match v {
        Value::Str(s) => Ok(s),
        Value::Array(_) => Err(format!("line {n}: expected a string")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_shape() {
        let cfg = Config::parse(
            r#"
# top comment
[lint]
roots = ["crates"]            # inline comment
exclude = ["crates/analysis/fixtures", "target"]

[rules.panic-in-service]
severity = "error"
paths = ["crates/service/src"]

[rules.forbid-unsafe]
severity = "warn"
paths = ["crates"]
exempt = ["crates/ffi: links against a C library"]
"#,
        )
        .unwrap();
        assert_eq!(cfg.roots, vec!["crates"]);
        assert_eq!(cfg.exclude, vec!["crates/analysis/fixtures", "target"]);
        let panic = &cfg.rules["panic-in-service"];
        assert_eq!(panic.severity, Severity::Error);
        assert_eq!(panic.paths, vec!["crates/service/src"]);
        let unsafe_rule = &cfg.rules["forbid-unsafe"];
        assert_eq!(unsafe_rule.severity, Severity::Warn);
        assert_eq!(
            unsafe_rule.exempt,
            vec![Exemption {
                path: "crates/ffi".to_string(),
                reason: "links against a C library".to_string(),
            }]
        );
    }

    #[test]
    fn multi_line_arrays_join() {
        let cfg = Config::parse(
            "[rules.wall-clock-in-sim]\npaths = [\n    \"crates/core\",  # sim core\n    \"crates/isa\",\n]\n",
        )
        .unwrap();
        assert_eq!(
            cfg.rules["wall-clock-in-sim"].paths,
            vec!["crates/core", "crates/isa"]
        );
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse("[lint]\nroots = [\"with#hash\"]\n").unwrap();
        assert_eq!(cfg.roots, vec!["with#hash"]);
    }

    #[test]
    fn unknown_sections_and_keys_are_errors() {
        assert!(Config::parse("[wat]\n")
            .unwrap_err()
            .contains("unknown section"));
        assert!(Config::parse("[lint]\nwat = \"x\"\n")
            .unwrap_err()
            .contains("unknown key"));
        assert!(Config::parse("[rules.x]\nwat = \"x\"\n")
            .unwrap_err()
            .contains("unknown key"));
        assert!(Config::parse("x = \"y\"\n")
            .unwrap_err()
            .contains("before any section"));
    }

    #[test]
    fn malformed_values_are_errors() {
        assert!(Config::parse("[lint]\nroots = [\"a\"\n").is_err());
        assert!(Config::parse("[lint]\nroots = 5\n").is_err());
        assert!(Config::parse("[rules.x]\nseverity = \"fatal\"\n").is_err());
        assert!(Config::parse("[rules.x]\nexempt = [\"no reason given\"]\n").is_err());
        assert!(Config::parse("[rules.x]\nexempt = [\"path:  \"]\n").is_err());
    }

    #[test]
    fn empty_config_gets_defaults() {
        let cfg = Config::parse("").unwrap();
        assert_eq!(cfg.roots, vec!["crates"]);
        assert!(cfg.rules.is_empty());
    }
}
