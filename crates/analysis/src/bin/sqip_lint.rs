//! `sqip-lint` — run the workspace determinism & robustness pass.
//!
//! ```text
//! # From anywhere inside the workspace:
//! cargo run -p sqip-analysis --bin sqip-lint
//!
//! # Elsewhere, point it at the workspace / a config explicitly:
//! sqip-lint --root /path/to/repo [--config /path/to/lint.toml]
//!
//! # The catalogue:
//! sqip-lint --list-rules
//! ```
//!
//! Exits 0 when no error-severity findings remain, 1 on findings, 2 on
//! usage/configuration errors. Warnings are reported but do not fail
//! the run.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use sqip_analysis::{config::Config, engine, find_workspace_root, rules};

fn usage() -> ExitCode {
    eprintln!("usage: sqip-lint [--root PATH] [--config PATH] [--quiet] [--list-rules]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--config" => match args.next() {
                Some(v) => config = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--quiet" | "-q" => quiet = true,
            "--list-rules" => {
                for rule in rules::all() {
                    println!("{:<22} {}", rule.name, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                let _ = usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown flag `{other}`");
                return usage();
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let start = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&start) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "error: no lint.toml found in {} or any ancestor (pass --root)",
                        start.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let config_path = config.unwrap_or_else(|| root.join("lint.toml"));
    let cfg = match Config::load(&config_path) {
        Ok(cfg) => cfg,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };

    let report = match engine::run(&root, &cfg) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };

    if !quiet {
        for finding in &report.findings {
            println!("{finding}");
        }
    }
    let errors = report.errors();
    println!(
        "sqip-lint: {} files checked, {} error{}, {} warning{}, {} suppression{} honoured",
        report.files,
        errors,
        plural(errors),
        report.warnings(),
        plural(report.warnings()),
        report.suppressed,
        plural(report.suppressed),
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}
