//! The rule engine: drives every rule over every file, applies inline
//! suppressions, and produces a deterministic, sorted report.
//!
//! # Suppressions
//!
//! A finding is silenced by a line comment **on the same line or the
//! line directly above it**, and the reason is *mandatory*:
//!
//! ```text
//! // sqip-lint: allow(unordered-iteration, reason = "probe-only map, never iterated")
//! ```
//!
//! A directive with a missing or empty reason, or naming an unknown
//! rule, is itself an **error** finding (`lint-directive`); a directive
//! that silences nothing is a warning. Doc comments are never parsed as
//! directives, so rule documentation can quote the syntax freely.
//!
//! # Test code
//!
//! All rules lint production code only. Files under a `tests/`
//! directory are skipped wholesale; within other files, items annotated
//! `#[test]` (or `#[…::test]`) and items/regions under `#[cfg(test)]`
//! are masked out token-by-token.

use std::fmt;
use std::io;
use std::path::Path;

use crate::config::{Config, Severity};
use crate::lexer::{lex, TokKind, Token};
use crate::rules;
use crate::walker::{self, path_has_prefix};

/// The pseudo-rule name carried by findings about the lint directives
/// themselves (malformed / unknown-rule / unused suppressions).
pub const DIRECTIVE_RULE: &str = "lint-directive";

/// The marker that introduces an inline suppression comment.
pub const DIRECTIVE_MARKER: &str = "sqip-lint:";

/// One reported finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// The rule that fired (or [`DIRECTIVE_RULE`]).
    pub rule: &'static str,
    /// Report severity.
    pub severity: Severity,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}:{}: {}",
            self.severity, self.rule, self.path, self.line, self.message
        )
    }
}

/// The outcome of a full run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Every finding, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files: usize,
    /// Number of findings silenced by (reasoned) suppressions.
    pub suppressed: usize,
}

impl Report {
    /// Number of error-severity findings — the run fails if non-zero.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }
}

/// Everything a rule sees about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path.
    pub rel_path: &'a str,
    /// The full token stream (comments included).
    pub tokens: &'a [Token<'a>],
    /// Per-token curly-brace depth (a `{` is *inside* the block it
    /// opens, a `}` still inside the block it closes).
    pub depth: &'a [u32],
    /// Per-token "this is test code" mask.
    pub test_mask: &'a [bool],
    /// Whether the file is a crate root.
    pub is_crate_root: bool,
}

impl FileCtx<'_> {
    /// Indices of the production-code tokens: comments and test-masked
    /// tokens removed. Rules pattern-match over this.
    #[must_use]
    pub fn code_indices(&self) -> Vec<usize> {
        (0..self.tokens.len())
            .filter(|&i| !self.tokens[i].kind.is_comment() && !self.test_mask[i])
            .collect()
    }
}

/// A parsed inline suppression.
#[derive(Debug, Clone)]
struct Directive {
    rule: String,
    line: u32,
    used: bool,
}

/// Runs the full configured pass over the workspace at `root`.
///
/// # Errors
///
/// Propagates walker/IO failures and configuration mistakes (a
/// configured rule name that no rule implements).
pub fn run(root: &Path, cfg: &Config) -> Result<Report, String> {
    for name in cfg.rules.keys() {
        if rules::by_name(name).is_none() {
            return Err(format!(
                "lint.toml configures unknown rule `{name}` (run `sqip-lint --list-rules`)"
            ));
        }
    }
    let files = walker::walk(root, cfg).map_err(|e| e.to_string())?;
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for file in &files {
        let src = read_source(&file.path)?;
        let (mut file_findings, file_suppressed) =
            lint_source(&file.rel, &src, file.is_crate_root, file.is_test_file, cfg);
        findings.append(&mut file_findings);
        suppressed += file_suppressed;
    }
    findings.sort();
    Ok(Report {
        findings,
        files: files.len(),
        suppressed,
    })
}

fn read_source(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e: io::Error| format!("reading {}: {e}", path.display()))
}

/// Lints one source text with every configured rule; returns the
/// findings plus the number of suppressed ones. This is the unit the
/// fixture self-tests drive directly.
#[must_use]
pub fn lint_source(
    rel_path: &str,
    src: &str,
    is_crate_root: bool,
    is_test_file: bool,
    cfg: &Config,
) -> (Vec<Finding>, usize) {
    if is_test_file {
        return (Vec::new(), 0);
    }
    let tokens = lex(src);
    let depth = brace_depth(&tokens);
    let test_mask = test_mask(&tokens);
    let ctx = FileCtx {
        rel_path,
        tokens: &tokens,
        depth: &depth,
        test_mask: &test_mask,
        is_crate_root,
    };

    let (mut directives, mut findings) = parse_directives(rel_path, &tokens);

    for rule in rules::all() {
        let Some(rc) = cfg.rules.get(rule.name) else {
            continue;
        };
        if !rc.paths.iter().any(|p| path_has_prefix(rel_path, p)) {
            continue;
        }
        if rc.exempt.iter().any(|e| path_has_prefix(rel_path, &e.path)) {
            continue;
        }
        if rule.crate_root_only && !is_crate_root {
            continue;
        }
        let mut emit = |line: u32, message: String| {
            findings.push(Finding {
                path: rel_path.to_string(),
                line,
                rule: rule.name,
                severity: rc.severity,
                message,
            });
        };
        (rule.check)(&ctx, &mut emit);
    }

    // Apply suppressions: a directive covers its own line and the next.
    let mut suppressed = 0usize;
    findings.retain(|f| {
        if f.rule == DIRECTIVE_RULE {
            return true;
        }
        let mut covered = false;
        // Credit every directive in range (same line or the line
        // above), so adjacent suppressed lines don't report each
        // other's directives as unused.
        for d in &mut directives {
            if d.rule == f.rule && (d.line == f.line || d.line + 1 == f.line) {
                d.used = true;
                covered = true;
            }
        }
        if covered {
            suppressed += 1;
        }
        !covered
    });
    for d in &directives {
        if !d.used {
            findings.push(Finding {
                path: rel_path.to_string(),
                line: d.line,
                rule: DIRECTIVE_RULE,
                severity: Severity::Warn,
                message: format!(
                    "suppression for `{}` silences nothing on this or the next line",
                    d.rule
                ),
            });
        }
    }
    findings.sort();
    (findings, suppressed)
}

/// Runs exactly one rule, unscoped, over a source text — the harness
/// the per-rule fixture tests use. Suppressions still apply.
///
/// # Panics
///
/// Panics if `rule_name` does not exist (a fixture-test bug).
#[must_use]
pub fn lint_source_with_rule(
    rel_path: &str,
    src: &str,
    is_crate_root: bool,
    rule_name: &str,
) -> Vec<Finding> {
    let rule = rules::by_name(rule_name).unwrap_or_else(|| panic!("no such rule `{rule_name}`"));
    let mut cfg = Config::default();
    cfg.rules
        .entry(rule.name.to_string())
        .or_default()
        .paths
        .push(top_component(rel_path).to_string());
    let (findings, _) = lint_source(rel_path, src, is_crate_root, false, &cfg);
    findings
}

fn top_component(rel: &str) -> &str {
    rel.split('/').next().unwrap_or(rel)
}

/// Per-token `{}` depth. Tokens are already string/char/comment-aware,
/// so braces inside literals never count.
fn brace_depth(tokens: &[Token<'_>]) -> Vec<u32> {
    let mut depth = 0u32;
    let mut out = Vec::with_capacity(tokens.len());
    for t in tokens {
        if t.is_punct('{') {
            depth += 1;
            out.push(depth);
        } else if t.is_punct('}') {
            out.push(depth);
            depth = depth.saturating_sub(1);
        } else {
            out.push(depth);
        }
    }
    out
}

/// Marks the token ranges of test-only items: `#[test]`-like attributes
/// and `#[cfg(test)]`/`#[cfg(all(test, …))]` items (but **not**
/// `#[cfg(not(test))]`). The marked item extends from the attribute to
/// the matching `}` of its first block, or to a top-level-of-item `;`.
fn test_mask(tokens: &[Token<'_>]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].kind.is_comment())
        .collect();
    let mut ci = 0usize;
    while ci < code.len() {
        if !tokens[code[ci]].is_punct('#')
            || ci + 1 >= code.len()
            || !tokens[code[ci + 1]].is_punct('[')
        {
            ci += 1;
            continue;
        }
        let Some((attr_end, attr_text)) = scan_attribute(tokens, &code, ci) else {
            break;
        };
        if !is_test_attribute(&attr_text) {
            ci = attr_end + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut cj = attr_end + 1;
        while cj + 1 < code.len()
            && tokens[code[cj]].is_punct('#')
            && tokens[code[cj + 1]].is_punct('[')
        {
            match scan_attribute(tokens, &code, cj) {
                Some((end, _)) => cj = end + 1,
                None => break,
            }
        }
        // The item body: up to the matching `}` of the first `{`, or an
        // item-level `;` (e.g. `#[cfg(test)] use …;`).
        let mut brace = 0i64;
        let mut k = cj;
        let mut end_tok = *code.last().unwrap_or(&0);
        while k < code.len() {
            let t = &tokens[code[k]];
            if t.is_punct('{') {
                brace += 1;
            } else if t.is_punct('}') {
                brace -= 1;
                if brace <= 0 {
                    end_tok = code[k];
                    break;
                }
            } else if t.is_punct(';') && brace == 0 {
                end_tok = code[k];
                break;
            }
            k += 1;
        }
        for m in mask.iter_mut().take(end_tok + 1).skip(code[ci]) {
            *m = true;
        }
        ci = k.saturating_add(1);
    }
    mask
}

/// From `code[ci]` pointing at `#`, scans the `[…]` attribute; returns
/// the code-index of the closing `]` and the attribute's flat text.
fn scan_attribute(tokens: &[Token<'_>], code: &[usize], ci: usize) -> Option<(usize, String)> {
    let mut text = String::new();
    let mut depth = 0i64;
    let mut cj = ci;
    while cj < code.len() {
        let t = &tokens[code[cj]];
        text.push_str(t.text);
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some((cj, text));
            }
        }
        cj += 1;
    }
    None
}

fn is_test_attribute(attr: &str) -> bool {
    if attr == "#[test]" || attr.ends_with("::test]") {
        return true;
    }
    attr.starts_with("#[cfg(") && attr.contains("test") && !attr.contains("not(")
}

/// Extracts suppression directives from line/block comments. Malformed
/// directives become error findings. Doc comments are ignored.
fn parse_directives(rel_path: &str, tokens: &[Token<'_>]) -> (Vec<Directive>, Vec<Finding>) {
    let mut directives = Vec::new();
    let mut findings = Vec::new();
    for t in tokens {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let Some(pos) = t.text.find(DIRECTIVE_MARKER) else {
            continue;
        };
        let mut body = t.text[pos + DIRECTIVE_MARKER.len()..].trim();
        if t.kind == TokKind::BlockComment {
            body = body.trim_end_matches("*/").trim();
        }
        match parse_allow(body) {
            Ok((rule, _reason)) => {
                if rules::by_name(&rule).is_none() {
                    findings.push(Finding {
                        path: rel_path.to_string(),
                        line: t.line,
                        rule: DIRECTIVE_RULE,
                        severity: Severity::Error,
                        message: format!("suppression names unknown rule `{rule}`"),
                    });
                } else {
                    directives.push(Directive {
                        rule,
                        line: t.line,
                        used: false,
                    });
                }
            }
            Err(msg) => findings.push(Finding {
                path: rel_path.to_string(),
                line: t.line,
                rule: DIRECTIVE_RULE,
                severity: Severity::Error,
                message: msg,
            }),
        }
    }
    (directives, findings)
}

/// Parses `allow(<rule>, reason = "…")`; the reason is mandatory and
/// must be non-empty.
fn parse_allow(body: &str) -> Result<(String, String), String> {
    const SHAPE: &str = "expected `allow(<rule>, reason = \"…\")`";
    let inner = body
        .strip_prefix("allow(")
        .ok_or_else(|| SHAPE.to_string())?;
    let inner = inner.strip_suffix(')').ok_or_else(|| SHAPE.to_string())?;
    let Some((rule, rest)) = inner.split_once(',') else {
        return Err("suppression is missing its mandatory reason".to_string());
    };
    let rest = rest.trim();
    let reason = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .ok_or_else(|| SHAPE.to_string())?;
    let reason = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| SHAPE.to_string())?;
    if reason.trim().is_empty() {
        return Err("suppression reason must not be empty".to_string());
    }
    Ok((rule.trim().to_string(), reason.trim().to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_rule(src: &str, rule: &str) -> Vec<Finding> {
        lint_source_with_rule("crates/x/src/a.rs", src, false, rule)
    }

    #[test]
    fn suppression_with_reason_silences_same_and_next_line() {
        let above = "\
fn f() {
    // sqip-lint: allow(unordered-iteration, reason = \"probe-only map\")
    let m: HashMap<u32, u32> = make();
}
";
        assert!(run_rule(above, "unordered-iteration").is_empty());

        let trailing = "\
fn f() {
    let m: HashMap<u32, u32> = make(); // sqip-lint: allow(unordered-iteration, reason = \"probe-only map\")
}
";
        assert!(run_rule(trailing, "unordered-iteration").is_empty());
    }

    #[test]
    fn suppression_does_not_reach_two_lines_down() {
        let src = "\
fn f() {
    // sqip-lint: allow(unordered-iteration, reason = \"too far away\")
    let unrelated = 1;
    let m: HashMap<u32, u32> = make();
}
";
        let findings = run_rule(src, "unordered-iteration");
        // The real finding survives, and the directive is flagged as
        // unused.
        assert!(findings.iter().any(|f| f.rule == "unordered-iteration"));
        assert!(findings
            .iter()
            .any(|f| f.rule == DIRECTIVE_RULE && f.message.contains("silences nothing")));
    }

    #[test]
    fn suppression_without_reason_is_an_error() {
        for bad in [
            "// sqip-lint: allow(unordered-iteration)",
            "// sqip-lint: allow(unordered-iteration, reason = \"\")",
            "// sqip-lint: allow(unordered-iteration, reason = \"  \")",
            "// sqip-lint: allow()",
        ] {
            let src = format!("fn f() {{\n    {bad}\n    let m: HashMap<u32, u32> = make();\n}}\n");
            let findings = run_rule(&src, "unordered-iteration");
            assert!(
                findings
                    .iter()
                    .any(|f| f.rule == DIRECTIVE_RULE && f.severity == Severity::Error),
                "`{bad}` must be a directive error, got {findings:?}"
            );
            // And the underlying finding is NOT silenced.
            assert!(findings.iter().any(|f| f.rule == "unordered-iteration"));
        }
    }

    #[test]
    fn suppression_for_unknown_rule_is_an_error() {
        let src = "// sqip-lint: allow(no-such-rule, reason = \"hm\")\n";
        let (findings, _) = lint_source("crates/x/src/a.rs", src, false, false, &Config::default());
        assert!(findings
            .iter()
            .any(|f| f.rule == DIRECTIVE_RULE && f.message.contains("unknown rule")));
    }

    #[test]
    fn doc_comments_never_parse_as_directives() {
        let src = "/// Write `// sqip-lint: allow(x, reason = \"…\")` above the line.\nfn f() {}\n";
        let (findings, _) = lint_source("crates/x/src/a.rs", src, false, false, &Config::default());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cfg_test_items_are_masked() {
        let src = "\
fn prod() {
    let m: HashMap<u32, u32> = make();
}

#[cfg(test)]
mod tests {
    fn t() {
        let m: HashMap<u32, u32> = make();
    }
}
";
        let findings = run_rule(src, "unordered-iteration");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn test_fn_attributes_are_masked_but_not_cfg_not_test() {
        let src = "\
#[test]
fn unit() {
    opt.unwrap();
}

#[cfg(not(test))]
fn prod() {
    opt.unwrap();
}
";
        let findings = run_rule(src, "panic-in-service");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 8);
    }

    #[test]
    fn test_files_are_skipped_wholesale() {
        let src = "fn f() { opt.unwrap(); }\n";
        let mut cfg = Config::default();
        cfg.rules
            .entry("panic-in-service".to_string())
            .or_default()
            .paths
            .push("crates".to_string());
        let (findings, _) = lint_source("crates/x/tests/t.rs", src, false, true, &cfg);
        assert!(findings.is_empty());
    }

    #[test]
    fn severity_comes_from_config() {
        let src = "fn f() { let m: HashMap<u32, u32> = make(); }\n";
        let mut cfg = Config::default();
        let rc = cfg
            .rules
            .entry("unordered-iteration".to_string())
            .or_default();
        rc.paths.push("crates".to_string());
        rc.severity = Severity::Warn;
        let (findings, _) = lint_source("crates/x/src/a.rs", src, false, false, &cfg);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, Severity::Warn);
    }

    #[test]
    fn exemptions_skip_the_rule_for_matching_paths() {
        let src = "fn f() { let m: HashMap<u32, u32> = make(); }\n";
        let mut cfg = Config::default();
        let rc = cfg
            .rules
            .entry("unordered-iteration".to_string())
            .or_default();
        rc.paths.push("crates".to_string());
        rc.exempt.push(crate::config::Exemption {
            path: "crates/x".to_string(),
            reason: "test exemption".to_string(),
        });
        let (findings, _) = lint_source("crates/x/src/a.rs", src, false, false, &cfg);
        assert!(findings.is_empty());
        let (findings, _) = lint_source("crates/y/src/a.rs", src, false, false, &cfg);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn unknown_configured_rule_fails_the_run() {
        let mut cfg = Config::default();
        cfg.rules.entry("typo-rule".to_string()).or_default();
        let err = run(Path::new(env!("CARGO_MANIFEST_DIR")), &cfg).unwrap_err();
        assert!(err.contains("typo-rule"));
    }
}
