//! `sqip-analysis` — first-party static analysis for the sqip
//! workspace.
//!
//! Every pin this repo ships — golden fixture bytes, shared≡per-cell
//! sweep identity, the loader's bit-identical repeat digest — rests on
//! invariants that dynamic tests can only spot-check: no ambient time
//! or randomness in simulation crates, no unordered-map iteration
//! feeding serialized results, no panics or lock-held socket writes in
//! the `sqipd` hot path. This crate turns those invariants into a
//! **static** pass, `sqip-lint`, that runs three ways:
//!
//! - `cargo run -p sqip-analysis --bin sqip-lint` for humans,
//! - the `tests/workspace_lint.rs` wrapper, so `cargo test` gates it,
//! - the CI `conformance` job.
//!
//! The pass is dependency-free: a small hand-rolled Rust [`lexer`]
//! (comments, raw strings, char-vs-lifetime disambiguation), a
//! workspace [`walker`], a strict `lint.toml` [`config`] parser, and a
//! rule [`engine`] with per-rule severity, crate scoping, and inline
//! suppressions that *require* a reason. The [`rules`] module is the
//! catalogue and documents how to add a rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod walker;

pub use config::{Config, Severity};
pub use engine::{lint_source, lint_source_with_rule, run, Finding, Report};

use std::path::{Path, PathBuf};

/// Ascends from `start` looking for the directory holding `lint.toml`
/// (the workspace root). Returns `None` if no ancestor has one.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    start
        .ancestors()
        .find(|dir| dir.join("lint.toml").is_file())
        .map(Path::to_path_buf)
}
