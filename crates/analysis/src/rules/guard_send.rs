//! `guard-across-send` — no lock guard held across a channel send or
//! socket write.
//!
//! The stalled-client hazard the service was designed around (PR 6): a
//! bounded channel `.send(…)` or a socket write can block for as long
//! as the slowest consumer; holding a `MutexGuard` across that block
//! turns one stalled client into a server-wide stall the moment any
//! other thread touches the same lock.
//!
//! # Heuristic
//!
//! This is the one deliberately *heuristic* rule. It flags a pattern:
//!
//! 1. a `let` statement that binds the result of a lock acquisition —
//!    any call of an identifier named `lock`, `lock_*` or `try_lock`
//!    in the initializer (so guards obtained through poison-recovery
//!    helpers are still seen),
//! 2. followed, while that binding is still in scope (same or deeper
//!    brace depth, no `drop(<binding>)` yet), by a `.send(`,
//!    `.try_send(`, `.write_all(` or `.flush(` call.
//!
//! It cannot see guards returned from functions that do not say "lock",
//! guards bound by `if let`/`while let` patterns, or guards threaded
//! through fields — the integration tests and the
//! bounded-channel design remain the backstop for those. False
//! positives (the binding was a value copied *out* of the guard, not
//! the guard itself) carry an inline suppression with the reason.

use crate::engine::FileCtx;
use crate::lexer::TokKind;
use crate::rules::{Emit, Rule};

/// The rule value registered in [`crate::rules::all`].
pub const RULE: Rule = Rule {
    name: "guard-across-send",
    summary: "no lock guard live across channel sends or socket writes",
    crate_root_only: false,
    check,
};

const BLOCKING_CALLS: [&str; 4] = ["send", "try_send", "write_all", "flush"];

fn is_lock_call(name: &str) -> bool {
    name == "lock" || name == "try_lock" || name.starts_with("lock_")
}

fn check(ctx: &FileCtx<'_>, emit: &mut Emit<'_>) {
    let code = ctx.code_indices();
    let mut k = 0usize;
    while k < code.len() {
        if !ctx.tokens[code[k]].is_ident("let") {
            k += 1;
            continue;
        }
        // `if let` / `while let` are pattern matches, not guard
        // bindings, and have no terminating `;` — skip them so the
        // statement scan below cannot run past the conditional.
        if k >= 1 {
            let prev = &ctx.tokens[code[k - 1]];
            if prev.is_ident("if") || prev.is_ident("while") {
                k += 1;
                continue;
            }
        }
        let let_depth = ctx.depth[code[k]];
        // Binder: the first identifier after `let`, skipping `mut`.
        let mut b = k + 1;
        while b < code.len() && ctx.tokens[code[b]].is_ident("mut") {
            b += 1;
        }
        let Some(binder) = code
            .get(b)
            .map(|&i| &ctx.tokens[i])
            .filter(|t| t.kind == TokKind::Ident)
        else {
            k += 1;
            continue;
        };
        let binder_name = binder.text;
        // Statement end: the `;` back at the `let`'s depth.
        let mut stmt_end = b;
        let mut has_lock = false;
        while stmt_end < code.len() {
            let t = &ctx.tokens[code[stmt_end]];
            if t.kind == TokKind::Ident
                && is_lock_call(t.text)
                && stmt_end + 1 < code.len()
                && ctx.tokens[code[stmt_end + 1]].is_punct('(')
            {
                has_lock = true;
            }
            if t.is_punct(';') && ctx.depth[code[stmt_end]] <= let_depth {
                break;
            }
            if ctx.depth[code[stmt_end]] < let_depth {
                // The enclosing block closed before any `;` — this was
                // not a plain `let` statement after all.
                has_lock = false;
                break;
            }
            stmt_end += 1;
        }
        if !has_lock {
            k += 1;
            continue;
        }
        // The guard is live from the end of the statement until the
        // enclosing block closes or it is explicitly dropped.
        let mut j = stmt_end + 1;
        while j < code.len() {
            let t = &ctx.tokens[code[j]];
            if ctx.depth[code[j]] < let_depth {
                break;
            }
            if t.is_ident("drop")
                && j + 2 < code.len()
                && ctx.tokens[code[j + 1]].is_punct('(')
                && ctx.tokens[code[j + 2]].is_ident(binder_name)
            {
                break;
            }
            if t.kind == TokKind::Ident
                && BLOCKING_CALLS.contains(&t.text)
                && j >= 1
                && ctx.tokens[code[j - 1]].is_punct('.')
                && j + 1 < code.len()
                && ctx.tokens[code[j + 1]].is_punct('(')
            {
                emit(
                    t.line,
                    format!(
                        "`{binder_name}` (bound from a lock acquisition) is still live \
                         across this `.{}()`; a blocked consumer would hold the lock — \
                         drop the guard first",
                        t.text
                    ),
                );
            }
            j += 1;
        }
        k = stmt_end + 1;
    }
}
