//! `forbid-unsafe` — every crate root carries `#![forbid(unsafe_code)]`.
//!
//! The whole workspace is safe Rust, and `forbid` (unlike `deny`)
//! cannot be overridden further down the tree. Library roots have
//! carried the attribute since PR 1; this rule exists because **binary
//! and example roots are separate crates** — `src/bin/*.rs` and
//! `examples/*.rs` each start their own crate, and an attribute in the
//! sibling `lib.rs` does nothing for them.
//!
//! A crate that genuinely cannot forbid unsafe code is documented in
//! `lint.toml` under `[rules.forbid-unsafe] exempt = ["path: reason"]`.

use crate::engine::FileCtx;
use crate::rules::{Emit, Rule};

/// The rule value registered in [`crate::rules::all`].
pub const RULE: Rule = Rule {
    name: "forbid-unsafe",
    summary: "every crate root (lib, bin, example) carries #![forbid(unsafe_code)]",
    crate_root_only: true,
    check,
};

fn check(ctx: &FileCtx<'_>, emit: &mut Emit<'_>) {
    let code = ctx.code_indices();
    // Look for `# ! [ forbid ( … unsafe_code … ) ]`.
    for (k, &i) in code.iter().enumerate() {
        if !ctx.tokens[i].is_punct('#') {
            continue;
        }
        if !code
            .get(k + 1)
            .is_some_and(|&j| ctx.tokens[j].is_punct('!'))
        {
            continue;
        }
        if !code
            .get(k + 2)
            .is_some_and(|&j| ctx.tokens[j].is_punct('['))
        {
            continue;
        }
        if !code
            .get(k + 3)
            .is_some_and(|&j| ctx.tokens[j].is_ident("forbid"))
        {
            continue;
        }
        // Scan the attribute's argument list for `unsafe_code`.
        let mut j = k + 4;
        while j < code.len() && !ctx.tokens[code[j]].is_punct(']') {
            if ctx.tokens[code[j]].is_ident("unsafe_code") {
                return; // satisfied
            }
            j += 1;
        }
    }
    emit(
        1,
        "crate root is missing `#![forbid(unsafe_code)]` (bins and examples are \
         their own crates; the attribute in lib.rs does not cover them)"
            .to_string(),
    );
}
