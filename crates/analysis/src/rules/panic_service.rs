//! `panic-in-service` — no panicking constructs in service code.
//!
//! `sqipd` is the long-running piece of this repo: a panic in a worker,
//! reader or writer thread kills jobs other clients are waiting on (or
//! poisons a lock every other thread then trips over). Service code
//! must degrade — report the error to the one affected client and keep
//! serving.
//!
//! Flagged in scoped, non-test code:
//!
//! - `.unwrap(` / `.expect(` method calls (`unwrap_or`,
//!   `unwrap_or_else`, `unwrap_or_default` are recovery, not panics,
//!   and are *not* flagged),
//! - the `panic!`, `unreachable!`, `todo!`, `unimplemented!` macros.
//!
//! `assert!`-family macros are deliberately not flagged: the service
//! uses `debug_assert!` for hot-path invariants, which compiles out of
//! release builds.

use crate::engine::FileCtx;
use crate::lexer::TokKind;
use crate::rules::{Emit, Rule};

/// The rule value registered in [`crate::rules::all`].
pub const RULE: Rule = Rule {
    name: "panic-in-service",
    summary: "no unwrap/expect/panic!/unreachable! in service code; degrade gracefully",
    crate_root_only: false,
    check,
};

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

fn check(ctx: &FileCtx<'_>, emit: &mut Emit<'_>) {
    let code = ctx.code_indices();
    for (k, &i) in code.iter().enumerate() {
        let t = &ctx.tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `.unwrap(` / `.expect(`
        if (t.text == "unwrap" || t.text == "expect")
            && k >= 1
            && ctx.tokens[code[k - 1]].is_punct('.')
            && k + 1 < code.len()
            && ctx.tokens[code[k + 1]].is_punct('(')
        {
            emit(
                t.line,
                format!(
                    "`.{}()` can panic the service; match on the error (or recover \
                     from lock poisoning) and keep serving",
                    t.text
                ),
            );
            continue;
        }
        // `panic!(` etc.
        if PANIC_MACROS.contains(&t.text)
            && k + 1 < code.len()
            && ctx.tokens[code[k + 1]].is_punct('!')
        {
            emit(
                t.line,
                format!(
                    "`{}!` aborts the thread and strands in-flight jobs; return an \
                     error response instead",
                    t.text
                ),
            );
        }
    }
}
