//! `ambient-randomness` — no unseeded randomness anywhere.
//!
//! Workloads, sweeps and the loader all take explicit seeds so that any
//! run can be reproduced bit-for-bit from its report. `thread_rng()`,
//! `rand::random()`, `from_entropy()` and OS entropy sources
//! (`OsRng`, `getrandom`) break that: their output cannot be replayed.
//! Seeded construction (`seed_from_u64`, `from_seed`) is the sanctioned
//! path and is not flagged.

use crate::engine::FileCtx;
use crate::lexer::TokKind;
use crate::rules::{Emit, Rule};

/// The rule value registered in [`crate::rules::all`].
pub const RULE: Rule = Rule {
    name: "ambient-randomness",
    summary: "no thread_rng/rand::random/OS entropy; randomness must be seeded",
    crate_root_only: false,
    check,
};

const AMBIENT: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "getrandom"];

fn check(ctx: &FileCtx<'_>, emit: &mut Emit<'_>) {
    let code = ctx.code_indices();
    for (k, &i) in code.iter().enumerate() {
        let t = &ctx.tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if AMBIENT.contains(&t.text) {
            emit(
                t.line,
                format!(
                    "`{}` is ambient randomness; construct a seeded RNG \
                     (e.g. `seed_from_u64`) so runs replay bit-for-bit",
                    t.text
                ),
            );
            continue;
        }
        // `rand::random` — three tokens back: `rand` `:` `:` `random`.
        if t.text == "random"
            && k >= 3
            && ctx.tokens[code[k - 1]].is_punct(':')
            && ctx.tokens[code[k - 2]].is_punct(':')
            && ctx.tokens[code[k - 3]].is_ident("rand")
        {
            emit(
                t.line,
                "`rand::random` draws from the ambient thread RNG; construct a \
                 seeded RNG so runs replay bit-for-bit"
                    .to_string(),
            );
        }
    }
}
