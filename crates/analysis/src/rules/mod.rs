//! The rule catalogue.
//!
//! Each rule is a pure function over a lexed [`FileCtx`]: no type
//! information, no macro expansion — these are *lexical* rules, chosen
//! so that the pattern they match is a reliable signal at the paths
//! `lint.toml` scopes them to. Where a rule is a heuristic (see
//! [`guard_send`]) its module documents exactly what it can and cannot
//! see.
//!
//! Adding a rule:
//!
//! 1. add a module with a `RULE` static and a `check` function,
//! 2. list it in [`all`],
//! 3. give it `hit.rs`/`clean.rs` fixtures under `fixtures/<rule>/`
//!    and a case in `tests/fixtures.rs`,
//! 4. scope it in the root `lint.toml`,
//! 5. document it in the README's rule catalogue.

pub mod forbid_unsafe;
pub mod guard_send;
pub mod panic_service;
pub mod randomness;
pub mod unordered;
pub mod wall_clock;

use crate::engine::FileCtx;

/// Callback rules use to report: `(line, message)`.
pub type Emit<'e> = dyn FnMut(u32, String) + 'e;

/// One registered rule.
pub struct Rule {
    /// Rule name as used in `lint.toml` and suppressions.
    pub name: &'static str,
    /// One-line description for `--list-rules` and the README.
    pub summary: &'static str,
    /// When set, the rule only runs on crate-root files.
    pub crate_root_only: bool,
    /// The check itself.
    pub check: fn(&FileCtx<'_>, &mut Emit<'_>),
}

static ALL: [Rule; 6] = [
    wall_clock::RULE,
    randomness::RULE,
    unordered::RULE,
    panic_service::RULE,
    guard_send::RULE,
    forbid_unsafe::RULE,
];

/// Every rule, in report order.
#[must_use]
pub fn all() -> &'static [Rule] {
    &ALL
}

/// Looks a rule up by name.
#[must_use]
pub fn by_name(name: &str) -> Option<&'static Rule> {
    all().iter().find(|r| r.name == name)
}
