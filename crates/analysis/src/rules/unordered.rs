//! `unordered-iteration` — no `HashMap`/`HashSet` on result or
//! serialization paths.
//!
//! Iterating a hash container feeds `RandomState`-dependent order into
//! whatever consumes the iteration; on a path that produces result
//! rows, JSON, CSV, or wire messages, that is a silent determinism
//! bug of exactly the kind the golden fixtures and the loader's repeat
//! digest exist to catch.
//!
//! Iteration cannot be proven absent lexically, so on the scoped paths
//! the rule is deliberately conservative: it flags **every** mention of
//! the two types and demands `BTreeMap`/`BTreeSet` (or an explicit sort
//! before emitting). A genuinely probe-only map on a scoped path can
//! carry an inline suppression with its reason.

use crate::engine::FileCtx;
use crate::lexer::TokKind;
use crate::rules::{Emit, Rule};

/// The rule value registered in [`crate::rules::all`].
pub const RULE: Rule = Rule {
    name: "unordered-iteration",
    summary: "no HashMap/HashSet on result/serialization paths; use BTree* or sort",
    crate_root_only: false,
    check,
};

fn check(ctx: &FileCtx<'_>, emit: &mut Emit<'_>) {
    for &i in &ctx.code_indices() {
        let t = &ctx.tokens[i];
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            let ordered = if t.text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            emit(
                t.line,
                format!(
                    "`{}` iteration order is randomized and this path feeds \
                     results/serialization; use `{ordered}` or sort explicitly \
                     before emitting",
                    t.text
                ),
            );
        }
    }
}
