//! `wall-clock-in-sim` — no ambient wall-clock time in simulation
//! crates.
//!
//! Every result this repo pins — golden fixture bytes, shared≡per-cell
//! sweeps, the loader's repeat digest — depends on simulation being a
//! pure function of (trace, config, seed). `Instant::now()` or
//! `SystemTime` anywhere in the simulation crates would thread host
//! time into that function. The rule flags **any** mention of the two
//! types in scoped code: in a crate where time must be simulated
//! cycles, even holding an `Instant` in a struct is a smell.

use crate::engine::FileCtx;
use crate::lexer::TokKind;
use crate::rules::{Emit, Rule};

/// The rule value registered in [`crate::rules::all`].
pub const RULE: Rule = Rule {
    name: "wall-clock-in-sim",
    summary: "no Instant/SystemTime in simulation crates; time is simulated cycles",
    crate_root_only: false,
    check,
};

fn check(ctx: &FileCtx<'_>, emit: &mut Emit<'_>) {
    for &i in &ctx.code_indices() {
        let t = &ctx.tokens[i];
        if t.kind == TokKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
            emit(
                t.line,
                format!(
                    "`{}` is ambient wall-clock time; simulation code must derive time \
                     from simulated cycles",
                    t.text
                ),
            );
        }
    }
}
