//! A minimal, dependency-free Rust lexer.
//!
//! `sqip-lint` needs just enough lexical structure to tell *code* apart
//! from comments and string literals, with correct line numbers — no
//! `syn` is vendored, so the lexer is in-tree and self-tested. It
//! handles the parts of Rust's lexical grammar that trip up regex-based
//! scanners:
//!
//! - line, block (nested!) and doc comments,
//! - string, byte-string and **raw** string literals (`r#"…"#`),
//! - raw identifiers (`r#match`),
//! - the `'a` lifetime vs `'x'` char-literal ambiguity,
//! - numeric literals (enough to not split `1_000.5` oddly).
//!
//! It is *not* a full lexer: tokens it does not recognise fall back to
//! single-character [`TokKind::Punct`] tokens, which is always safe for
//! the pattern matching the rules do.

/// The kind of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`foo`, `fn`, `r#match`).
    Ident,
    /// A lifetime (`'a`, `'static`) — note: no closing quote.
    Lifetime,
    /// A character or byte literal (`'x'`, `'\n'`, `b'a'`).
    Char,
    /// A string or byte-string literal with escapes (`"…"`, `b"…"`).
    Str,
    /// A raw string or raw byte-string literal (`r"…"`, `br#"…"#`).
    RawStr,
    /// A numeric literal.
    Num,
    /// A `// …` comment (to end of line).
    LineComment,
    /// A `/* … */` comment; nesting is handled.
    BlockComment,
    /// A doc comment (`///`, `//!`, `/** … */`, `/*! … */`).
    DocComment,
    /// Any other single character (`{`, `.`, `#`, …).
    Punct,
}

impl TokKind {
    /// Whether this token is any flavour of comment.
    #[must_use]
    pub fn is_comment(self) -> bool {
        matches!(
            self,
            TokKind::LineComment | TokKind::BlockComment | TokKind::DocComment
        )
    }
}

/// One lexed token: its kind, the exact source slice, and the 1-based
/// line its first character sits on.
#[derive(Debug, Clone, Copy)]
pub struct Token<'src> {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The exact source text of the token.
    pub text: &'src str,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Token<'_> {
    /// Whether this is a [`TokKind::Punct`] equal to `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.starts_with(c)
    }

    /// Whether this is an [`TokKind::Ident`] equal to `name`.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// Lexes `src` into a token stream. Never fails: malformed input
/// degrades to [`TokKind::Punct`] tokens rather than erroring, so the
/// linter stays usable on work-in-progress code.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < b.len() {
        let start = i;
        let start_line = line;
        let c = b[i];

        // Whitespace (line counting happens here and inside multi-line
        // literals/comments only; every other arm stays on one line or
        // counts its own newlines).
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }

        // Comments.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            let text = &src[start..i];
            let kind = if (text.starts_with("///") && !text.starts_with("////"))
                || text.starts_with("//!")
            {
                TokKind::DocComment
            } else {
                TokKind::LineComment
            };
            out.push(Token {
                kind,
                text,
                line: start_line,
            });
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1u32;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            let text = &src[start..i];
            let kind = if (text.starts_with("/**") && text != "/**/" && !text.starts_with("/***"))
                || text.starts_with("/*!")
            {
                TokKind::DocComment
            } else {
                TokKind::BlockComment
            };
            out.push(Token {
                kind,
                text,
                line: start_line,
            });
            continue;
        }

        // Plain string literal.
        if c == b'"' {
            i = scan_string(src, i, &mut line);
            out.push(Token {
                kind: TokKind::Str,
                text: &src[start..i],
                line: start_line,
            });
            continue;
        }

        // Char literal vs lifetime.
        if c == b'\'' {
            let (end, kind) = scan_quote(src, i);
            i = end;
            out.push(Token {
                kind,
                text: &src[start..i],
                line: start_line,
            });
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            if j + 1 < b.len() && b[j] == b'.' && b[j + 1].is_ascii_digit() {
                j += 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
            }
            i = j;
            out.push(Token {
                kind: TokKind::Num,
                text: &src[start..i],
                line: start_line,
            });
            continue;
        }

        // Identifiers, keywords, and the literal prefixes r / b / br.
        if c == b'_' || c.is_ascii_alphabetic() {
            let mut j = i + 1;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            let ident = &src[i..j];

            // Raw string (`r"…"`, `r#"…"#`, `br#"…"#`) or raw ident.
            if (ident == "r" || ident == "br") && j < b.len() && (b[j] == b'"' || b[j] == b'#') {
                let mut k = j;
                let mut hashes = 0usize;
                while k < b.len() && b[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < b.len() && b[k] == b'"' {
                    k += 1;
                    loop {
                        if k >= b.len() {
                            break;
                        }
                        if b[k] == b'\n' {
                            line += 1;
                            k += 1;
                            continue;
                        }
                        if b[k] == b'"'
                            && b.len() - (k + 1) >= hashes
                            && b[k + 1..=k + hashes].iter().all(|&h| h == b'#')
                        {
                            k += 1 + hashes;
                            break;
                        }
                        k += 1;
                    }
                    i = k;
                    out.push(Token {
                        kind: TokKind::RawStr,
                        text: &src[start..i],
                        line: start_line,
                    });
                    continue;
                }
                if ident == "r"
                    && hashes == 1
                    && k < b.len()
                    && (b[k] == b'_' || b[k].is_ascii_alphabetic())
                {
                    // Raw identifier `r#match`.
                    let mut m = k;
                    while m < b.len() && (b[m].is_ascii_alphanumeric() || b[m] == b'_') {
                        m += 1;
                    }
                    i = m;
                    out.push(Token {
                        kind: TokKind::Ident,
                        text: &src[start..i],
                        line: start_line,
                    });
                    continue;
                }
            }

            // Byte string `b"…"` / byte char `b'a'`.
            if ident == "b" && j < b.len() && b[j] == b'"' {
                i = scan_string(src, j, &mut line);
                out.push(Token {
                    kind: TokKind::Str,
                    text: &src[start..i],
                    line: start_line,
                });
                continue;
            }
            if ident == "b" && j < b.len() && b[j] == b'\'' {
                i = scan_char_body(src, j);
                out.push(Token {
                    kind: TokKind::Char,
                    text: &src[start..i],
                    line: start_line,
                });
                continue;
            }

            i = j;
            out.push(Token {
                kind: TokKind::Ident,
                text: ident,
                line: start_line,
            });
            continue;
        }

        // Anything else: one (possibly multi-byte) character of
        // punctuation.
        let ch_len = src[i..].chars().next().map_or(1, char::len_utf8);
        i += ch_len;
        out.push(Token {
            kind: TokKind::Punct,
            text: &src[start..i],
            line: start_line,
        });
    }

    out
}

/// Scans a `"`-delimited (byte-)string starting at the opening quote
/// `open`; returns the index one past the closing quote and counts
/// embedded newlines into `line`.
fn scan_string(src: &str, open: usize, line: &mut u32) -> usize {
    let b = src.as_bytes();
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                // An escaped newline (line continuation) still advances
                // the line counter.
                if i + 1 < b.len() && b[i + 1] == b'\n' {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    b.len()
}

/// Scans the body of a char literal whose opening `'` is at `open`;
/// returns the index one past the closing quote (or end of input).
fn scan_char_body(src: &str, open: usize) -> usize {
    let b = src.as_bytes();
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

/// Disambiguates `'` at index `open`: char literal (`'x'`, `'\n'`) vs
/// lifetime (`'a`, `'static`). Returns the end index and token kind.
fn scan_quote(src: &str, open: usize) -> (usize, TokKind) {
    let rest = &src[open + 1..];
    let Some(c1) = rest.chars().next() else {
        return (open + 1, TokKind::Punct);
    };
    if c1 == '\\' {
        // Escaped char literal.
        return (scan_char_body(src, open), TokKind::Char);
    }
    let c1_len = c1.len_utf8();
    if c1 != '\'' && rest[c1_len..].starts_with('\'') {
        // Exactly one character then a closing quote: `'x'`, `'_'`.
        return (open + 1 + c1_len + 1, TokKind::Char);
    }
    if c1 == '_' || c1.is_alphabetic() {
        // A lifetime: consume the identifier, no closing quote.
        let b = src.as_bytes();
        let mut j = open + 1 + c1_len;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        return (j, TokKind::Lifetime);
    }
    // A stray quote; treat as punctuation.
    (open + 1, TokKind::Punct)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        assert_eq!(
            kinds("let x = 42;"),
            vec![
                (TokKind::Ident, "let"),
                (TokKind::Ident, "x"),
                (TokKind::Punct, "="),
                (TokKind::Num, "42"),
                (TokKind::Punct, ";"),
            ]
        );
        assert_eq!(
            kinds("1_000.5f64 0..10"),
            vec![
                (TokKind::Num, "1_000.5f64"),
                (TokKind::Num, "0"),
                (TokKind::Punct, "."),
                (TokKind::Punct, "."),
                (TokKind::Num, "10"),
            ]
        );
    }

    #[test]
    fn line_comments_vs_doc_comments() {
        assert_eq!(
            kinds("// plain\n/// doc\n//! inner\n//// not doc"),
            vec![
                (TokKind::LineComment, "// plain"),
                (TokKind::DocComment, "/// doc"),
                (TokKind::DocComment, "//! inner"),
                (TokKind::LineComment, "//// not doc"),
            ]
        );
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still outer */ b";
        assert_eq!(
            kinds(src),
            vec![
                (TokKind::Ident, "a"),
                (TokKind::BlockComment, "/* outer /* inner */ still outer */"),
                (TokKind::Ident, "b"),
            ]
        );
    }

    #[test]
    fn block_doc_comments() {
        assert_eq!(kinds("/** d */")[0].0, TokKind::DocComment);
        assert_eq!(kinds("/*! d */")[0].0, TokKind::DocComment);
        assert_eq!(kinds("/**/")[0].0, TokKind::BlockComment);
        assert_eq!(kinds("/*** deco ***/")[0].0, TokKind::BlockComment);
    }

    #[test]
    fn strings_hide_code_and_count_lines() {
        let toks = lex("\"Instant::now() // not code\" after");
        assert_eq!(toks[0].kind, TokKind::Str);
        assert_eq!(toks[1].text, "after");

        let toks = lex("let s = \"two\nlines\";\nnext");
        let next = toks.iter().find(|t| t.text == "next").unwrap();
        assert_eq!(next.line, 3);
    }

    #[test]
    fn escaped_quotes_in_strings() {
        assert_eq!(
            kinds(r#""with \" escaped" x"#),
            vec![
                (TokKind::Str, r#""with \" escaped""#),
                (TokKind::Ident, "x"),
            ]
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"r#"contains "quotes" and \ no escapes"# x"####;
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokKind::RawStr);
        assert_eq!(toks[1], (TokKind::Ident, "x"));

        let src = r####"r##"one "# inside"## y"####;
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokKind::RawStr);
        assert_eq!(toks[1], (TokKind::Ident, "y"));

        // Unadorned and byte-raw forms.
        assert_eq!(kinds(r#"r"plain""#)[0].0, TokKind::RawStr);
        assert_eq!(kinds(r##"br#"bytes"#"##)[0].0, TokKind::RawStr);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(
            kinds("r#match r#try x"),
            vec![
                (TokKind::Ident, "r#match"),
                (TokKind::Ident, "r#try"),
                (TokKind::Ident, "x"),
            ]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(
            kinds("&'a str"),
            vec![
                (TokKind::Punct, "&"),
                (TokKind::Lifetime, "'a"),
                (TokKind::Ident, "str"),
            ]
        );
        assert_eq!(kinds("'x'"), vec![(TokKind::Char, "'x'")]);
        assert_eq!(kinds("'_'"), vec![(TokKind::Char, "'_'")]);
        assert_eq!(kinds("'static")[0].0, TokKind::Lifetime);
        assert_eq!(
            kinds("'\\n' '\\u{1F600}' '\\''"),
            vec![
                (TokKind::Char, "'\\n'"),
                (TokKind::Char, "'\\u{1F600}'"),
                (TokKind::Char, "'\\''"),
            ]
        );
        // Lifetime immediately followed by more tokens.
        assert_eq!(
            kinds("fn f<'a>(x: &'a u8) {}")
                .iter()
                .filter(|(k, _)| *k == TokKind::Lifetime)
                .count(),
            2
        );
        // Byte char.
        assert_eq!(kinds("b'a'"), vec![(TokKind::Char, "b'a'")]);
    }

    #[test]
    fn char_literal_inside_generics_is_not_a_lifetime() {
        // `Some('x')` — the `'x'` must lex as a char, keeping the
        // closing paren as punctuation.
        assert_eq!(
            kinds("Some('x')"),
            vec![
                (TokKind::Ident, "Some"),
                (TokKind::Punct, "("),
                (TokKind::Char, "'x'"),
                (TokKind::Punct, ")"),
            ]
        );
    }

    #[test]
    fn line_numbers_across_comments_and_raw_strings() {
        let src = "one\n/* a\nb */ two\nr#\"x\ny\"# three";
        let toks = lex(src);
        let find = |name: &str| toks.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(find("one"), 1);
        assert_eq!(find("two"), 3);
        assert_eq!(find("three"), 5);
    }

    #[test]
    fn unterminated_input_degrades_gracefully() {
        // No panics, no infinite loops.
        assert!(!lex("\"unterminated").is_empty());
        assert!(!lex("/* unterminated").is_empty());
        assert!(!lex("r#\"unterminated").is_empty());
        assert!(!lex("'").is_empty());
    }
}
