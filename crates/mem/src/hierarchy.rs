//! The two-level cache hierarchy + memory model from the paper's §4.1
//! configuration.

use sqip_types::Addr;

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::tlb::{Tlb, TlbConfig};

use serde::{Deserialize, Serialize};

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemLevel {
    /// Hit in the L1 data cache.
    L1,
    /// Missed L1, hit L2.
    L2,
    /// Missed both caches; went to main memory.
    Memory,
}

/// The latency breakdown of one data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Deepest level consulted.
    pub level: MemLevel,
    /// Cache latency (L1 hit latency, plus L2/memory on misses).
    pub cache_latency: u64,
    /// Extra cycles from a TLB walk (0 on TLB hit).
    pub tlb_latency: u64,
}

impl AccessOutcome {
    /// Total cycles for the access.
    #[must_use]
    pub fn total_latency(&self) -> u64 {
        self.cache_latency + self.tlb_latency
    }

    /// Whether the access hit in the L1 (the common case the scheduler
    /// speculates on).
    #[must_use]
    pub fn is_l1_hit(&self) -> bool {
        self.level == MemLevel::L1 && self.tlb_latency == 0
    }
}

/// Latencies and geometries for the full hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// TLB geometry.
    pub tlb: TlbConfig,
    /// Main memory latency in cycles (the paper uses 150).
    pub memory_latency: u64,
}

impl Default for HierarchyConfig {
    fn default() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            tlb: TlbConfig::default(),
            memory_latency: 150,
        }
    }
}

/// L1 + L2 + memory with a TLB in front, returning a latency per access.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1: Cache,
    l2: Cache,
    tlb: Tlb,
}

impl Hierarchy {
    /// Builds the hierarchy.
    #[must_use]
    pub fn new(config: HierarchyConfig) -> Hierarchy {
        Hierarchy {
            config,
            l1: Cache::new(config.l1),
            l2: Cache::new(config.l2),
            tlb: Tlb::new(config.tlb),
        }
    }

    /// Performs (and fills for) a data access, returning its latency
    /// breakdown.
    pub fn access(&mut self, addr: Addr) -> AccessOutcome {
        let tlb_latency = self.tlb.translate(addr);
        if self.l1.access(addr) {
            return AccessOutcome {
                level: MemLevel::L1,
                cache_latency: self.config.l1.hit_latency,
                tlb_latency,
            };
        }
        if self.l2.access(addr) {
            return AccessOutcome {
                level: MemLevel::L2,
                cache_latency: self.config.l1.hit_latency + self.config.l2.hit_latency,
                tlb_latency,
            };
        }
        AccessOutcome {
            level: MemLevel::Memory,
            cache_latency: self.config.l1.hit_latency
                + self.config.l2.hit_latency
                + self.config.memory_latency,
            tlb_latency,
        }
    }

    /// Touches the line without charging latency — used by committing
    /// stores (which are not on the load critical path) and by re-executing
    /// loads, both of which still warm the cache.
    pub fn touch(&mut self, addr: Addr) {
        self.tlb.translate(addr);
        if !self.l1.access(addr) {
            self.l2.access(addr);
        }
    }

    /// L1 statistics.
    #[must_use]
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// L2 statistics.
    #[must_use]
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// TLB statistics.
    #[must_use]
    pub fn tlb_stats(&self) -> CacheStats {
        self.tlb.stats()
    }

    /// The configured latencies.
    #[must_use]
    pub fn config(&self) -> HierarchyConfig {
        self.config
    }
}

sqip_snapshot::snapshot_struct!(HierarchyConfig {
    l1,
    l2,
    tlb,
    memory_latency,
});
sqip_snapshot::snapshot_struct!(Hierarchy {
    config,
    l1,
    l2,
    tlb
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_latency_ladder() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        let a = Addr::new(0x4_0000);
        let cold = h.access(a);
        assert_eq!(cold.level, MemLevel::Memory);
        assert_eq!(cold.cache_latency, 3 + 10 + 150);
        assert_eq!(cold.tlb_latency, 30);

        let warm = h.access(a);
        assert_eq!(warm.level, MemLevel::L1);
        assert_eq!(warm.total_latency(), 3);
        assert!(warm.is_l1_hit());
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        let target = Addr::new(0);
        h.access(target);
        // Evict from the 2-way L1 set by touching 2 more lines that map to
        // L1 set 0 (L1 stride = 512 sets * 64B = 32KB) but distinct L2 sets.
        h.access(Addr::new(32 * 1024));
        h.access(Addr::new(64 * 1024));
        let out = h.access(target);
        assert_eq!(out.level, MemLevel::L2, "line fell out of L1 but not L2");
        assert_eq!(out.cache_latency, 13);
    }

    #[test]
    fn touch_warms_without_latency_accounting() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        h.touch(Addr::new(0x8000));
        let out = h.access(Addr::new(0x8000));
        assert_eq!(out.level, MemLevel::L1);
    }
}
