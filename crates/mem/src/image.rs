//! A sparse, byte-addressable memory image.

use sqip_types::{Addr, DataSize};

use crate::pagetable::{PageTable, PAGE_ENTRIES};

const PAGE_BYTES: usize = PAGE_ENTRIES;

/// A sparse 64-bit byte-addressable memory, allocated in 4KB pages on first
/// touch. Unwritten bytes read as zero, like a fresh zero-filled process
/// image.
///
/// Two images are kept by the timing simulator: the functional executor's
/// architectural image and the commit-time image that backs the data cache,
/// so that a load that wrongly skips forwarding really does observe the
/// stale committed value.
///
/// The image sits on the simulator's per-load and per-store hot path, so
/// it rides on [`PageTable`]: an access resolves its page **once per
/// span** (not per byte), with the table's one-entry page cache
/// short-circuiting the hash lookup for repeated traffic to one page.
#[derive(Debug, Clone)]
pub struct MemImage {
    pages: PageTable<u8>,
}

impl Default for MemImage {
    fn default() -> MemImage {
        MemImage::new()
    }
}

impl MemImage {
    /// Creates an empty (all-zero) image.
    #[must_use]
    pub fn new() -> MemImage {
        MemImage {
            pages: PageTable::new(0),
        }
    }

    /// Number of 4KB pages that have been touched.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.resident_pages()
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_byte(&self, addr: Addr) -> u8 {
        let (page, off) = split(addr);
        self.pages.page(page).map_or(0, |p| p[off])
    }

    /// Writes one byte, allocating the page if needed.
    pub fn write_byte(&mut self, addr: Addr, value: u8) {
        let (page, off) = split(addr);
        self.pages.page_mut_or_alloc(page)[off] = value;
    }

    /// Reads a little-endian value of the given size.
    #[must_use]
    pub fn read(&self, addr: Addr, size: DataSize) -> u64 {
        let (page, off) = split(addr);
        let n = size.bytes() as usize;
        if off + n <= PAGE_BYTES {
            // Fast path: the span lives in one page, resolved once.
            let Some(p) = self.pages.page(page) else {
                return 0;
            };
            let mut v: u64 = 0;
            for (k, &b) in p[off..off + n].iter().enumerate() {
                v |= u64::from(b) << (8 * k);
            }
            v
        } else {
            // Page-straddling access: byte-wise fallback.
            let mut v: u64 = 0;
            for (k, byte_addr) in addr.span(size).byte_addrs().enumerate() {
                v |= u64::from(self.read_byte(byte_addr)) << (8 * k);
            }
            v
        }
    }

    /// Writes a little-endian value of the given size (truncating `value`
    /// to the access width, as store datapaths do).
    pub fn write(&mut self, addr: Addr, size: DataSize, value: u64) {
        let (page, off) = split(addr);
        let n = size.bytes() as usize;
        if off + n <= PAGE_BYTES {
            let p = self.pages.page_mut_or_alloc(page);
            for (k, b) in p[off..off + n].iter_mut().enumerate() {
                *b = (value >> (8 * k)) as u8;
            }
        } else {
            for (k, byte_addr) in addr.span(size).byte_addrs().enumerate() {
                self.write_byte(byte_addr, (value >> (8 * k)) as u8);
            }
        }
    }
}

fn split(addr: Addr) -> (u64, usize) {
    (
        addr.0 / PAGE_BYTES as u64,
        (addr.0 % PAGE_BYTES as u64) as usize,
    )
}

sqip_snapshot::snapshot_struct!(MemImage { pages });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = MemImage::new();
        assert_eq!(m.read(Addr::new(0x7fff_0000), DataSize::Quad), 0);
        assert_eq!(m.resident_pages(), 0, "reads do not allocate");
    }

    #[test]
    fn read_back_each_size() {
        let mut m = MemImage::new();
        for (i, size) in DataSize::ALL.iter().enumerate() {
            let a = Addr::new(0x100 + 16 * i as u64);
            m.write(a, *size, 0x1122_3344_5566_7788);
            assert_eq!(m.read(a, *size), size.truncate(0x1122_3344_5566_7788));
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut m = MemImage::new();
        m.write(Addr::new(0x10), DataSize::Word, 0xA1B2_C3D4);
        assert_eq!(m.read_byte(Addr::new(0x10)), 0xD4);
        assert_eq!(m.read_byte(Addr::new(0x13)), 0xA1);
        assert_eq!(m.read(Addr::new(0x12), DataSize::Half), 0xA1B2);
    }

    #[test]
    fn cross_page_access() {
        let mut m = MemImage::new();
        let a = Addr::new(PAGE_BYTES as u64 - 4); // quad straddles page 0 / page 1
        m.write(a, DataSize::Quad, 0x0102_0304_0506_0708);
        assert_eq!(m.read(a, DataSize::Quad), 0x0102_0304_0506_0708);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn narrow_write_leaves_neighbours() {
        let mut m = MemImage::new();
        m.write(Addr::new(0x20), DataSize::Quad, u64::MAX);
        m.write(Addr::new(0x22), DataSize::Byte, 0);
        assert_eq!(
            m.read(Addr::new(0x20), DataSize::Quad),
            0xFFFF_FFFF_FF00_FFFF
        );
    }

    #[test]
    fn clone_is_deep() {
        let mut m = MemImage::new();
        m.write(Addr::new(0x30), DataSize::Word, 7);
        let snapshot = m.clone();
        m.write(Addr::new(0x30), DataSize::Word, 9);
        assert_eq!(snapshot.read(Addr::new(0x30), DataSize::Word), 7);
    }

    #[test]
    fn page_cache_tracks_interleaved_pages() {
        // Alternating traffic to two pages exercises the one-entry cache's
        // replacement; values must stay exact.
        let mut m = MemImage::new();
        let a = Addr::new(0x1000);
        let b = Addr::new(0x9000);
        m.write(a, DataSize::Quad, 0xAAAA);
        m.write(b, DataSize::Quad, 0xBBBB);
        for _ in 0..4 {
            assert_eq!(m.read(a, DataSize::Quad), 0xAAAA);
            assert_eq!(m.read(b, DataSize::Quad), 0xBBBB);
        }
        assert_eq!(m.resident_pages(), 2);
    }
}
