//! A TLB timing model (128-entry, 4-way in the paper's configuration).

use sqip_types::Addr;

use crate::cache::CacheStats;

use serde::{Deserialize, Serialize};

/// TLB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Cycles charged on a miss (page-table walk).
    pub miss_latency: u64,
}

impl Default for TlbConfig {
    /// The paper's TLB: 128-entry, 4-way, 4KB pages. The paper does not
    /// state a walk latency; 30 cycles is a representative mid-2000s value.
    fn default() -> TlbConfig {
        TlbConfig {
            entries: 128,
            ways: 4,
            page_bytes: 4096,
            miss_latency: 30,
        }
    }
}

/// VPN tag of an invalid entry (no 64-bit address shifts down to it).
const INVALID_VPN: u64 = u64::MAX;

/// A set-associative TLB that reports hit/miss; translation is identity in
/// the flat simulated address space, so only timing is modelled.
///
/// Like [`Cache`](crate::Cache), tags (VPNs) and LRU stamps live in
/// parallel arrays so the per-access hit scan touches one packed line.
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    vpns: Vec<u64>,
    lru: Vec<u64>,
    stats: CacheStats,
    tick: u64,
    /// Precomputed page shift and set mask (power-of-two geometry is
    /// asserted at construction): translation happens on every simulated
    /// memory access, so no division on that path.
    page_shift: u32,
    set_mask: u64,
}

impl Tlb {
    /// Builds a TLB.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (zero ways, entries not divisible into
    /// power-of-two set count, non-power-of-two page size).
    #[must_use]
    pub fn new(config: TlbConfig) -> Tlb {
        assert!(config.ways > 0, "TLB must have at least one way");
        assert!(
            config.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        let sets = config.entries / config.ways;
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "TLB set count must be a power of two"
        );
        Tlb {
            config,
            vpns: vec![INVALID_VPN; config.entries],
            lru: vec![0; config.entries],
            stats: CacheStats::default(),
            tick: 0,
            page_shift: config.page_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
        }
    }

    /// Hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Translates `addr`, returning the extra latency charged (0 on hit,
    /// `miss_latency` on a walk).
    pub fn translate(&mut self, addr: Addr) -> u64 {
        self.tick += 1;
        let vpn = addr.0 >> self.page_shift;
        let set = (vpn & self.set_mask) as usize;
        let base = set * self.config.ways;
        let ways = &self.vpns[base..base + self.config.ways];

        if let Some(way) = ways.iter().position(|&v| v == vpn) {
            self.lru[base + way] = self.tick;
            self.stats.hits += 1;
            return 0;
        }
        let mut victim = 0;
        let mut victim_key = u64::MAX;
        for way in 0..self.config.ways {
            let key = if self.vpns[base + way] == INVALID_VPN {
                0
            } else {
                self.lru[base + way]
            };
            if key < victim_key {
                victim_key = key;
                victim = way;
            }
        }
        self.vpns[base + victim] = vpn;
        self.lru[base + victim] = self.tick;
        self.stats.misses += 1;
        self.config.miss_latency
    }
}

sqip_snapshot::snapshot_struct!(TlbConfig {
    entries,
    ways,
    page_bytes,
    miss_latency,
});
sqip_snapshot::snapshot_struct!(Tlb {
    config,
    vpns,
    lru,
    stats,
    tick,
    page_shift,
    set_mask,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_walk() {
        let mut t = Tlb::new(TlbConfig::default());
        assert_eq!(t.translate(Addr::new(0x1000)), 30);
        assert_eq!(t.translate(Addr::new(0x1ffc)), 0, "same page hits");
        assert_eq!(t.translate(Addr::new(0x2000)), 30, "next page walks");
    }

    #[test]
    fn capacity_eviction() {
        let cfg = TlbConfig {
            entries: 4,
            ways: 2,
            page_bytes: 4096,
            miss_latency: 30,
        };
        let mut t = Tlb::new(cfg);
        // Pages 0, 2, 4 all map to set 0 (2 sets).
        t.translate(Addr::new(0x0000));
        t.translate(Addr::new(0x2000));
        t.translate(Addr::new(0x4000)); // evicts page 0
        assert_eq!(t.translate(Addr::new(0x0000)), 30, "page 0 was evicted");
    }

    #[test]
    fn stats_accumulate() {
        let mut t = Tlb::new(TlbConfig::default());
        t.translate(Addr::new(0));
        t.translate(Addr::new(8));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }
}
