//! A set-associative cache timing model with true-LRU replacement.

use sqip_types::Addr;

use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Access latency in cycles on a hit.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// The paper's L1 data cache: 64KB, 2-way, 3-cycle access.
    #[must_use]
    pub fn l1d() -> CacheConfig {
        CacheConfig {
            capacity_bytes: 64 * 1024,
            ways: 2,
            line_bytes: 64,
            hit_latency: 3,
        }
    }

    /// The paper's unified L2: 1MB, 8-way, 10-cycle access.
    #[must_use]
    pub fn l2() -> CacheConfig {
        CacheConfig {
            capacity_bytes: 1024 * 1024,
            ways: 8,
            line_bytes: 64,
            hit_latency: 10,
        }
    }

    /// Number of sets implied by the geometry.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.capacity_bytes / (self.ways * self.line_bytes)
    }
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses observed.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0,1]`; zero when no accesses occurred.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// Tag value of an invalid line. Real tags are `line >> set_shift` of
/// 64-bit addresses and cannot reach it.
const INVALID_TAG: u64 = u64::MAX;

/// A set-associative tag array with true-LRU replacement.
///
/// Only tags are tracked — data lives in the flat
/// [`MemImage`](crate::MemImage). `access` performs lookup-and-fill: a miss
/// immediately installs the line (an atomic-fill simplification standard in
/// trace-driven models).
///
/// Layout note: tags and LRU stamps live in two parallel arrays rather
/// than an array of line structs, so the hit path — executed for every
/// simulated memory access — scans one cache line of packed tags and
/// touches the LRU array only on the hit way.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    tags: Vec<u64>,
    lru: Vec<u64>,
    stats: CacheStats,
    tick: u64,
    /// `sets - 1`; the power-of-two set count is asserted at
    /// construction, so slicing is a mask + shift, not a division (the
    /// cache is probed on every simulated memory access).
    set_mask: u64,
    set_shift: u32,
}

impl Cache {
    /// Builds a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, non-power-of-two
    /// line size, capacity not divisible into sets).
    #[must_use]
    pub fn new(config: CacheConfig) -> Cache {
        assert!(config.ways > 0, "cache must have at least one way");
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = config.sets();
        assert!(sets > 0, "cache capacity too small for geometry");
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two for address slicing"
        );
        Cache {
            config,
            tags: vec![INVALID_TAG; sets * config.ways],
            lru: vec![0; sets * config.ways],
            stats: CacheStats::default(),
            tick: 0,
            set_mask: sets as u64 - 1,
            set_shift: sets.trailing_zeros(),
        }
    }

    /// The configured geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated hit/miss statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `addr`, filling on miss. Returns `true` on hit.
    pub fn access(&mut self, addr: Addr) -> bool {
        self.tick += 1;
        let (set, tag) = self.slice(addr);
        let base = set * self.config.ways;
        let ways = &self.tags[base..base + self.config.ways];

        if let Some(way) = ways.iter().position(|&t| t == tag) {
            self.lru[base + way] = self.tick;
            self.stats.hits += 1;
            return true;
        }

        // Miss: fill into the invalid or least-recently-used way (first
        // minimal way wins ties, matching the pre-split line scan).
        let mut victim = 0;
        let mut victim_key = u64::MAX;
        for way in 0..self.config.ways {
            let key = if self.tags[base + way] == INVALID_TAG {
                0
            } else {
                self.lru[base + way]
            };
            if key < victim_key {
                victim_key = key;
                victim = way;
            }
        }
        self.tags[base + victim] = tag;
        self.lru[base + victim] = self.tick;
        self.stats.misses += 1;
        false
    }

    /// Whether `addr` is currently resident (no state change, no stats).
    #[must_use]
    pub fn probe(&self, addr: Addr) -> bool {
        let (set, tag) = self.slice(addr);
        let base = set * self.config.ways;
        self.tags[base..base + self.config.ways].contains(&tag)
    }

    /// Invalidates everything (used at SSN wrap-around drains only if
    /// configured; caches normally survive pipeline flushes).
    pub fn invalidate_all(&mut self) {
        self.tags.fill(INVALID_TAG);
    }

    fn slice(&self, addr: Addr) -> (usize, u64) {
        let line = addr.line(self.config.line_bytes as u64);
        ((line & self.set_mask) as usize, line >> self.set_shift)
    }
}

sqip_snapshot::snapshot_struct!(CacheConfig {
    capacity_bytes,
    ways,
    line_bytes,
    hit_latency,
});
sqip_snapshot::snapshot_struct!(CacheStats { hits, misses });
sqip_snapshot::snapshot_struct!(Cache {
    config,
    tags,
    lru,
    stats,
    tick,
    set_mask,
    set_shift,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512B.
        Cache::new(CacheConfig {
            capacity_bytes: 512,
            ways: 2,
            line_bytes: 64,
            hit_latency: 3,
        })
    }

    #[test]
    fn paper_geometries() {
        assert_eq!(CacheConfig::l1d().sets(), 512);
        assert_eq!(CacheConfig::l2().sets(), 2048);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(Addr::new(0x1000)));
        assert!(c.access(Addr::new(0x1000)));
        assert!(c.access(Addr::new(0x1004)), "same line, different byte");
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 1 });
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = sets*line = 256B).
        let a = Addr::new(0x000);
        let b = Addr::new(0x100);
        let d = Addr::new(0x200);
        c.access(a);
        c.access(b);
        c.access(a); // a is now MRU
        assert!(!c.access(d), "d misses and evicts b");
        assert!(c.probe(a), "a survived");
        assert!(!c.probe(b), "b was the LRU victim");
        assert!(c.probe(d));
    }

    #[test]
    fn probe_does_not_perturb() {
        let mut c = tiny();
        c.access(Addr::new(0));
        let before = c.stats();
        assert!(c.probe(Addr::new(0)));
        assert!(!c.probe(Addr::new(0x40)));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn invalidate_all_empties() {
        let mut c = tiny();
        c.access(Addr::new(0));
        c.invalidate_all();
        assert!(!c.probe(Addr::new(0)));
    }

    #[test]
    fn miss_ratio_tracks() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_ratio(), 0.0);
        c.access(Addr::new(0));
        c.access(Addr::new(0));
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_line_size() {
        let _ = Cache::new(CacheConfig {
            capacity_bytes: 512,
            ways: 2,
            line_bytes: 48,
            hit_latency: 1,
        });
    }
}
