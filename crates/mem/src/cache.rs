//! A set-associative cache timing model with true-LRU replacement.

use sqip_types::Addr;

use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Access latency in cycles on a hit.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// The paper's L1 data cache: 64KB, 2-way, 3-cycle access.
    #[must_use]
    pub fn l1d() -> CacheConfig {
        CacheConfig {
            capacity_bytes: 64 * 1024,
            ways: 2,
            line_bytes: 64,
            hit_latency: 3,
        }
    }

    /// The paper's unified L2: 1MB, 8-way, 10-cycle access.
    #[must_use]
    pub fn l2() -> CacheConfig {
        CacheConfig {
            capacity_bytes: 1024 * 1024,
            ways: 8,
            line_bytes: 64,
            hit_latency: 10,
        }
    }

    /// Number of sets implied by the geometry.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.capacity_bytes / (self.ways * self.line_bytes)
    }
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses observed.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0,1]`; zero when no accesses occurred.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u64,
    /// Higher = more recently used.
    lru: u64,
}

/// A set-associative tag array with true-LRU replacement.
///
/// Only tags are tracked — data lives in the flat
/// [`MemImage`](crate::MemImage). `access` performs lookup-and-fill: a miss
/// immediately installs the line (an atomic-fill simplification standard in
/// trace-driven models).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Builds a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, non-power-of-two
    /// line size, capacity not divisible into sets).
    #[must_use]
    pub fn new(config: CacheConfig) -> Cache {
        assert!(config.ways > 0, "cache must have at least one way");
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = config.sets();
        assert!(sets > 0, "cache capacity too small for geometry");
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two for address slicing"
        );
        Cache {
            config,
            lines: vec![Line::default(); sets * config.ways],
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The configured geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated hit/miss statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `addr`, filling on miss. Returns `true` on hit.
    pub fn access(&mut self, addr: Addr) -> bool {
        self.tick += 1;
        let (set, tag) = self.slice(addr);
        let base = set * self.config.ways;
        let ways = &mut self.lines[base..base + self.config.ways];

        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.tick;
            self.stats.hits += 1;
            return true;
        }

        // Miss: fill into the invalid or least-recently-used way.
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("at least one way");
        victim.valid = true;
        victim.tag = tag;
        victim.lru = self.tick;
        self.stats.misses += 1;
        false
    }

    /// Whether `addr` is currently resident (no state change, no stats).
    #[must_use]
    pub fn probe(&self, addr: Addr) -> bool {
        let (set, tag) = self.slice(addr);
        let base = set * self.config.ways;
        self.lines[base..base + self.config.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates everything (used at SSN wrap-around drains only if
    /// configured; caches normally survive pipeline flushes).
    pub fn invalidate_all(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
        }
    }

    fn slice(&self, addr: Addr) -> (usize, u64) {
        let line = addr.line(self.config.line_bytes as u64);
        let sets = self.config.sets() as u64;
        ((line % sets) as usize, line / sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512B.
        Cache::new(CacheConfig {
            capacity_bytes: 512,
            ways: 2,
            line_bytes: 64,
            hit_latency: 3,
        })
    }

    #[test]
    fn paper_geometries() {
        assert_eq!(CacheConfig::l1d().sets(), 512);
        assert_eq!(CacheConfig::l2().sets(), 2048);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(Addr::new(0x1000)));
        assert!(c.access(Addr::new(0x1000)));
        assert!(c.access(Addr::new(0x1004)), "same line, different byte");
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 1 });
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = sets*line = 256B).
        let a = Addr::new(0x000);
        let b = Addr::new(0x100);
        let d = Addr::new(0x200);
        c.access(a);
        c.access(b);
        c.access(a); // a is now MRU
        assert!(!c.access(d), "d misses and evicts b");
        assert!(c.probe(a), "a survived");
        assert!(!c.probe(b), "b was the LRU victim");
        assert!(c.probe(d));
    }

    #[test]
    fn probe_does_not_perturb() {
        let mut c = tiny();
        c.access(Addr::new(0));
        let before = c.stats();
        assert!(c.probe(Addr::new(0)));
        assert!(!c.probe(Addr::new(0x40)));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn invalidate_all_empties() {
        let mut c = tiny();
        c.access(Addr::new(0));
        c.invalidate_all();
        assert!(!c.probe(Addr::new(0)));
    }

    #[test]
    fn miss_ratio_tracks() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_ratio(), 0.0);
        c.access(Addr::new(0));
        c.access(Addr::new(0));
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_line_size() {
        let _ = Cache::new(CacheConfig {
            capacity_bytes: 512,
            ways: 2,
            line_bytes: 48,
            hit_latency: 1,
        });
    }
}
