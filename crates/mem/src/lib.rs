//! Memory substrate for the SQIP reproduction: a sparse byte-addressable
//! memory image, set-associative cache models, a TLB model, and the
//! two-level hierarchy used by the paper's processor configuration
//! (64KB 2-way 3-cycle L1D, 1MB 8-way 10-cycle L2, 150-cycle memory).
//!
//! The cache models are *timing* models: they track tags and replacement
//! state and answer "how many cycles does this access take", while actual
//! data lives in the flat [`MemImage`]. This mirrors how trace-driven
//! simulators of the paper's era were built and keeps data correctness
//! questions (the whole point of store-load forwarding) in one place.
//!
//! # Example
//!
//! ```
//! use sqip_mem::{Hierarchy, HierarchyConfig, MemImage};
//! use sqip_types::{Addr, DataSize};
//!
//! let mut mem = MemImage::new();
//! mem.write(Addr::new(0x1000), DataSize::Quad, 0xdead_beef);
//! assert_eq!(mem.read(Addr::new(0x1000), DataSize::Quad), 0xdead_beef);
//!
//! let mut hier = Hierarchy::new(HierarchyConfig::default());
//! let cold = hier.access(Addr::new(0x1000));
//! let warm = hier.access(Addr::new(0x1000));
//! assert!(cold.total_latency() > warm.total_latency());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hierarchy;
mod image;
mod pagetable;
mod tlb;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{AccessOutcome, Hierarchy, HierarchyConfig, MemLevel};
pub use image::MemImage;
pub use pagetable::{PageTable, PAGE_ENTRIES};
pub use tlb::{Tlb, TlbConfig};
