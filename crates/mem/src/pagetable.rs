//! A generic sparse page table with a one-entry page cache — the shared
//! mechanism behind [`MemImage`](crate::MemImage) and the simulator's
//! streaming dependence oracle.

use std::cell::Cell;
use std::collections::HashMap;

use sqip_snapshot::{SnapError, SnapReader, SnapWriter, Snapshot};

/// Entries per page (4KB pages for byte-granular tables).
pub const PAGE_ENTRIES: usize = 4096;

/// A sparse array of `T` organised as [`PAGE_ENTRIES`]-entry pages
/// allocated on first write.
///
/// Two properties make it fit the simulator's per-memory-access hot
/// path:
///
/// * callers resolve a page **once per span** (via [`PageTable::page`] /
///   [`PageTable::page_mut_or_alloc`]) and then index the returned
///   array directly, instead of paying a map lookup per entry;
/// * a one-entry most-recently-resolved cache short-circuits the hash
///   lookup for the common case of repeated traffic to one page. Pages
///   are never deallocated, so the cached slot stays valid for the
///   table's lifetime. (`u64::MAX` is not a reachable page number —
///   page numbers are addresses divided by the page size — so it
///   doubles as the empty sentinel.)
#[derive(Debug, Clone)]
pub struct PageTable<T> {
    /// The value unwritten entries read as (pages are born filled with
    /// it).
    empty: T,
    /// Page number -> slot in `pages`.
    index: HashMap<u64, u32>,
    pages: Vec<Box<[T; PAGE_ENTRIES]>>,
    /// Most recently resolved (page number, slot).
    last: Cell<(u64, u32)>,
}

impl<T: Copy> PageTable<T> {
    /// An empty table whose entries read as `empty`.
    pub fn new(empty: T) -> PageTable<T> {
        PageTable {
            empty,
            index: HashMap::new(),
            pages: Vec::new(),
            last: Cell::new((u64::MAX, 0)),
        }
    }

    /// Number of pages that have been touched by writes.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// The page `page_no`, if resident (reads never allocate).
    #[inline]
    #[must_use]
    pub fn page(&self, page_no: u64) -> Option<&[T; PAGE_ENTRIES]> {
        let (lp, li) = self.last.get();
        if lp == page_no {
            return Some(&self.pages[li as usize]);
        }
        let i = *self.index.get(&page_no)?;
        self.last.set((page_no, i));
        Some(&self.pages[i as usize])
    }

    /// The page `page_no`, allocated (filled with the empty value) on
    /// first touch.
    #[inline]
    pub fn page_mut_or_alloc(&mut self, page_no: u64) -> &mut [T; PAGE_ENTRIES] {
        let (lp, li) = self.last.get();
        if lp == page_no {
            return &mut self.pages[li as usize];
        }
        let next = self.pages.len() as u32;
        let i = *self.index.entry(page_no).or_insert(next);
        if i == next {
            self.pages.push(Box::new([self.empty; PAGE_ENTRIES]));
        }
        self.last.set((page_no, i));
        &mut self.pages[i as usize]
    }
}

impl<T: Snapshot + Copy> Snapshot for PageTable<T> {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        self.empty.save(w)?;
        // Pages in slot order (slot numbering must survive, the index
        // maps into it), then the index as sorted pairs so the encoding
        // is independent of HashMap iteration order.
        w.put_u64(self.pages.len() as u64);
        for page in &self.pages {
            for entry in page.iter() {
                entry.save(w)?;
            }
        }
        let mut pairs: Vec<(u64, u32)> = self.index.iter().map(|(&p, &s)| (p, s)).collect();
        pairs.sort_unstable();
        pairs.save(w)
    }
    fn load(r: &mut SnapReader) -> Result<PageTable<T>, SnapError> {
        let empty = T::load(r)?;
        let n_pages = usize::load(r)?;
        let mut pages = Vec::with_capacity(n_pages.min(64));
        for _ in 0..n_pages {
            let mut page = Vec::with_capacity(PAGE_ENTRIES);
            for _ in 0..PAGE_ENTRIES {
                page.push(T::load(r)?);
            }
            let boxed: Box<[T; PAGE_ENTRIES]> = page
                .into_boxed_slice()
                .try_into()
                .map_err(|_| SnapError::Corrupt("page size mismatch".into()))?;
            pages.push(boxed);
        }
        let pairs = Vec::<(u64, u32)>::load(r)?;
        if pairs.len() != n_pages {
            return Err(SnapError::Corrupt(format!(
                "page index has {} entries for {} pages",
                pairs.len(),
                n_pages
            )));
        }
        let mut index = HashMap::with_capacity(n_pages);
        for (page_no, slot) in pairs {
            if slot as usize >= n_pages || index.insert(page_no, slot).is_some() {
                return Err(SnapError::Corrupt(format!(
                    "page index entry ({page_no}, {slot}) invalid"
                )));
            }
        }
        Ok(PageTable {
            empty,
            index,
            pages,
            // The one-entry lookup cache is a pure accelerator; restore
            // it to the empty sentinel.
            last: Cell::new((u64::MAX, 0)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_never_allocate_and_writes_do() {
        let mut t: PageTable<u32> = PageTable::new(7);
        assert!(t.page(3).is_none());
        assert_eq!(t.resident_pages(), 0);
        t.page_mut_or_alloc(3)[17] = 99;
        assert_eq!(t.resident_pages(), 1);
        assert_eq!(t.page(3).unwrap()[17], 99);
        assert_eq!(t.page(3).unwrap()[18], 7, "untouched entries read empty");
    }

    #[test]
    fn page_cache_survives_interleaving_and_growth() {
        let mut t: PageTable<u8> = PageTable::new(0);
        for p in 0..32u64 {
            t.page_mut_or_alloc(p)[0] = p as u8;
        }
        for p in (0..32u64).rev() {
            assert_eq!(t.page(p).unwrap()[0], p as u8);
        }
        assert_eq!(t.resident_pages(), 32);
    }
}
