//! Property-based tests: the sparse memory image must behave exactly like
//! a flat byte map under arbitrary read/write sequences.

use proptest::prelude::*;
use sqip_mem::MemImage;
use sqip_types::{Addr, DataSize};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Write(u64, DataSize, u64),
    Read(u64, DataSize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let size = prop_oneof![
        Just(DataSize::Byte),
        Just(DataSize::Half),
        Just(DataSize::Word),
        Just(DataSize::Quad),
    ];
    prop_oneof![
        (0u64..16_384, size.clone(), any::<u64>()).prop_map(|(a, s, v)| Op::Write(a, s, v)),
        (0u64..16_384, size).prop_map(|(a, s)| Op::Read(a, s)),
    ]
}

proptest! {
    #[test]
    fn image_matches_reference_byte_map(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut image = MemImage::new();
        let mut reference: HashMap<u64, u8> = HashMap::new();
        for op in ops {
            match op {
                Op::Write(a, s, v) => {
                    image.write(Addr::new(a), s, v);
                    for (i, b) in Addr::new(a).span(s).byte_addrs().enumerate() {
                        reference.insert(b.0, (v >> (8 * i)) as u8);
                    }
                }
                Op::Read(a, s) => {
                    let mut want = 0u64;
                    for (i, b) in Addr::new(a).span(s).byte_addrs().enumerate() {
                        want |= u64::from(*reference.get(&b.0).unwrap_or(&0)) << (8 * i);
                    }
                    prop_assert_eq!(image.read(Addr::new(a), s), want);
                }
            }
        }
    }

    #[test]
    fn write_read_round_trip(a in 0u64..1_000_000, v in any::<u64>()) {
        let mut image = MemImage::new();
        for s in DataSize::ALL {
            image.write(Addr::new(a), s, v);
            prop_assert_eq!(image.read(Addr::new(a), s), s.truncate(v));
        }
    }
}
