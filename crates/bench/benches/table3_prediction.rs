//! Micro-bench for the Table 3 regenerator: prediction-diagnostic
//! simulation of the indexed SQ with and without delay prediction on a
//! shrunk not-most-recent-heavy workload (mesa.t).

use sqip::{by_name, shrink, simulate, SqDesign};
use sqip_bench::micro::Group;
use std::hint::black_box;

fn main() {
    let spec = shrink(by_name("mesa.t").expect("exists"), 300);
    let group = Group::new("table3");
    for design in [SqDesign::Indexed3Fwd, SqDesign::Indexed3FwdDly] {
        group.bench(&format!("mesa.t/{design}"), || {
            black_box(simulate(&spec, design).expect("mesa.t simulates"));
        });
    }
}
