//! Criterion bench for the Table 3 regenerator: prediction-diagnostic
//! simulation of the indexed SQ with and without delay prediction on a
//! shrunk not-most-recent-heavy workload (mesa.t).

use criterion::{criterion_group, criterion_main, Criterion};
use sqip_bench::{shrink, sim};
use sqip_core::SqDesign;
use sqip_workloads::by_name;

fn bench(c: &mut Criterion) {
    let spec = shrink(by_name("mesa.t").expect("exists"), 300);
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("mesa.t/indexed-3-fwd", |b| {
        b.iter(|| std::hint::black_box(sim(&spec, SqDesign::Indexed3Fwd)))
    });
    g.bench_function("mesa.t/indexed-3-fwd+dly", |b| {
        b.iter(|| std::hint::black_box(sim(&spec, SqDesign::Indexed3FwdDly)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
