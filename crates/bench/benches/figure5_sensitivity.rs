//! Criterion bench for the Figure 5 regenerator: predictor-capacity
//! sensitivity points (shrunk vortex).

use criterion::{criterion_group, criterion_main, Criterion};
use sqip_bench::{shrink, sim_with};
use sqip_core::{SimConfig, SqDesign};
use sqip_workloads::by_name;

fn bench(c: &mut Criterion) {
    let spec = shrink(by_name("vortex").expect("exists"), 300);
    let mut g = c.benchmark_group("figure5");
    g.sample_size(10);
    for capacity in [512usize, 4096, 8192] {
        g.bench_function(format!("vortex/fsp-ddp-{capacity}"), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
                cfg.fsp.entries = capacity;
                cfg.ddp.entries = capacity;
                std::hint::black_box(sim_with(&spec, cfg))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
