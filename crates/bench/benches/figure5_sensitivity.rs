//! Micro-bench for the Figure 5 regenerator: predictor-capacity
//! sensitivity points (shrunk vortex).

use sqip::{by_name, shrink, simulate_with, SimConfig, SqDesign};
use sqip_bench::micro::Group;
use std::hint::black_box;

fn main() {
    let spec = shrink(by_name("vortex").expect("exists"), 300);
    let group = Group::new("figure5");
    for capacity in [512usize, 4096, 8192] {
        group.bench(&format!("vortex/fsp-ddp-{capacity}"), || {
            let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
            cfg.fsp.entries = capacity;
            cfg.ddp.entries = capacity;
            black_box(simulate_with(&spec, cfg).expect("vortex simulates"));
        });
    }
}
