//! Micro-bench for the Figure 4 regenerator: one workload under every
//! store-queue design (shrunk gzip), driven through the Experiment API.

use sqip::{by_name, shrink, simulate, SqDesign};
use sqip_bench::micro::Group;
use std::hint::black_box;

fn main() {
    let spec = shrink(by_name("gzip").expect("exists"), 300);
    let group = Group::new("figure4");
    for design in SqDesign::ALL {
        group.bench(design.label(), || {
            black_box(simulate(&spec, design).expect("gzip simulates"));
        });
    }
}
