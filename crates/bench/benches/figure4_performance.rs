//! Criterion bench for the Figure 4 regenerator: one workload under every
//! store-queue design (shrunk gzip).

use criterion::{criterion_group, criterion_main, Criterion};
use sqip_bench::{shrink, sim};
use sqip_core::SqDesign;
use sqip_workloads::by_name;

fn bench(c: &mut Criterion) {
    let spec = shrink(by_name("gzip").expect("exists"), 300);
    let mut g = c.benchmark_group("figure4");
    g.sample_size(10);
    for design in SqDesign::ALL {
        g.bench_function(format!("gzip/{design}"), |b| {
            b.iter(|| std::hint::black_box(sim(&spec, design)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
