//! Criterion benches for the design-choice ablations called out in
//! DESIGN.md: SSN width (wrap-drain frequency), FSP training ratio,
//! re-execution port pressure, the ordering-detection substrate
//! (SVW re-execution vs a conventional LQ CAM), the Store Sets
//! formulation, and path-qualified FSP indexing.

use criterion::{criterion_group, criterion_main, Criterion};
use sqip_bench::{shrink, sim_with};
use sqip_core::{OrderingMode, SimConfig, SqDesign};
use sqip_predictors::TrainRatio;
use sqip_workloads::by_name;

fn bench(c: &mut Criterion) {
    let spec = shrink(by_name("eon.c").expect("exists"), 300);
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    for bits in [10u32, 16] {
        g.bench_function(format!("eon.c/ssn-bits-{bits}"), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
                cfg.ssn_bits = bits;
                std::hint::black_box(sim_with(&spec, cfg))
            })
        });
    }
    for (p, n) in [(1u8, 1u8), (8, 1)] {
        g.bench_function(format!("eon.c/fsp-ratio-{p}to{n}"), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
                cfg.fsp.ratio = TrainRatio::new(p, n);
                std::hint::black_box(sim_with(&spec, cfg))
            })
        });
    }
    for ports in [1usize, 2] {
        g.bench_function(format!("eon.c/reexec-ports-{ports}"), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
                cfg.reexec_ports = ports;
                std::hint::black_box(sim_with(&spec, cfg))
            })
        });
    }
    for (label, ordering) in [("svw", OrderingMode::SvwReexecution), ("lqcam", OrderingMode::LqCam)] {
        g.bench_function(format!("eon.c/ordering-{label}"), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::with_design(SqDesign::Associative3);
                cfg.ordering = ordering;
                std::hint::black_box(sim_with(&spec, cfg))
            })
        });
    }
    for (label, design) in [
        ("original", SqDesign::Associative3StoreSets),
        ("reformulated", SqDesign::Associative3),
    ] {
        g.bench_function(format!("eon.c/storesets-{label}"), |b| {
            b.iter(|| std::hint::black_box(sim_with(&spec, SimConfig::with_design(design))))
        });
    }
    for path_bits in [0u32, 4] {
        g.bench_function(format!("eon.c/fsp-path-bits-{path_bits}"), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
                cfg.fsp.path_bits = path_bits;
                std::hint::black_box(sim_with(&spec, cfg))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
