//! Micro-benches for the design-choice ablations: SSN width (wrap-drain
//! frequency), FSP training ratio, re-execution port pressure, the
//! ordering-detection substrate (SVW re-execution vs a conventional LQ
//! CAM), the Store Sets formulation, and path-qualified FSP indexing.
//!
//! Each ablation family is expressed as one [`Experiment`] whose `vary`
//! axis is the ablated knob; the harness times the whole (serial) sweep
//! so throughput numbers stay comparable run to run.

use sqip::{by_name, shrink, Experiment, OrderingMode, SqDesign};
use sqip_bench::micro::Group;
use sqip_predictors::TrainRatio;
use std::hint::black_box;

fn main() {
    let spec = shrink(by_name("eon.c").expect("exists"), 300);
    let group = Group::new("ablations");

    let base = || {
        Experiment::new()
            .workload(spec.clone())
            .design(SqDesign::Indexed3FwdDly)
            .threads(1)
    };

    group.bench("eon.c/ssn-bits", || {
        let exp = [10u32, 16].into_iter().fold(base(), |e, bits| {
            e.vary(format!("ssn-{bits}"), move |cfg| cfg.ssn_bits = bits)
        });
        black_box(exp.run().expect("ablation sweep runs"));
    });

    group.bench("eon.c/fsp-ratio", || {
        let exp = [(1u8, 1u8), (8, 1)].into_iter().fold(base(), |e, (p, n)| {
            e.vary(format!("ratio-{p}to{n}"), move |cfg| {
                cfg.fsp.ratio = TrainRatio::new(p, n);
            })
        });
        black_box(exp.run().expect("ablation sweep runs"));
    });

    group.bench("eon.c/reexec-ports", || {
        let exp = [1usize, 2].into_iter().fold(base(), |e, ports| {
            e.vary(format!("ports-{ports}"), move |cfg| {
                cfg.reexec_ports = ports
            })
        });
        black_box(exp.run().expect("ablation sweep runs"));
    });

    group.bench("eon.c/ordering", || {
        let exp = Experiment::new()
            .workload(spec.clone())
            .design(SqDesign::Associative3)
            .threads(1)
            .vary("svw", |cfg| cfg.ordering = OrderingMode::SvwReexecution)
            .vary("lqcam", |cfg| cfg.ordering = OrderingMode::LqCam);
        black_box(exp.run().expect("ablation sweep runs"));
    });

    group.bench("eon.c/storesets", || {
        let exp = Experiment::new()
            .workload(spec.clone())
            .designs([SqDesign::Associative3StoreSets, SqDesign::Associative3])
            .threads(1);
        black_box(exp.run().expect("ablation sweep runs"));
    });

    group.bench("eon.c/fsp-path-bits", || {
        let exp = [0u32, 4].into_iter().fold(base(), |e, bits| {
            e.vary(format!("path-{bits}"), move |cfg| cfg.fsp.path_bits = bits)
        });
        black_box(exp.run().expect("ablation sweep runs"));
    });
}
