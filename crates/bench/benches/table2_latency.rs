//! Criterion bench for the Table 2 regenerator: the analytic latency and
//! energy model (fast, pure arithmetic).

use criterion::{criterion_group, criterion_main, Criterion};
use sqip_cacti::{sq_energy_pj, table2_sq_rows, SqGeometry, TechParams};

fn bench(c: &mut Criterion) {
    let tech = TechParams::default();
    c.bench_function("table2/full_sq_table", |b| {
        b.iter(|| std::hint::black_box(table2_sq_rows(&tech)))
    });
    c.bench_function("table2/assoc_64x2_latency", |b| {
        b.iter(|| std::hint::black_box(tech.sq_latency_ns(SqGeometry::associative(64, 2))))
    });
    c.bench_function("table2/energy_comparison", |b| {
        b.iter(|| {
            let a = sq_energy_pj(SqGeometry::associative(64, 2));
            let i = sq_energy_pj(SqGeometry::indexed(64, 2));
            std::hint::black_box(a - i)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
