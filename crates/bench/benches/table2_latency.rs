//! Micro-bench for the Table 2 regenerator: the analytic latency and
//! energy model (fast, pure arithmetic).

use sqip_bench::micro::Group;
use sqip_cacti::{sq_energy_pj, table2_sq_rows, SqGeometry, TechParams};
use std::hint::black_box;

fn main() {
    let tech = TechParams::default();
    let group = Group::new("table2");
    group.bench("full_sq_table", || {
        for _ in 0..10_000 {
            black_box(table2_sq_rows(&tech));
        }
    });
    group.bench("assoc_64x2_latency", || {
        for _ in 0..100_000 {
            black_box(tech.sq_latency_ns(SqGeometry::associative(64, 2)));
        }
    });
    group.bench("energy_comparison", || {
        for _ in 0..100_000 {
            let a = sq_energy_pj(SqGeometry::associative(64, 2));
            let i = sq_energy_pj(SqGeometry::indexed(64, 2));
            black_box(a - i);
        }
    });
}
