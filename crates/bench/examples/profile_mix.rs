//! Profiling driver: runs the event engine over the streamed mix
//! generator repeatedly, so a sampling profiler sees only the hot
//! simulation path (no reference engine, no SPEC models). Prints
//! per-repetition throughput, which doubles as a quick steady-state
//! check on noisy boxes (take the max of many reps).
//!
//! The per-cycle stage entries carry `#[inline(never)]` so profiles
//! attribute time to stages instead of one fused `step_bounded` frame:
//!
//! ```sh
//! gprofng collect app -p high -o /tmp/prof.er \
//!     target/release/examples/profile_mix 10
//! gprofng display text -functions /tmp/prof.er | head -40
//! ```
#![forbid(unsafe_code)]

use sqip_core::{Engine, Processor, SimConfig, SqDesign, StepOutcome};
use sqip_workloads::WorkloadRegistry;

fn main() {
    let reps: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
    cfg.engine = Engine::Event;
    for _ in 0..reps {
        let source = WorkloadRegistry::global()
            .resolve("mix:0xbeef:2m")
            .unwrap()
            .open()
            .unwrap();
        let mut p = Processor::try_from_source(cfg.clone(), source).unwrap();
        let t0 = std::time::Instant::now();
        loop {
            match p.step() {
                Ok(StepOutcome::Running) => {}
                Ok(StepOutcome::Done) => break,
                Err(e) => panic!("{e}"),
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "committed {} in {} cycles  {:.2} M insts/s",
            p.stats().committed,
            p.stats().cycles,
            p.stats().committed as f64 / dt / 1e6
        );
    }
}
