//! Upstream component-cost probe: per-record cost of trace-file decode,
//! decode + shared oracle, and pure generation, measured in isolation.
//!
//! These are the `d` terms in the sweep sections' `N(d+s)/(d+Ns)`
//! shared-pass model (see README, *The shared-pass sweep engine*);
//! `profile_mix` measures the `s` term. Run both when the sweep
//! speedups in `BENCH_*.json` move and you want to know which side did
//! it:
//!
//! ```text
//! cargo build --release --examples -p sqip-bench
//! ./target/release/examples/profile_upstream
//! ```
#![forbid(unsafe_code)]

use std::time::Instant;

use sqip::WorkloadRegistry;
use sqip_core::oracle_tap;
use sqip_isa::tracefile::{record_trace, TraceReader};
use sqip_isa::TraceSource;

fn main() {
    let workload = "mix:0xbeef:2m";
    let path = std::env::temp_dir().join("profile-upstream.sqtr");

    let mut src = WorkloadRegistry::global()
        .resolve(workload)
        .unwrap()
        .open()
        .unwrap();
    let t = Instant::now();
    let n = record_trace(
        src.as_mut(),
        std::io::BufWriter::new(std::fs::File::create(&path).unwrap()),
    )
    .unwrap();
    println!(
        "record: {n} records in {:.3}s ({:.1} ns/rec)",
        t.elapsed().as_secs_f64(),
        t.elapsed().as_secs_f64() * 1e9 / n as f64
    );
    println!(
        "file size: {} bytes ({:.1} B/rec)",
        std::fs::metadata(&path).unwrap().len(),
        std::fs::metadata(&path).unwrap().len() as f64 / n as f64
    );

    for _ in 0..3 {
        // Decode only.
        let mut r =
            TraceReader::new(std::io::BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
        let t = Instant::now();
        let mut cnt = 0u64;
        let mut buf = [sqip_isa::TraceRecord::default(); 64];
        loop {
            let got = r.next_block(&mut buf).unwrap();
            if got == 0 {
                break;
            }
            cnt += got as u64;
        }
        let d = t.elapsed().as_secs_f64();
        println!(
            "decode:        {cnt} in {:.3}s ({:.1} ns/rec)",
            d,
            d * 1e9 / cnt as f64
        );

        // Decode + oracle tap.
        let r =
            TraceReader::new(std::io::BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
        let (mut tap, _feed) = oracle_tap(r, 1 << 15);
        let t = Instant::now();
        let mut cnt = 0u64;
        loop {
            let got = tap.next_block(&mut buf).unwrap();
            if got == 0 {
                break;
            }
            cnt += got as u64;
        }
        let d = t.elapsed().as_secs_f64();
        println!(
            "decode+oracle: {cnt} in {:.3}s ({:.1} ns/rec)",
            d,
            d * 1e9 / cnt as f64
        );

        // Generator only (the mix stream the sweep section uses today).
        let mut src = WorkloadRegistry::global()
            .resolve(workload)
            .unwrap()
            .open()
            .unwrap();
        let t = Instant::now();
        let mut cnt = 0u64;
        loop {
            let got = src.next_block(&mut buf).unwrap();
            if got == 0 {
                break;
            }
            cnt += got as u64;
        }
        let d = t.elapsed().as_secs_f64();
        println!(
            "generate:      {cnt} in {:.3}s ({:.1} ns/rec)",
            d,
            d * 1e9 / cnt as f64
        );
    }
    let _ = std::fs::remove_file(&path);
}
