//! Harness utilities for the Table/Figure regenerator binaries and the
//! micro-benchmarks.
//!
//! Sweep logic lives in the [`sqip`] facade crate ([`sqip::Experiment`]);
//! this crate only adds the bits specific to the regenerator binaries: a
//! tiny dependency-free wall-clock benchmark harness ([`micro`]) used by
//! the `benches/` targets (the build environment has no criterion), and
//! re-exports of the harness helpers the binaries share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sqip::{geomean, shrink, simulate, simulate_with};

/// Shared `--design <name>` / `--list-designs` handling for the figure
/// and table regenerator binaries: designs are named through the open
/// [`sqip::DesignRegistry`], so any registered design — builtin or custom
/// — can replace a binary's default roster from the command line.
pub mod designs {
    use sqip::{DesignRegistry, SqDesign};

    /// Parsed design-selection flags.
    #[derive(Debug)]
    pub struct DesignArgs {
        /// The selected designs: every `--design <name>` in order, or
        /// `default` when none was given.
        pub designs: Vec<SqDesign>,
        /// The remaining (non-design) arguments, order preserved.
        pub rest: Vec<String>,
    }

    /// Extracts `--design <name>` (repeatable) and `--list-designs` from
    /// `args`.
    ///
    /// Returns `Ok(None)` after printing the registry roster when
    /// `--list-designs` is present (the binary should exit successfully).
    ///
    /// # Errors
    ///
    /// A human-readable message when `--design` is missing its value or
    /// names an unregistered design.
    pub fn parse(
        args: impl IntoIterator<Item = String>,
        default: &[SqDesign],
    ) -> Result<Option<DesignArgs>, String> {
        let mut designs = Vec::new();
        let mut rest = Vec::new();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--list-designs" => {
                    print_roster();
                    return Ok(None);
                }
                "--design" => {
                    let name = it
                        .next()
                        .ok_or_else(|| "--design requires a design name".to_string())?;
                    designs.push(name.parse::<SqDesign>().map_err(|e| e.to_string())?);
                }
                _ => rest.push(arg),
            }
        }
        if designs.is_empty() {
            designs = default.to_vec();
        }
        Ok(Some(DesignArgs { designs, rest }))
    }

    /// Prints every registered design with a capability summary.
    pub fn print_roster() {
        println!("registered store-queue designs:");
        for name in DesignRegistry::global().names() {
            let design: SqDesign = name.parse().expect("registered name parses");
            println!("  {name:<26} {}", describe(design));
        }
    }

    /// A one-line capability summary, derived from the registry.
    #[must_use]
    pub fn describe(design: SqDesign) -> String {
        let mut parts = vec![
            if design.is_indexed() {
                "indexed".to_string()
            } else {
                "associative".to_string()
            },
            format!("{}-cycle SQ", design.sq_latency()),
        ];
        if design.is_oracle() {
            parts.push("oracle scheduling".to_string());
        }
        if design.uses_original_store_sets() {
            parts.push("original store sets".to_string());
        }
        if design.uses_delay() {
            parts.push("delay prediction".to_string());
        }
        if design.predicts_forward_latency() {
            parts.push("fwd-latency scheduling".to_string());
        }
        parts.join(", ")
    }

    /// Unwraps a [`parse`] outcome for a `main()`: prints errors to
    /// stderr and exits (code 2 on bad flags, 0 after `--list-designs`).
    #[must_use]
    pub fn parse_or_exit(
        args: impl IntoIterator<Item = String>,
        default: &[SqDesign],
    ) -> DesignArgs {
        match parse(args, default) {
            Ok(Some(parsed)) => parsed,
            Ok(None) => std::process::exit(0),
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }
}

/// Shared `--workload <name>` / `--list-workloads` handling for the
/// figure and table regenerator binaries — the workload-axis twin of
/// [`designs`]: workloads are named through the open
/// [`sqip::WorkloadRegistry`], so any registered workload (the 47 Table 3
/// models, the generator catalogue, anything registered at runtime) *or*
/// any `mix:`/`chase:`/`stride:` generator name can replace a binary's
/// default roster from the command line, streamed through the simulator
/// in bounded memory.
pub mod workloads {
    use sqip::{Workload, WorkloadRegistry};

    /// Parsed workload-selection flags.
    #[derive(Debug)]
    pub struct WorkloadArgs {
        /// Every `--workload <name>` in order, resolved through the
        /// registry; empty when none was given (binaries then use their
        /// default roster).
        pub workloads: Vec<Workload>,
        /// The remaining (non-workload) arguments, order preserved.
        pub rest: Vec<String>,
    }

    /// Extracts `--workload <name>` (repeatable) and `--list-workloads`
    /// from `args`.
    ///
    /// Returns `Ok(None)` after printing the registry roster when
    /// `--list-workloads` is present (the binary should exit
    /// successfully).
    ///
    /// # Errors
    ///
    /// A human-readable message when `--workload` is missing its value or
    /// names something neither registered nor in the generator grammar.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Option<WorkloadArgs>, String> {
        let mut workloads = Vec::new();
        let mut rest = Vec::new();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--list-workloads" => {
                    print_roster();
                    return Ok(None);
                }
                "--workload" => {
                    let name = it
                        .next()
                        .ok_or_else(|| "--workload requires a workload name".to_string())?;
                    workloads.push(Workload::from_registry(&name).map_err(|e| e.to_string())?);
                }
                _ => rest.push(arg),
            }
        }
        Ok(Some(WorkloadArgs { workloads, rest }))
    }

    /// Prints every registered workload plus the generator grammar.
    pub fn print_roster() {
        let registry = WorkloadRegistry::global();
        println!("registered workloads:");
        for name in registry.names() {
            let entry = registry.lookup(name).expect("listed name resolves");
            let suite = entry
                .suite()
                .map_or_else(|| "-".to_string(), |s| s.to_string());
            println!("  {name:<24} {suite:<6} {}", entry.description());
        }
        println!("parameterized generators (usable directly as --workload names):");
        println!("  mix:<seed>:<insts>        seeded random kernel mix        e.g. mix:0xbeef:10m");
        println!(
            "  chase:<nodes>:<stride>:<insts>  pointer chase             e.g. chase:4096:64:1m"
        );
        println!(
            "  stride:<stride>:<insts>   strided load stream             e.g. stride:4096:500k"
        );
    }

    /// Unwraps a [`parse`] outcome for a `main()`: prints errors to
    /// stderr and exits (code 2 on bad flags, 0 after
    /// `--list-workloads`).
    #[must_use]
    pub fn parse_or_exit(args: impl IntoIterator<Item = String>) -> WorkloadArgs {
        match parse(args) {
            Ok(Some(parsed)) => parsed,
            Ok(None) => std::process::exit(0),
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }
}

/// Shared `--sweep-mode <shared|per-cell>` / `--threads <n>` handling for
/// the figure and table regenerator binaries: every sweep they run goes
/// through the [`sqip::SweepEngine`], so the execution strategy (one
/// shared pass per workload group — the default — or one independent
/// pass per cell) and the worker-thread count are command-line knobs.
/// Results are bit-identical across modes and thread counts; the flags
/// exist for benchmarking and for debugging one mode against the other.
pub mod sweep_flags {
    use sqip::{Experiment, ResultSet, ShardSpec, SqipError, SweepEngine, SweepMode};

    /// Parsed sweep-execution flags.
    #[derive(Debug, Clone)]
    pub struct SweepArgs {
        /// Worker threads (`None`: one per core).
        pub threads: Option<usize>,
        /// Execution mode (default: shared-pass).
        pub mode: SweepMode,
        /// Run only this slice of the sweep and emit a shard artifact
        /// instead of the figure/table (`--shard i/n`).
        pub shard: Option<ShardSpec>,
        /// Where the shard artifact goes (`--shard-out FILE`; default
        /// stdout).
        pub shard_out: Option<String>,
    }

    impl SweepArgs {
        /// Runs `experiment` under the selected mode and thread count.
        ///
        /// # Errors
        ///
        /// Propagates the experiment's first failure, in cell order — or
        /// reports that `--shard` was passed to a sweep that cannot be
        /// sharded (binaries composing several sweeps into one artifact
        /// use this path).
        pub fn run(&self, experiment: &Experiment) -> Result<ResultSet, SqipError> {
            if let Some(shard) = self.shard {
                return Err(SqipError::Config(format!(
                    "this sweep cannot run as shard {shard}: the binary composes \
                     several sweeps; run it unsharded"
                )));
            }
            let mut engine = SweepEngine::new().mode(self.mode);
            if let Some(threads) = self.threads {
                engine = engine.threads(threads);
            }
            engine.run(experiment)
        }

        /// Single-experiment binaries' entry point: without `--shard`,
        /// runs the sweep and returns its results; with `--shard i/n`,
        /// runs only the owned cells, writes the [`sqip::ShardResult`]
        /// artifact (to `--shard-out`, or stdout) for `sqip-merge`, and
        /// returns `None` — the binary should exit successfully without
        /// rendering anything.
        ///
        /// # Errors
        ///
        /// Propagates sweep failures and artifact-write failures.
        pub fn run_or_emit_shard(
            &self,
            experiment: &Experiment,
        ) -> Result<Option<ResultSet>, SqipError> {
            let Some(shard) = self.shard else {
                return Ok(Some(self.run(experiment)?));
            };
            let mut experiment = experiment.clone();
            if let Some(threads) = self.threads {
                experiment = experiment.threads(threads);
            }
            let artifact = experiment.run_shard(shard)?;
            let mut text = artifact.to_json();
            text.push('\n');
            match &self.shard_out {
                Some(path) => std::fs::write(path, text)?,
                None => print!("{text}"),
            }
            Ok(None)
        }
    }

    /// Extracts `--sweep-mode <shared|per-cell>`, `--threads <n>`,
    /// `--shard i/n` and `--shard-out FILE` from `args`, returning the
    /// parsed knobs and the remaining arguments.
    ///
    /// # Errors
    ///
    /// A human-readable message for a missing or unrecognized value.
    pub fn parse(
        args: impl IntoIterator<Item = String>,
    ) -> Result<(SweepArgs, Vec<String>), String> {
        let mut parsed = SweepArgs {
            threads: None,
            mode: SweepMode::SharedPass,
            shard: None,
            shard_out: None,
        };
        let mut rest = Vec::new();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--threads" => {
                    let n = it
                        .next()
                        .ok_or_else(|| "--threads requires a count".to_string())?;
                    parsed.threads = Some(
                        n.parse::<usize>()
                            .map_err(|_| format!("--threads: `{n}` is not a count"))?
                            .max(1),
                    );
                }
                "--sweep-mode" => {
                    let mode = it.next().ok_or_else(|| {
                        "--sweep-mode requires `shared` or `per-cell`".to_string()
                    })?;
                    parsed.mode = match mode.as_str() {
                        "shared" | "shared-pass" => SweepMode::SharedPass,
                        "per-cell" | "percell" => SweepMode::PerCell,
                        other => {
                            return Err(format!(
                                "--sweep-mode: `{other}` is neither `shared` nor `per-cell`"
                            ))
                        }
                    };
                }
                "--shard" => {
                    let spec = it
                        .next()
                        .ok_or_else(|| "--shard requires `i/n` (e.g. 0/4)".to_string())?;
                    parsed.shard = Some(spec.parse::<ShardSpec>().map_err(|e| e.to_string())?);
                }
                "--shard-out" => {
                    parsed.shard_out = Some(
                        it.next()
                            .ok_or_else(|| "--shard-out requires a file path".to_string())?,
                    );
                }
                _ => rest.push(arg),
            }
        }
        Ok((parsed, rest))
    }

    /// Unwraps a [`parse`] outcome for a `main()`: prints errors to
    /// stderr and exits with code 2 on bad flags.
    #[must_use]
    pub fn parse_or_exit(args: impl IntoIterator<Item = String>) -> (SweepArgs, Vec<String>) {
        match parse(args) {
            Ok(parsed) => parsed,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }
}

/// A minimal wall-clock micro-benchmark harness.
///
/// Each case runs one warmup iteration plus `SQIP_BENCH_ITERS` timed
/// iterations (default 3) and reports the minimum and mean wall time.
/// Intentionally tiny: the benches exist to track simulator throughput
/// trends, not microsecond-level noise.
pub mod micro {
    use std::time::{Duration, Instant};

    fn configured_iters() -> u32 {
        std::env::var("SQIP_BENCH_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(3)
    }

    /// A named group of benchmark cases.
    pub struct Group {
        name: String,
        iters: u32,
    }

    impl Group {
        /// Starts a group and prints its header.
        #[must_use]
        pub fn new(name: impl Into<String>) -> Group {
            let name = name.into();
            let iters = configured_iters();
            println!("== {name} ({iters} timed iters per case) ==");
            Group { name, iters }
        }

        /// Times one case and prints its line.
        pub fn bench(&self, case: &str, mut f: impl FnMut()) {
            f(); // warmup
            let mut min = Duration::MAX;
            let mut total = Duration::ZERO;
            for _ in 0..self.iters {
                let start = Instant::now();
                f();
                let took = start.elapsed();
                total += took;
                min = min.min(took);
            }
            let mean = total / self.iters;
            println!(
                "{:<40} min {:>10.3?}   mean {:>10.3?}",
                format!("{}/{case}", self.name),
                min,
                mean
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_cover_the_harness_surface() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        let w = sqip::by_name("gzip").unwrap();
        let s = shrink(w.clone(), 100);
        assert_eq!(s.iterations, 100);
        assert_eq!(s.fwd_sites, w.fwd_sites);
    }

    #[test]
    fn design_args_select_designs_and_pass_other_args_through() {
        let parsed = designs::parse(
            ["--json", "--design", "indexed-5-fwd+dly", "gzip"].map(String::from),
            &[sqip::SqDesign::IdealOracle],
        )
        .unwrap()
        .expect("no --list-designs given");
        let ext: sqip::SqDesign = "indexed-5-fwd+dly".parse().unwrap();
        assert_eq!(parsed.designs, vec![ext]);
        assert_eq!(parsed.rest, vec!["--json".to_string(), "gzip".to_string()]);

        let defaulted = designs::parse(std::iter::empty(), &[sqip::SqDesign::Associative3])
            .unwrap()
            .unwrap();
        assert_eq!(defaulted.designs, vec![sqip::SqDesign::Associative3]);

        assert!(designs::parse(["--design".to_string()], &[]).is_err());
        let err = designs::parse(["--design", "bogus"].map(String::from), &[]).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
    }

    #[test]
    fn design_descriptions_cover_the_capability_axes() {
        assert_eq!(
            designs::describe(sqip::SqDesign::IdealOracle),
            "associative, 3-cycle SQ, oracle scheduling"
        );
        assert_eq!(
            designs::describe(sqip::SqDesign::Indexed3FwdDly),
            "indexed, 3-cycle SQ, delay prediction"
        );
        assert_eq!(
            designs::describe(sqip::SqDesign::Associative5FwdPred),
            "associative, 5-cycle SQ, fwd-latency scheduling"
        );
    }

    #[test]
    fn micro_group_runs_cases() {
        let group = micro::Group::new("selftest");
        let mut count = 0u32;
        group.bench("noop", || count += 1);
        assert!(count >= 2, "warmup + timed iterations, got {count}");
    }
}
