//! Harness utilities for the Table/Figure regenerator binaries and the
//! micro-benchmarks.
//!
//! Sweep logic lives in the [`sqip`] facade crate ([`sqip::Experiment`]);
//! this crate only adds the bits specific to the regenerator binaries: a
//! tiny dependency-free wall-clock benchmark harness ([`micro`]) used by
//! the `benches/` targets (the build environment has no criterion), and
//! re-exports of the harness helpers the binaries share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sqip::{geomean, shrink, simulate, simulate_with};

/// A minimal wall-clock micro-benchmark harness.
///
/// Each case runs one warmup iteration plus `SQIP_BENCH_ITERS` timed
/// iterations (default 3) and reports the minimum and mean wall time.
/// Intentionally tiny: the benches exist to track simulator throughput
/// trends, not microsecond-level noise.
pub mod micro {
    use std::time::{Duration, Instant};

    fn configured_iters() -> u32 {
        std::env::var("SQIP_BENCH_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(3)
    }

    /// A named group of benchmark cases.
    pub struct Group {
        name: String,
        iters: u32,
    }

    impl Group {
        /// Starts a group and prints its header.
        #[must_use]
        pub fn new(name: impl Into<String>) -> Group {
            let name = name.into();
            let iters = configured_iters();
            println!("== {name} ({iters} timed iters per case) ==");
            Group { name, iters }
        }

        /// Times one case and prints its line.
        pub fn bench(&self, case: &str, mut f: impl FnMut()) {
            f(); // warmup
            let mut min = Duration::MAX;
            let mut total = Duration::ZERO;
            for _ in 0..self.iters {
                let start = Instant::now();
                f();
                let took = start.elapsed();
                total += took;
                min = min.min(took);
            }
            let mean = total / self.iters;
            println!(
                "{:<40} min {:>10.3?}   mean {:>10.3?}",
                format!("{}/{case}", self.name),
                min,
                mean
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_cover_the_harness_surface() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        let w = sqip::by_name("gzip").unwrap();
        let s = shrink(w.clone(), 100);
        assert_eq!(s.iterations, 100);
        assert_eq!(s.fwd_sites, w.fwd_sites);
    }

    #[test]
    fn micro_group_runs_cases() {
        let group = micro::Group::new("selftest");
        let mut count = 0u32;
        group.bench("noop", || count += 1);
        assert!(count >= 2, "warmup + timed iterations, got {count}");
    }
}
