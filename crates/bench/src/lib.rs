//! Shared experiment-harness utilities for the Table/Figure regenerators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sqip_core::{Processor, SimConfig, SimStats, SqDesign};
use sqip_workloads::WorkloadSpec;

/// Runs one workload under one SQ design with the paper's configuration.
///
/// # Panics
///
/// Panics if the workload fails to build/trace (generator bug).
#[must_use]
pub fn sim(spec: &WorkloadSpec, design: SqDesign) -> SimStats {
    sim_with(spec, SimConfig::with_design(design))
}

/// Runs one workload under an arbitrary configuration.
///
/// # Panics
///
/// Panics if the workload fails to build/trace (generator bug).
#[must_use]
pub fn sim_with(spec: &WorkloadSpec, config: SimConfig) -> SimStats {
    let trace = spec
        .trace()
        .unwrap_or_else(|e| panic!("workload {} failed to trace: {e}", spec.name));
    Processor::new(config, &trace).run()
}

/// Geometric mean of a sequence of positive values (1.0 for empty input).
#[must_use]
pub fn geomean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for v in values {
        assert!(v > 0.0, "geometric mean requires positive values");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / f64::from(n)).exp()
    }
}

/// Shrinks a workload for quick Criterion runs (same mix, fewer
/// iterations).
#[must_use]
pub fn shrink(mut spec: WorkloadSpec, iterations: u32) -> WorkloadSpec {
    spec.iterations = iterations;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean([]) - 1.0).abs() < 1e-12);
        assert!((geomean([5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean([0.0]);
    }

    #[test]
    fn shrink_preserves_mix() {
        let w = sqip_workloads::by_name("gzip").unwrap();
        let s = shrink(w.clone(), 100);
        assert_eq!(s.iterations, 100);
        assert_eq!(s.fwd_sites, w.fwd_sites);
    }
}
