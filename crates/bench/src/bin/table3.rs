//! Regenerates the paper's **Table 3**: store-queue index prediction
//! diagnostics — load forwarding rate, mis-forwardings per 1000 loads with
//! forwarding prediction only (`Fwd`) and with delay prediction added
//! (`Fwd+Dly`), the fraction of loads delayed, and the average delay.
//!
//! ```text
//! cargo run --release -p sqip-bench --bin table3 [-- <benchmark> ...]
//! ```

use sqip_bench::sim;
use sqip_core::SqDesign;
use sqip_workloads::{all_workloads, Suite, WorkloadSpec};

struct Row {
    name: &'static str,
    suite: Suite,
    pct_fwd: f64,
    fwd_mis: f64,
    dly_mis: f64,
    pct_dly: f64,
    avg_dly: f64,
}

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).collect();
    let workloads: Vec<WorkloadSpec> = all_workloads()
        .into_iter()
        .filter(|w| filter.is_empty() || filter.iter().any(|f| f == w.name))
        .collect();

    println!("Table 3. Store queue index prediction diagnostics.");
    println!("Load forwarding rates, raw prediction accuracy, and improved");
    println!("accuracy using delay prediction.\n");
    println!(
        "{:>10} {:>8} | {:>9} | {:>9} {:>7} {:>9}",
        "", "%load", "Fwd", "Fwd+Dly", "", ""
    );
    println!(
        "{:>10} {:>8} | {:>9} | {:>9} {:>7} {:>9}",
        "", "forward", "mis/1000", "mis/1000", "%delay", "avg.dly"
    );
    println!("{}", "-".repeat(62));

    let mut rows = Vec::new();
    for spec in &workloads {
        let fwd = sim(spec, SqDesign::Indexed3Fwd);
        let dly = sim(spec, SqDesign::Indexed3FwdDly);
        let row = Row {
            name: spec.name,
            suite: spec.suite,
            pct_fwd: dly.pct_loads_forwarding(),
            fwd_mis: fwd.mis_forwards_per_1000(),
            dly_mis: dly.mis_forwards_per_1000(),
            pct_dly: dly.pct_loads_delayed(),
            avg_dly: dly.avg_delay_cycles(),
        };
        print_row(&row);
        rows.push(row);
    }

    if filter.is_empty() {
        println!("{}", "-".repeat(62));
        for suite in [Suite::Media, Suite::Int, Suite::Fp] {
            print_avg(&format!("{suite}.avg"), rows.iter().filter(|r| r.suite == suite));
        }
        print_avg("All.avg", rows.iter());
    }
}

fn print_row(r: &Row) {
    println!(
        "{:>10} {:>8.1} | {:>9.1} | {:>9.1} {:>7.1} {:>9.1}",
        r.name, r.pct_fwd, r.fwd_mis, r.dly_mis, r.pct_dly, r.avg_dly
    );
}

fn print_avg<'a>(label: &str, rows: impl Iterator<Item = &'a Row>) {
    let rows: Vec<&Row> = rows.collect();
    let n = rows.len() as f64;
    if n == 0.0 {
        return;
    }
    let avg = |f: fn(&Row) -> f64| rows.iter().map(|r| f(r)).sum::<f64>() / n;
    println!(
        "{:>10} {:>8.1} | {:>9.1} | {:>9.1} {:>7.1} {:>9.1}",
        label,
        avg(|r| r.pct_fwd),
        avg(|r| r.fwd_mis),
        avg(|r| r.dly_mis),
        avg(|r| r.pct_dly),
        avg(|r| r.avg_dly)
    );
}
