//! Regenerates the paper's **Table 3**: store-queue index prediction
//! diagnostics — load forwarding rate, mis-forwardings per 1000 loads with
//! forwarding prediction only (`Fwd`) and with delay prediction added
//! (`Fwd+Dly`), the fraction of loads delayed, and the average delay.
//!
//! ```text
//! cargo run --release -p sqip-bench --bin table3 [-- <benchmark> ...]
//! cargo run --release -p sqip-bench --bin table3 -- --json > table3.json
//! ```
//!
//! One [`Experiment`]: 47 workloads × the two indexed designs.

use sqip::{all_workloads, Experiment, RunRecord, SqDesign, Suite};

fn main() -> Result<(), sqip::SqipError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let filter: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let results = Experiment::new()
        .workloads(
            all_workloads()
                .into_iter()
                .filter(|w| filter.is_empty() || filter.iter().any(|f| *f == w.name)),
        )
        .designs([SqDesign::Indexed3Fwd, SqDesign::Indexed3FwdDly])
        .run()?;

    if json {
        println!("{}", results.to_json_pretty());
        return Ok(());
    }

    println!("Table 3. Store queue index prediction diagnostics.");
    println!("Load forwarding rates, raw prediction accuracy, and improved");
    println!("accuracy using delay prediction.\n");
    println!(
        "{:>10} {:>8} | {:>9} | {:>9} {:>7} {:>9}",
        "", "%load", "Fwd", "Fwd+Dly", "", ""
    );
    println!(
        "{:>10} {:>8} | {:>9} | {:>9} {:>7} {:>9}",
        "", "forward", "mis/1000", "mis/1000", "%delay", "avg.dly"
    );
    println!("{}", "-".repeat(62));

    let row = |name: &str| -> Option<[f64; 5]> {
        let fwd = results.get(name, SqDesign::Indexed3Fwd)?;
        let dly = results.get(name, SqDesign::Indexed3FwdDly)?;
        Some(table3_row(fwd, dly))
    };

    for name in results.workload_names() {
        let r = row(name).expect("both designs ran");
        print_row(name, r);
    }

    if filter.is_empty() {
        println!("{}", "-".repeat(62));
        for suite in [Suite::Media, Suite::Int, Suite::Fp] {
            let names: Vec<&str> = results
                .workload_names()
                .into_iter()
                .filter(|n| {
                    results
                        .get(n, SqDesign::Indexed3FwdDly)
                        .and_then(|r| r.suite)
                        == Some(suite)
                })
                .collect();
            print_avg(&format!("{suite}.avg"), &names, &row);
        }
        let all: Vec<&str> = results.workload_names();
        print_avg("All.avg", &all, &row);
    }
    Ok(())
}

/// `[%fwd, fwd mis/1000, dly mis/1000, %delayed, avg delay]` for one row.
fn table3_row(fwd: &RunRecord, dly: &RunRecord) -> [f64; 5] {
    [
        dly.stats.pct_loads_forwarding(),
        fwd.stats.mis_forwards_per_1000(),
        dly.stats.mis_forwards_per_1000(),
        dly.stats.pct_loads_delayed(),
        dly.stats.avg_delay_cycles(),
    ]
}

fn print_row(name: &str, r: [f64; 5]) {
    println!(
        "{:>10} {:>8.1} | {:>9.1} | {:>9.1} {:>7.1} {:>9.1}",
        name, r[0], r[1], r[2], r[3], r[4]
    );
}

fn print_avg(label: &str, names: &[&str], row: &dyn Fn(&str) -> Option<[f64; 5]>) {
    let rows: Vec<[f64; 5]> = names.iter().filter_map(|n| row(n)).collect();
    if rows.is_empty() {
        return;
    }
    let n = rows.len() as f64;
    let mut avg = [0.0; 5];
    for r in &rows {
        for (a, v) in avg.iter_mut().zip(r) {
            *a += v / n;
        }
    }
    print_row(label, avg);
}
