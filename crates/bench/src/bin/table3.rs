//! Regenerates the paper's **Table 3**: store-queue index prediction
//! diagnostics — load forwarding rate, mis-forwardings per 1000 loads with
//! forwarding prediction only (`Fwd`) and with delay prediction added
//! (`Fwd+Dly`), the fraction of loads delayed, and the average delay.
//!
//! ```text
//! cargo run --release -p sqip-bench --bin table3 [-- <benchmark> ...]
//! cargo run --release -p sqip-bench --bin table3 -- --json > table3.json
//! cargo run --release -p sqip-bench --bin table3 -- --list-designs
//! cargo run --release -p sqip-bench --bin table3 -- \
//!     --design indexed-5-fwd+dly --design indexed-3-fwd+dly
//! cargo run --release -p sqip-bench --bin table3 -- --list-workloads
//! cargo run --release -p sqip-bench --bin table3 -- --workload chase:4096:64:1m
//! cargo run --release -p sqip-bench --bin table3 -- --shard 1/2 --shard-out s1.json
//! ```
//!
//! One [`Experiment`]: the selected workloads (the 47 Table 3 models by
//! default; any registered workload or generator point via `--workload`,
//! streamed in bounded memory) × a (raw, delay-predicted) design pair —
//! the two indexed designs by default, or any two registered designs via
//! `--design` (given twice: first the raw design, then the delayed one).

#![forbid(unsafe_code)]

use sqip::{all_workloads, Experiment, RunRecord, SqDesign, Suite, Workload};
use sqip_bench::{designs, sweep_flags, workloads};

const DEFAULT_PAIR: [SqDesign; 2] = [SqDesign::Indexed3Fwd, SqDesign::Indexed3FwdDly];

fn main() -> Result<(), sqip::SqipError> {
    let (sweep, rest) = sweep_flags::parse_or_exit(std::env::args().skip(1));
    let parsed = designs::parse_or_exit(rest, &DEFAULT_PAIR);
    let [raw_design, dly_design]: [SqDesign; 2] = match parsed.designs.try_into() {
        Ok(pair) => pair,
        Err(_) => {
            eprintln!("error: table3 compares exactly two designs (raw, then delayed)");
            std::process::exit(2);
        }
    };
    let parsed = workloads::parse_or_exit(parsed.rest);
    let json = parsed.rest.iter().any(|a| a == "--json");
    let filter: Vec<&String> = parsed
        .rest
        .iter()
        .filter(|a| !a.starts_with("--"))
        .collect();
    if !filter.is_empty() && !parsed.workloads.is_empty() {
        eprintln!(
            "error: positional benchmark filters and --workload are mutually exclusive; \
             pass everything via repeated --workload flags"
        );
        std::process::exit(2);
    }
    let subset = !filter.is_empty() || !parsed.workloads.is_empty();

    let selected: Vec<Workload> = if parsed.workloads.is_empty() {
        all_workloads()
            .into_iter()
            .filter(|w| filter.is_empty() || filter.iter().any(|f| **f == w.name))
            .map(Workload::from)
            .collect()
    } else {
        parsed.workloads
    };

    let experiment = Experiment::new()
        .workloads(selected)
        .designs([raw_design, dly_design]);
    // `--shard i/n` runs this bin's slice of the sweep and emits a
    // `sqip-merge` artifact instead of the table.
    let Some(results) = sweep.run_or_emit_shard(&experiment)? else {
        return Ok(());
    };

    if json {
        println!("{}", results.to_json_pretty());
        return Ok(());
    }

    println!("Table 3. Store queue index prediction diagnostics.");
    println!("Load forwarding rates, raw prediction accuracy, and improved");
    println!("accuracy using delay prediction.\n");
    // Name column sized to the roster (generator names can be long).
    let name_w = results
        .workload_names()
        .iter()
        .map(|n| n.len())
        .max()
        .unwrap_or(0)
        .max(10);
    println!(
        "{:>name_w$} {:>8} | {:>9} | {:>9} {:>7} {:>9}",
        "", "%load", "Fwd", "Fwd+Dly", "", ""
    );
    println!(
        "{:>name_w$} {:>8} | {:>9} | {:>9} {:>7} {:>9}",
        "", "forward", "mis/1000", "mis/1000", "%delay", "avg.dly"
    );
    println!("{}", "-".repeat(name_w + 52));

    let row = |name: &str| -> Option<[f64; 5]> {
        let fwd = results.get(name, raw_design)?;
        let dly = results.get(name, dly_design)?;
        Some(table3_row(fwd, dly))
    };

    for name in results.workload_names() {
        let r = row(name).expect("both designs ran");
        print_row(name, name_w, r);
    }

    if !subset {
        println!("{}", "-".repeat(name_w + 52));
        for suite in [Suite::Media, Suite::Int, Suite::Fp] {
            let names: Vec<&str> = results
                .workload_names()
                .into_iter()
                .filter(|n| results.get(n, dly_design).and_then(|r| r.suite) == Some(suite))
                .collect();
            print_avg(&format!("{suite}.avg"), name_w, &names, &row);
        }
        let all: Vec<&str> = results.workload_names();
        print_avg("All.avg", name_w, &all, &row);
    }
    Ok(())
}

/// `[%fwd, fwd mis/1000, dly mis/1000, %delayed, avg delay]` for one row.
fn table3_row(fwd: &RunRecord, dly: &RunRecord) -> [f64; 5] {
    [
        dly.stats.pct_loads_forwarding(),
        fwd.stats.mis_forwards_per_1000(),
        dly.stats.mis_forwards_per_1000(),
        dly.stats.pct_loads_delayed(),
        dly.stats.avg_delay_cycles(),
    ]
}

fn print_row(name: &str, name_w: usize, r: [f64; 5]) {
    println!(
        "{name:>name_w$} {:>8.1} | {:>9.1} | {:>9.1} {:>7.1} {:>9.1}",
        r[0], r[1], r[2], r[3], r[4]
    );
}

fn print_avg(label: &str, name_w: usize, names: &[&str], row: &dyn Fn(&str) -> Option<[f64; 5]>) {
    let rows: Vec<[f64; 5]> = names.iter().filter_map(|n| row(n)).collect();
    if rows.is_empty() {
        return;
    }
    let n = rows.len() as f64;
    let mut avg = [0.0; 5];
    for r in &rows {
        for (a, v) in avg.iter_mut().zip(r) {
            *a += v / n;
        }
    }
    print_row(label, name_w, avg);
}
