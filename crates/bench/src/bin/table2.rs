//! Regenerates the paper's **Table 2**: store-queue, data-cache-bank and
//! TLB load latencies in a 90nm process (ns and 3GHz cycles), plus the
//! §4.2 per-access energy comparison with `--energy`.
//!
//! ```text
//! cargo run -p sqip-bench --bin table2 [-- --energy]
//! ```

#![forbid(unsafe_code)]

use sqip_cacti::{
    sq_energy_pj, table2_sq_rows, CacheBankGeometry, SqGeometry, TechParams, TlbGeometry,
};

fn main() {
    let energy = std::env::args().any(|a| a == "--energy");
    let tech = TechParams::default();

    println!("Table 2. Store queue latencies in 90nm process.");
    println!("ns and equivalent cycles on a 3GHz processor.\n");
    println!(
        "{:>18} | {:^23} | {:^23}",
        "", "1 Load Port", "2 Load Ports"
    );
    println!(
        "{:>18} | {:>11} {:>11} | {:>11} {:>11}",
        "", "Assoc.", "Index", "Assoc.", "Index"
    );
    println!("{}", "-".repeat(70));
    for row in table2_sq_rows(&tech) {
        println!(
            "SQ {:>15} | {:>11} {:>11} | {:>11} {:>11}",
            format!("{}-entry", row.entries),
            fmt(row.assoc_1p),
            fmt(row.index_1p),
            fmt(row.assoc_2p),
            fmt(row.index_2p),
        );
    }

    println!("{}", "-".repeat(70));
    for (label, cap) in [("8KB, 2-way", 8 * 1024), ("32KB, 2-way", 32 * 1024)] {
        let bank = |ports| CacheBankGeometry {
            capacity_bytes: cap,
            ways: 2,
            line_bytes: 64,
            ports,
        };
        let one = (
            tech.cache_bank_latency_ns(bank(1)),
            tech.cache_bank_cycles(bank(1)),
        );
        let two = (
            tech.cache_bank_latency_ns(bank(2)),
            tech.cache_bank_cycles(bank(2)),
        );
        println!(
            "D$ bank {:>10} | {:>23} | {:>23}",
            label,
            fmt(one),
            fmt(two)
        );
    }
    let tlb = |ports| TlbGeometry {
        entries: 32,
        ways: 4,
        ports,
    };
    let one = (tech.tlb_latency_ns(tlb(1)), tech.tlb_cycles(tlb(1)));
    let two = (tech.tlb_latency_ns(tlb(2)), tech.tlb_cycles(tlb(2)));
    println!("TLB 32-entry,4-way | {:>23} | {:>23}", fmt(one), fmt(two));

    if energy {
        println!("\nPer-access energy, 64-entry SQ, 2 load ports (arbitrary pJ units):");
        let a = sq_energy_pj(SqGeometry::associative(64, 2));
        let i = sq_energy_pj(SqGeometry::indexed(64, 2));
        println!("  associative: {a:.2}");
        println!("  indexed:     {i:.2}");
        println!(
            "  indexed saving: {:.1}%  (paper: \"about 30% lower\")",
            (1.0 - i / a) * 100.0
        );
    }
}

fn fmt((ns, cycles): (f64, u64)) -> String {
    format!("{ns:.2} ({cycles})")
}
