//! `perf` — the simulator's performance-regression harness.
//!
//! Three sections:
//!
//! * **Per-cell matrix** — 3 store-queue designs × 3 workloads (two
//!   materialized SPEC models and one *streamed* generator) under both
//!   simulation engines: insts/sec, wall time (min-of-N), cycles, and
//!   peak buffered records per cell.
//! * **Sweep section** — the paper-shaped sweep: every registered design
//!   over one streamed `mix` workload, run through the
//!   [`sqip::SweepEngine`] in both modes. Per-cell mode re-runs the
//!   generator and dependence oracle once per design; shared-pass mode
//!   pulls the stream once and drives all cells in lock-step, so the
//!   section also reports the shared-ring high-water mark and each
//!   consumer's peak window/lag (the memory observables), alongside the
//!   wall-clock speedup. Results are asserted bit-identical across
//!   modes on every iteration.
//! * **Trace-file sweep section** — the same sweep over an on-disk SQTR
//!   trace (`tracefile:` workload; the mix stream recorded once at
//!   startup). Replay pays a per-byte varint decode on every record, so
//!   the upstream pass genuinely dominates and the shared-pass win is
//!   the paper-shaped one: N designs, one decode.
//!
//! The JSON report (default `BENCH_PR10.json`) is the repo's perf
//! trajectory: each PR that touches the hot path appends a new
//! `BENCH_<PR>.json` snapshot, so regressions are diffs, not folklore.
//!
//! Every event-engine cell also carries the engine's **scheduling-cost
//! counters** (wheel ops, off-wheel near ops, broadcasts delivered and
//! ready-lane touches, each per committed instruction). The counters are
//! deterministic per (workload, design) and independent of the host, so
//! they are the hardware-portable face of the PR 10 scheduler overhaul:
//! `pr9_wheel_ops_per_inst` reconstructs what the same run cost when
//! every broadcast and speculative store wake also rode the wheel
//! (`wheel + near` — each off-wheel op was a wheel op then), and the
//! run itself fails unless the fused scheduler cuts wheel ops/inst by
//! at least 2x against that figure on every event cell.
//!
//! **Regression gate:** `--baseline <json>` compares this run's per-cell
//! matrix against a committed report (PR4-schema or later): any matched
//! (workload, design, engine) cell whose insts/sec drops more than the
//! 15% noise floor fails the run (exit 1). `--baseline-ratios-only`
//! restricts the comparison to the event/reference speedup *ratios*,
//! which survive hardware changes — the mode CI uses, since absolute
//! insts/sec only transfer between same-class machines. Sweep
//! mode-speedups (per-cell wall / shared-pass wall) are also ratios of
//! two runs of the same binary, so they are gated in both modes when
//! the baseline carries them (PR9-schema and later), as are the
//! scheduling counters (PR10-schema and later) — those are exact, so
//! their drift tolerance is a rounding allowance, not a noise floor.
//!
//! ```text
//! cargo run --release -p sqip-bench --bin perf             # full matrix
//! cargo run --release -p sqip-bench --bin perf -- --quick  # CI smoke
//! cargo run --release -p sqip-bench --bin perf -- --out my.json
//! cargo run --release -p sqip-bench --bin perf -- --quick \
//!     --baseline BENCH_PR4.json --baseline-ratios-only
//! ```
//!
//! `SQIP_BENCH_ITERS` controls the timed iterations per cell (default 3;
//! each cell also gets one untimed warmup). The minimum wall time is
//! reported, the standard noise-rejection choice for throughput
//! benchmarks. An unparsable or zero value aborts the run — a silent
//! fallback here would time a different number of iterations than the
//! caller believes.

#![forbid(unsafe_code)]

use std::time::Instant;

use serde::{Deserialize, Serialize};
use sqip::{
    by_name, DesignRegistry, Engine, Experiment, Processor, SchedCounters, SimConfig, SimStats,
    SqDesign, StepOutcome, SweepEngine, SweepMode, Workload, WorkloadRegistry,
};
use sqip_bench::geomean;
use sqip_isa::Trace;

/// Relative insts/sec drop tolerated before `--baseline` fails a cell.
const NOISE_FLOOR: f64 = 0.15;

/// Wider floor for event/reference *ratio* comparisons: a ratio divides
/// two independently noisy measurements, roughly doubling the variance.
const RATIO_FLOOR: f64 = 0.20;

/// Allowed upward drift in the scheduling counters before `--baseline`
/// fails a cell. The counters are deterministic (asserted across
/// iterations), so this covers only float rounding of the per-inst
/// division — not measurement noise.
const COUNTER_FLOOR: f64 = 0.01;

/// The PR 10 acceptance headline: minimum factor by which the fused
/// scheduler must cut wheel ops/inst versus the PR 9 shape (`wheel +
/// near`, since each off-wheel op was a wheel op then) on every event
/// cell.
const FUSE_FACTOR: f64 = 2.0;

/// One (workload, design, engine) measurement.
#[derive(Debug, Clone, Serialize)]
struct Cell {
    workload: String,
    design: SqDesign,
    engine: Engine,
    /// Committed instructions per simulated run.
    insts: u64,
    /// Simulated cycles (identical across engines — checked).
    cycles: u64,
    /// Simulated instructions per wall second (best iteration).
    insts_per_sec: f64,
    /// Minimum wall time over the timed iterations, seconds.
    wall_s: f64,
    /// Peak records buffered between commit point and fetch frontier.
    peak_buffered: u64,
    /// Scheduling-cost counters (event engine only, `null` on reference
    /// cells; deterministic and hardware-portable, unlike the wall-clock
    /// figures above).
    sched: Option<SchedCost>,
}

/// Per-instruction scheduling costs of one event-engine cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SchedCost {
    /// Event-wheel schedules per committed instruction.
    wheel_ops_per_inst: f64,
    /// What the same run cost under PR 9's scheduling shape, where every
    /// broadcast and speculative store wake also rode the wheel: wheel
    /// ops plus off-wheel near ops, per instruction.
    pr9_wheel_ops_per_inst: f64,
    /// Value broadcasts delivered per instruction.
    broadcasts_per_inst: f64,
    /// Ready-lane tail peeks per instruction during issue selection.
    ready_touches_per_inst: f64,
}

/// Event-over-reference throughput ratio for one (workload, design).
#[derive(Debug, Clone, Serialize)]
struct Speedup {
    workload: String,
    design: SqDesign,
    speedup: f64,
}

/// The sweep section: every registered design over one streamed `mix`
/// workload, per-cell vs shared-pass.
#[derive(Debug, Clone, Serialize)]
struct Sweep {
    workload: String,
    designs: Vec<String>,
    /// Worker threads (1: the comparison is pure engine work).
    threads: usize,
    /// Committed instructions summed over every cell.
    total_insts: u64,
    /// Records the workload stream yields once.
    stream_records: u64,
    /// Upstream passes paid by each mode (the redundancy being removed).
    per_cell_passes: u64,
    shared_passes: u64,
    /// Minimum wall seconds over the timed iterations, per mode.
    per_cell_wall_s: f64,
    shared_wall_s: f64,
    /// Wall-clock ratio per-cell / shared (same binary, same iteration
    /// count) — the honest like-for-like sweep speedup.
    speedup: f64,
    /// Aggregate throughput (total_insts / wall), per mode.
    per_cell_insts_per_sec: f64,
    shared_insts_per_sec: f64,
    /// Shared-ring memory observables (reported separately from each
    /// cell's own window peak, below).
    ring_capacity: u64,
    ring_high_water: u64,
    /// Per cell: peak records in the cell's own commit→fetch window.
    consumer_peak_buffered: Vec<u64>,
    /// Per cell: peak lag behind the shared pull frontier.
    consumer_peak_lag: Vec<u64>,
}

#[derive(Debug, Clone, Serialize)]
struct Report {
    /// Report schema / provenance marker.
    bench: String,
    /// Timed iterations per cell (minimum wall time is reported).
    iters: u32,
    cells: Vec<Cell>,
    speedups: Vec<Speedup>,
    /// The PR4 acceptance headline: event/reference on the mix generator
    /// at the paper's default configuration (geomean over designs run).
    mix_speedup: f64,
    /// The PR5 sweep section (always present: the bin aborts if the
    /// sweep fails to build or run).
    sweep: Sweep,
    /// The PR9 trace-file sweep: the same mix stream recorded to an
    /// on-disk SQTR trace and replayed through `tracefile:`, so the
    /// upstream pass carries a real per-record decode cost.
    trace_sweep: Sweep,
}

/// The subset of a committed report `--baseline` reads (works against
/// PR4-schema reports and later).
#[derive(Debug, Deserialize)]
struct BaselineReport {
    bench: String,
    cells: Vec<BaselineCell>,
    speedups: Vec<BaselineSpeedup>,
    /// Absent in pre-PR9 baselines; the sweep gates simply don't run.
    sweep: Option<BaselineSweep>,
    trace_sweep: Option<BaselineSweep>,
}

#[derive(Debug, Deserialize)]
struct BaselineCell {
    workload: String,
    design: String,
    engine: String,
    insts_per_sec: f64,
    /// `null` on reference-engine cells (and in any baseline predating
    /// the counters); the counter gates simply don't run for those.
    sched: Option<SchedCost>,
}

#[derive(Debug, Deserialize)]
struct BaselineSpeedup {
    workload: String,
    design: String,
    speedup: f64,
}

#[derive(Debug, Deserialize)]
struct BaselineSweep {
    workload: String,
    speedup: f64,
}

/// Sweep workloads are compared by their trailing path component so a
/// `tracefile:` workload recorded under a different temp directory
/// still matches: the file *name* is deterministic, its directory is
/// not. Plain generator names contain no `/` and compare whole.
fn sweep_key(workload: &str) -> &str {
    workload.rsplit('/').next().unwrap_or(workload)
}

fn timed_iters() -> u32 {
    let Ok(v) = std::env::var("SQIP_BENCH_ITERS") else {
        return 3;
    };
    let iters: u32 = v.parse().unwrap_or_else(|_| {
        panic!("SQIP_BENCH_ITERS=`{v}` is not a positive integer (unset it for the default of 3)")
    });
    assert!(iters >= 1, "SQIP_BENCH_ITERS must be >= 1, got {iters}");
    iters
}

/// A matrix workload: a materialized SPEC model trace (traced once,
/// shared across every run so tracing cost stays out of the timings) or
/// a named generator streamed anew each run (generation cost is inherent
/// to streamed workloads and is charged identically to both engines).
enum Input {
    Materialized(String, Trace),
    Streamed(String),
}

impl Input {
    fn name(&self) -> &str {
        match self {
            Input::Materialized(name, _) | Input::Streamed(name) => name,
        }
    }
}

/// Runs one cell once, tracking peak buffered records and (on the event
/// engine) the scheduling-cost counters.
fn run_once(input: &Input, cfg: &SimConfig) -> (SimStats, u64, f64, Option<SchedCounters>) {
    let start = Instant::now();
    let mut p = match input {
        Input::Materialized(_, trace) => Processor::try_new(cfg.clone(), trace),
        Input::Streamed(name) => {
            let source = WorkloadRegistry::global()
                .resolve(name)
                .unwrap_or_else(|e| panic!("workload `{name}`: {e}"))
                .open()
                .unwrap_or_else(|e| panic!("workload `{name}` failed to open: {e}"));
            Processor::try_from_source(cfg.clone(), source)
        }
    }
    .unwrap_or_else(|e| panic!("config invalid: {e}"));
    let mut peak = 0u64;
    loop {
        match p.step() {
            Ok(StepOutcome::Running) => peak = peak.max(p.buffered_records() as u64),
            Ok(StepOutcome::Done) => break,
            Err(e) => panic!("{}/{}/{:?}: {e}", input.name(), cfg.design, cfg.engine),
        }
    }
    let wall = start.elapsed().as_secs_f64();
    (p.stats().clone(), peak, wall, p.sched_counters())
}

fn measure(input: &Input, design: SqDesign, engine: Engine, iters: u32) -> Cell {
    let mut cfg = SimConfig::with_design(design);
    cfg.engine = engine;
    let (stats, peak, _, counters) = run_once(input, &cfg); // warmup (and correctness)
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let (again, _, wall, again_counters) = run_once(input, &cfg);
        assert_eq!(again, stats, "non-deterministic simulation");
        assert_eq!(
            again_counters, counters,
            "non-deterministic scheduling counters"
        );
        best = best.min(wall);
    }
    let per_inst = |v: u64| v as f64 / stats.committed as f64;
    Cell {
        workload: input.name().to_string(),
        design,
        engine,
        insts: stats.committed,
        cycles: stats.cycles,
        insts_per_sec: stats.committed as f64 / best,
        wall_s: best,
        peak_buffered: peak,
        sched: counters.map(|c| SchedCost {
            wheel_ops_per_inst: per_inst(c.wheel_ops),
            pr9_wheel_ops_per_inst: per_inst(c.wheel_ops + c.near_ops),
            broadcasts_per_inst: per_inst(c.broadcasts),
            ready_touches_per_inst: per_inst(c.ready_touches),
        }),
    }
}

/// A shrunk SPEC workload model, traced once.
fn materialized(name: &str, iterations: u32) -> Input {
    let spec = by_name(name)
        .unwrap_or_else(|| panic!("workload model `{name}` exists"))
        .with_iterations(iterations);
    let trace = spec
        .trace()
        .unwrap_or_else(|e| panic!("tracing `{name}`: {e}"));
    Input::Materialized(format!("{name}@{iterations}"), trace)
}

/// Measures the sweep section: every registered design over one streamed
/// workload, per-cell vs shared-pass, min wall over `iters`.
fn measure_sweep(workload: &str, iters: u32) -> Sweep {
    let designs: Vec<SqDesign> = DesignRegistry::global()
        .names()
        .iter()
        .map(|n| n.parse().expect("registered design name parses"))
        .collect();
    let experiment = Experiment::new()
        .workload(Workload::from_registry(workload).unwrap_or_else(|e| panic!("{e}")))
        .designs(designs.iter().copied())
        .threads(1);

    let run = |mode: SweepMode| {
        SweepEngine::new()
            .threads(1)
            .mode(mode)
            .run_with_telemetry(&experiment)
            .unwrap_or_else(|e| panic!("sweep ({mode:?}): {e}"))
    };
    // Warmup both modes and pin equality once up front.
    let (shared_results, telemetry) = run(SweepMode::SharedPass);
    let (per_cell_results, _) = run(SweepMode::PerCell);
    assert_eq!(
        shared_results, per_cell_results,
        "sweep modes must be bit-identical"
    );

    let mut shared_wall = f64::INFINITY;
    let mut per_cell_wall = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        let (again, _) = run(SweepMode::SharedPass);
        shared_wall = shared_wall.min(t.elapsed().as_secs_f64());
        assert_eq!(again, shared_results, "non-deterministic shared sweep");
        let t = Instant::now();
        let (again, _) = run(SweepMode::PerCell);
        per_cell_wall = per_cell_wall.min(t.elapsed().as_secs_f64());
        assert_eq!(again, per_cell_results, "non-deterministic per-cell sweep");
    }

    let total_insts: u64 = shared_results.iter().map(|r| r.stats.committed).sum();
    let group = telemetry
        .groups
        .first()
        .expect("one workload, one shared group");
    Sweep {
        workload: workload.to_string(),
        designs: designs.iter().map(|d| d.name().to_string()).collect(),
        threads: 1,
        total_insts,
        stream_records: group.records_pulled,
        per_cell_passes: designs.len() as u64,
        shared_passes: 1,
        per_cell_wall_s: per_cell_wall,
        shared_wall_s: shared_wall,
        speedup: per_cell_wall / shared_wall,
        per_cell_insts_per_sec: total_insts as f64 / per_cell_wall,
        shared_insts_per_sec: total_insts as f64 / shared_wall,
        ring_capacity: group.ring_capacity,
        ring_high_water: group.ring_high_water,
        consumer_peak_buffered: group.peak_buffered.clone(),
        consumer_peak_lag: group.peak_lag.clone(),
    }
}

/// Records a streamed workload to an on-disk SQTR trace so the
/// trace-file sweep replays it with a real per-record decode cost.
/// Returns the number of records written.
fn record_trace_file(workload: &str, path: &std::path::Path) -> u64 {
    let mut source = WorkloadRegistry::global()
        .resolve(workload)
        .unwrap_or_else(|e| panic!("workload `{workload}`: {e}"))
        .open()
        .unwrap_or_else(|e| panic!("workload `{workload}` failed to open: {e}"));
    let file =
        std::fs::File::create(path).unwrap_or_else(|e| panic!("creating {}: {e}", path.display()));
    // `record_trace` finishes with an explicit flush, so the BufWriter
    // never drops unwritten bytes.
    sqip_isa::tracefile::record_trace(source.as_mut(), std::io::BufWriter::new(file))
        .unwrap_or_else(|e| panic!("recording `{workload}` to {}: {e}", path.display()))
}

/// Applies the `--baseline` gate. Returns the number of failures.
fn compare_baseline(report: &Report, path: &str, ratios_only: bool) -> usize {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading baseline {path}: {e}"));
    let baseline: BaselineReport =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("parsing baseline {path}: {e}"));
    println!("\nbaseline gate vs {path} ({}):", baseline.bench);
    let mut failures = 0;
    let mut matched = 0;

    if !ratios_only {
        for cell in &report.cells {
            let Some(base) = baseline.cells.iter().find(|b| {
                b.workload == cell.workload
                    && b.design == cell.design.name()
                    && b.engine == format!("{:?}", cell.engine)
            }) else {
                continue;
            };
            matched += 1;
            let ratio = cell.insts_per_sec / base.insts_per_sec;
            let ok = ratio >= 1.0 - NOISE_FLOOR;
            if !ok {
                failures += 1;
            }
            println!(
                "  {} {}/{}/{:?}: {:.2}M/s vs {:.2}M/s ({:+.1}%)",
                if ok { "ok  " } else { "FAIL" },
                cell.workload,
                cell.design,
                cell.engine,
                cell.insts_per_sec / 1e6,
                base.insts_per_sec / 1e6,
                (ratio - 1.0) * 100.0
            );
        }
    }
    // Event/reference ratios are hardware-portable: gate them always —
    // on the *geomean* over matched cells, which averages out the
    // per-cell jitter of the tiny `--quick` workloads (individual cells
    // are printed for diagnosis but do not fail the gate alone).
    let mut ratios = Vec::new();
    for s in &report.speedups {
        let Some(base) = baseline
            .speedups
            .iter()
            .find(|b| b.workload == s.workload && b.design == s.design.name())
        else {
            continue;
        };
        matched += 1;
        let ratio = s.speedup / base.speedup;
        ratios.push(ratio);
        println!(
            "  {}/{} event/ref ratio: {:.2}x vs {:.2}x ({:+.1}%)",
            s.workload,
            s.design,
            s.speedup,
            base.speedup,
            (ratio - 1.0) * 100.0
        );
    }
    if !ratios.is_empty() {
        let gm = geomean(ratios.iter().copied());
        let ok = gm >= 1.0 - RATIO_FLOOR;
        if !ok {
            failures += 1;
        }
        println!(
            "  {} event/ref ratio geomean over {} cells: {:+.1}%",
            if ok { "ok  " } else { "FAIL" },
            ratios.len(),
            (gm - 1.0) * 100.0
        );
    }
    // The scheduling counters are deterministic and hardware-portable,
    // so they are gated in both modes — one-sided (dropping below the
    // baseline is an improvement) and with only a rounding allowance.
    for cell in &report.cells {
        let Some(sched) = &cell.sched else { continue };
        let Some(base) = baseline
            .cells
            .iter()
            .filter(|b| b.sched.is_some())
            .find(|b| {
                b.workload == cell.workload
                    && b.design == cell.design.name()
                    && b.engine == format!("{:?}", cell.engine)
            })
        else {
            continue;
        };
        let base_sched = base.sched.as_ref().expect("filtered to cells with sched");
        matched += 1;
        for (label, ours, base_v) in [
            (
                "wheel ops",
                sched.wheel_ops_per_inst,
                base_sched.wheel_ops_per_inst,
            ),
            (
                "broadcasts",
                sched.broadcasts_per_inst,
                base_sched.broadcasts_per_inst,
            ),
        ] {
            let ok = ours <= base_v * (1.0 + COUNTER_FLOOR);
            if !ok {
                failures += 1;
            }
            println!(
                "  {} {}/{} {label}/inst: {:.4} vs {:.4}",
                if ok { "ok  " } else { "FAIL" },
                cell.workload,
                cell.design,
                ours,
                base_v,
            );
        }
    }
    // Sweep mode-speedups are wall-clock ratios of the same binary, so
    // like the engine ratios they transfer across machines and are
    // gated in ratios-only mode too.
    for (label, ours, base) in [
        ("sweep", &report.sweep, &baseline.sweep),
        ("trace sweep", &report.trace_sweep, &baseline.trace_sweep),
    ] {
        let Some(base) = base else { continue };
        if sweep_key(&base.workload) != sweep_key(&ours.workload) {
            continue;
        }
        matched += 1;
        let ratio = ours.speedup / base.speedup;
        let ok = ratio >= 1.0 - RATIO_FLOOR;
        if !ok {
            failures += 1;
        }
        println!(
            "  {} {label} shared-pass speedup: {:.2}x vs {:.2}x ({:+.1}%)",
            if ok { "ok  " } else { "FAIL" },
            ours.speedup,
            base.speedup,
            (ratio - 1.0) * 100.0
        );
    }
    assert!(
        matched > 0,
        "baseline {path} shares no (workload, design, engine) cells with this run"
    );
    failures
}

/// The PR 10 headline gate, self-contained in every run: on each event
/// cell the fused scheduler must cut wheel ops/inst by at least
/// [`FUSE_FACTOR`] against the PR 9 shape reconstructed from the same
/// run's counters. Returns the number of failing cells.
fn fuse_gate(cells: &[Cell]) -> usize {
    let mut failures = 0;
    println!("\nfused-scheduler gate (wheel ops/inst vs the PR9 shape, >= {FUSE_FACTOR:.0}x):");
    for cell in cells {
        let Some(sched) = &cell.sched else { continue };
        let reduction = sched.pr9_wheel_ops_per_inst / sched.wheel_ops_per_inst;
        let ok = reduction >= FUSE_FACTOR;
        if !ok {
            failures += 1;
        }
        println!(
            "  {} {}/{}: {:.3} -> {:.3} wheel ops/inst ({:.2}x; {:.3} broadcasts/inst, \
             {:.2} ready touches/inst)",
            if ok { "ok  " } else { "FAIL" },
            cell.workload,
            cell.design,
            sched.pr9_wheel_ops_per_inst,
            sched.wheel_ops_per_inst,
            reduction,
            sched.broadcasts_per_inst,
            sched.ready_touches_per_inst,
        );
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_PR10.json".to_string();
    let mut quick = false;
    let mut baseline: Option<String> = None;
    let mut ratios_only = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = it.next().expect("--out requires a path"),
            "--baseline" => baseline = Some(it.next().expect("--baseline requires a path")),
            "--baseline-ratios-only" => ratios_only = true,
            other => {
                eprintln!(
                    "error: unknown flag `{other}` (expected --quick / --out <path> / \
                     --baseline <json> / --baseline-ratios-only)"
                );
                std::process::exit(2);
            }
        }
    }

    // The fixed matrix: two materialized SPEC workload models and the
    // streamed `mix` generator (pulled through the bounded record
    // window, never materialized). `--quick` shrinks every cell for CI.
    let workloads: Vec<Input> = if quick {
        vec![
            materialized("gzip", 40),
            materialized("mcf", 30),
            Input::Streamed("mix:0xbeef:50k".into()),
        ]
    } else {
        vec![
            materialized("gzip", 600),
            materialized("mcf", 400),
            Input::Streamed("mix:0xbeef:2m".into()),
        ]
    };
    let designs = [
        SqDesign::IdealOracle,
        SqDesign::Associative3,
        SqDesign::Indexed3FwdDly,
    ];
    let iters = timed_iters();

    let mut cells = Vec::new();
    let mut speedups = Vec::new();
    println!(
        "{:<16} {:<22} {:>12} {:>12} {:>9}  ({} timed iters, min wall)",
        "workload", "design", "event i/s", "ref i/s", "speedup", iters
    );
    for workload in &workloads {
        for design in designs {
            let ev = measure(workload, design, Engine::Event, iters);
            let rf = measure(workload, design, Engine::Reference, iters);
            assert_eq!(
                (ev.insts, ev.cycles),
                (rf.insts, rf.cycles),
                "engines disagree on simulated behaviour"
            );
            let speedup = ev.insts_per_sec / rf.insts_per_sec;
            println!(
                "{:<16} {:<22} {:>12.0} {:>12.0} {:>8.2}x",
                workload.name(),
                design.name(),
                ev.insts_per_sec,
                rf.insts_per_sec,
                speedup
            );
            speedups.push(Speedup {
                workload: workload.name().to_string(),
                design,
                speedup,
            });
            cells.push(ev);
            cells.push(rf);
        }
    }

    let mix_speedup = geomean(
        speedups
            .iter()
            .filter(|s| s.workload.starts_with("mix:"))
            .map(|s| s.speedup),
    );
    println!("\nmix-generator event/reference speedup (geomean): {mix_speedup:.2}x");

    let fuse_failures = fuse_gate(&cells);

    // Sweep section: all registered designs, one streamed mix workload.
    let sweep_workload = if quick {
        "mix:0xbeef:50k"
    } else {
        "mix:0xbeef:2m"
    };
    let sweep = measure_sweep(sweep_workload, iters);
    println!(
        "sweep {} x {} designs: per-cell {:.2}s, shared-pass {:.2}s ({:.2}x; \
         {} upstream pass instead of {}; ring high-water {} of {})",
        sweep.workload,
        sweep.designs.len(),
        sweep.per_cell_wall_s,
        sweep.shared_wall_s,
        sweep.speedup,
        sweep.shared_passes,
        sweep.per_cell_passes,
        sweep.ring_high_water,
        sweep.ring_capacity,
    );

    // Trace-file sweep section: the same mix stream, recorded once to
    // an on-disk SQTR trace and replayed through `tracefile:`. The file
    // name is deterministic (only the temp directory varies) so the
    // workload string stays baseline-matchable across machines.
    let trace_path = std::env::temp_dir().join(if quick {
        "sqip-perf-mix-50k.sqtr"
    } else {
        "sqip-perf-mix-2m.sqtr"
    });
    let recorded = record_trace_file(sweep_workload, &trace_path);
    let trace_sweep = measure_sweep(&format!("tracefile:{}", trace_path.display()), iters);
    let _ = std::fs::remove_file(&trace_path);
    println!(
        "trace sweep ({recorded} records on disk) x {} designs: per-cell {:.2}s, \
         shared-pass {:.2}s ({:.2}x; decode paid {} time(s) instead of {})",
        trace_sweep.designs.len(),
        trace_sweep.per_cell_wall_s,
        trace_sweep.shared_wall_s,
        trace_sweep.speedup,
        trace_sweep.shared_passes,
        trace_sweep.per_cell_passes,
    );

    let report = Report {
        bench: "sqip-perf/PR10".to_string(),
        iters,
        cells,
        speedups,
        mix_speedup,
        sweep,
        trace_sweep,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("report written to {out}");

    if fuse_failures > 0 {
        eprintln!(
            "error: {fuse_failures} cell(s) below the {FUSE_FACTOR:.0}x fused-scheduler gate"
        );
        std::process::exit(1);
    }
    if let Some(path) = baseline {
        let failures = compare_baseline(&report, &path, ratios_only);
        if failures > 0 {
            eprintln!("error: {failures} comparison(s) regressed past the noise floor");
            std::process::exit(1);
        }
        println!("baseline gate passed");
    }
}
