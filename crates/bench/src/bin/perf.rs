//! `perf` — the simulator's performance-regression harness.
//!
//! Runs a fixed matrix — 3 store-queue designs × 3 workloads (two
//! materialized SPEC models and one *streamed* generator) — under **both**
//! simulation engines, and reports per cell:
//!
//! * simulated instructions per second (the headline number),
//! * wall time (minimum over the timed iterations),
//! * simulated cycles and instructions,
//! * peak buffered trace records (the memory-boundedness observable).
//!
//! The JSON report (default `BENCH_PR4.json`) is the repo's perf
//! trajectory: each PR that touches the hot path appends a new
//! `BENCH_<PR>.json` snapshot, so regressions are diffs, not folklore.
//! The summary includes the event/reference speedup per workload; the
//! `mix` generator row at the paper's default configuration is the
//! number the engine rework is accountable for (≥ 3×).
//!
//! ```text
//! cargo run --release -p sqip-bench --bin perf             # full matrix
//! cargo run --release -p sqip-bench --bin perf -- --quick  # CI smoke
//! cargo run --release -p sqip-bench --bin perf -- --out my.json
//! ```
//!
//! `SQIP_BENCH_ITERS` controls the timed iterations per cell (default 3;
//! each cell also gets one untimed warmup). The minimum wall time is
//! reported, the standard noise-rejection choice for throughput
//! benchmarks.

use std::time::Instant;

use serde::Serialize;
use sqip::{
    by_name, Engine, Processor, SimConfig, SimStats, SqDesign, StepOutcome, WorkloadRegistry,
};
use sqip_bench::geomean;
use sqip_isa::Trace;

/// One (workload, design, engine) measurement.
#[derive(Debug, Clone, Serialize)]
struct Cell {
    workload: String,
    design: SqDesign,
    engine: Engine,
    /// Committed instructions per simulated run.
    insts: u64,
    /// Simulated cycles (identical across engines — checked).
    cycles: u64,
    /// Simulated instructions per wall second (best iteration).
    insts_per_sec: f64,
    /// Minimum wall time over the timed iterations, seconds.
    wall_s: f64,
    /// Peak records buffered between commit point and fetch frontier.
    peak_buffered: u64,
}

/// Event-over-reference throughput ratio for one (workload, design).
#[derive(Debug, Clone, Serialize)]
struct Speedup {
    workload: String,
    design: SqDesign,
    speedup: f64,
}

#[derive(Debug, Clone, Serialize)]
struct Report {
    /// Report schema / provenance marker.
    bench: String,
    /// Timed iterations per cell (minimum wall time is reported).
    iters: u32,
    cells: Vec<Cell>,
    speedups: Vec<Speedup>,
    /// The acceptance headline: event/reference on the mix generator at
    /// the paper's default configuration (geomean over the designs run).
    mix_speedup: f64,
}

fn timed_iters() -> u32 {
    std::env::var("SQIP_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

/// A matrix workload: a materialized SPEC model trace (traced once,
/// shared across every run so tracing cost stays out of the timings) or
/// a named generator streamed anew each run (generation cost is inherent
/// to streamed workloads and is charged identically to both engines).
enum Input {
    Materialized(String, Trace),
    Streamed(String),
}

impl Input {
    fn name(&self) -> &str {
        match self {
            Input::Materialized(name, _) | Input::Streamed(name) => name,
        }
    }
}

/// Runs one cell once, tracking peak buffered records.
fn run_once(input: &Input, cfg: &SimConfig) -> (SimStats, u64, f64) {
    let start = Instant::now();
    let mut p = match input {
        Input::Materialized(_, trace) => Processor::try_new(cfg.clone(), trace),
        Input::Streamed(name) => {
            let source = WorkloadRegistry::global()
                .resolve(name)
                .unwrap_or_else(|e| panic!("workload `{name}`: {e}"))
                .open()
                .unwrap_or_else(|e| panic!("workload `{name}` failed to open: {e}"));
            Processor::try_from_source(cfg.clone(), source)
        }
    }
    .unwrap_or_else(|e| panic!("config invalid: {e}"));
    let mut peak = 0u64;
    loop {
        match p.step() {
            Ok(StepOutcome::Running) => peak = peak.max(p.buffered_records() as u64),
            Ok(StepOutcome::Done) => break,
            Err(e) => panic!("{}/{}/{:?}: {e}", input.name(), cfg.design, cfg.engine),
        }
    }
    let wall = start.elapsed().as_secs_f64();
    (p.stats().clone(), peak, wall)
}

fn measure(input: &Input, design: SqDesign, engine: Engine, iters: u32) -> Cell {
    let mut cfg = SimConfig::with_design(design);
    cfg.engine = engine;
    let (stats, peak, _) = run_once(input, &cfg); // warmup (and correctness)
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let (again, _, wall) = run_once(input, &cfg);
        assert_eq!(again, stats, "non-deterministic simulation");
        best = best.min(wall);
    }
    Cell {
        workload: input.name().to_string(),
        design,
        engine,
        insts: stats.committed,
        cycles: stats.cycles,
        insts_per_sec: stats.committed as f64 / best,
        wall_s: best,
        peak_buffered: peak,
    }
}

/// A shrunk SPEC workload model, traced once.
fn materialized(name: &str, iterations: u32) -> Input {
    let spec = by_name(name)
        .unwrap_or_else(|| panic!("workload model `{name}` exists"))
        .with_iterations(iterations);
    let trace = spec
        .trace()
        .unwrap_or_else(|e| panic!("tracing `{name}`: {e}"));
    Input::Materialized(format!("{name}@{iterations}"), trace)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_PR4.json".to_string();
    let mut quick = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = it.next().expect("--out requires a path"),
            other => {
                eprintln!("error: unknown flag `{other}` (expected --quick / --out <path>)");
                std::process::exit(2);
            }
        }
    }

    // The fixed matrix: two materialized SPEC workload models and the
    // streamed `mix` generator (pulled through the bounded record
    // window, never materialized). `--quick` shrinks every cell for CI.
    let workloads: Vec<Input> = if quick {
        vec![
            materialized("gzip", 40),
            materialized("mcf", 30),
            Input::Streamed("mix:0xbeef:50k".into()),
        ]
    } else {
        vec![
            materialized("gzip", 600),
            materialized("mcf", 400),
            Input::Streamed("mix:0xbeef:2m".into()),
        ]
    };
    let designs = [
        SqDesign::IdealOracle,
        SqDesign::Associative3,
        SqDesign::Indexed3FwdDly,
    ];
    let iters = timed_iters();

    let mut cells = Vec::new();
    let mut speedups = Vec::new();
    println!(
        "{:<16} {:<22} {:>12} {:>12} {:>9}  ({} timed iters, min wall)",
        "workload", "design", "event i/s", "ref i/s", "speedup", iters
    );
    for workload in &workloads {
        for design in designs {
            let ev = measure(workload, design, Engine::Event, iters);
            let rf = measure(workload, design, Engine::Reference, iters);
            assert_eq!(
                (ev.insts, ev.cycles),
                (rf.insts, rf.cycles),
                "engines disagree on simulated behaviour"
            );
            let speedup = ev.insts_per_sec / rf.insts_per_sec;
            println!(
                "{:<16} {:<22} {:>12.0} {:>12.0} {:>8.2}x",
                workload.name(),
                design.name(),
                ev.insts_per_sec,
                rf.insts_per_sec,
                speedup
            );
            speedups.push(Speedup {
                workload: workload.name().to_string(),
                design,
                speedup,
            });
            cells.push(ev);
            cells.push(rf);
        }
    }

    let mix_speedup = geomean(
        speedups
            .iter()
            .filter(|s| s.workload.starts_with("mix:"))
            .map(|s| s.speedup),
    );
    println!("\nmix-generator event/reference speedup (geomean): {mix_speedup:.2}x");

    let report = Report {
        bench: "sqip-perf/PR4".to_string(),
        iters,
        cells,
        speedups,
        mix_speedup,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("report written to {out}");
}
