//! Regenerates the paper's **Figure 5**: performance sensitivity of the
//! indexed store queue to (a) FSP/DDP capacity, (b) FSP associativity and
//! (c) DDP training ratio, on the paper's nine selected benchmarks.
//!
//! ```text
//! cargo run --release -p sqip-bench --bin figure5 -- capacity
//! cargo run --release -p sqip-bench --bin figure5 -- associativity
//! cargo run --release -p sqip-bench --bin figure5 -- ratio
//! cargo run --release -p sqip-bench --bin figure5          # all three
//! ```

use sqip_bench::{sim, sim_with};
use sqip_core::{SimConfig, SqDesign};
use sqip_predictors::TrainRatio;
use sqip_workloads::{by_name, WorkloadSpec, FIGURE5_WORKLOADS};

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let all = which.is_empty();
    let workloads: Vec<WorkloadSpec> = FIGURE5_WORKLOADS
        .iter()
        .map(|n| by_name(n).expect("figure 5 workload exists"))
        .collect();

    // Relative-time denominator: the ideal oracle baseline per workload.
    let baselines: Vec<f64> = workloads
        .iter()
        .map(|w| sim(w, SqDesign::IdealOracle).cycles as f64)
        .collect();

    if all || which.iter().any(|a| a == "capacity") {
        println!("Figure 5 (top): FSP/DDP capacity sweep (2-way), relative runtime\n");
        sweep(&workloads, &baselines, &[512, 1024, 2048, 4096, 8192], |cfg, &cap| {
            cfg.fsp.entries = cap;
            cfg.ddp.entries = cap;
        });
    }
    if all || which.iter().any(|a| a == "associativity") {
        println!("\nFigure 5 (middle): FSP associativity sweep (4K entries), relative runtime\n");
        sweep(&workloads, &baselines, &[1, 2, 4, 8, 32], |cfg, &ways| {
            cfg.fsp.ways = ways;
        });
    }
    if all || which.iter().any(|a| a == "ratio") {
        println!("\nFigure 5 (bottom): DDP training ratio sweep, relative runtime\n");
        let ratios = [(0u8, 1u8), (1, 1), (2, 1), (4, 1), (8, 1), (1, 0)];
        sweep(&workloads, &baselines, &ratios, |cfg, &(p, n)| {
            cfg.ddp.ratio = TrainRatio::new(p, n);
            cfg.ddp.threshold = p.max(1);
        });
    }
}

fn sweep<P: std::fmt::Debug>(
    workloads: &[WorkloadSpec],
    baselines: &[f64],
    points: &[P],
    apply: impl Fn(&mut SimConfig, &P),
) {
    print!("{:>12} |", "config");
    for w in workloads {
        print!(" {:>8}", w.name);
    }
    println!();
    println!("{}", "-".repeat(14 + 9 * workloads.len()));
    for p in points {
        print!("{:>12} |", format!("{p:?}"));
        for (w, &base) in workloads.iter().zip(baselines) {
            let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
            apply(&mut cfg, p);
            let stats = sim_with(w, cfg);
            print!(" {:>8.3}", stats.cycles as f64 / base);
        }
        println!();
    }
}
