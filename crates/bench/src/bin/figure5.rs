//! Regenerates the paper's **Figure 5**: performance sensitivity of the
//! indexed store queue to (a) FSP/DDP capacity, (b) FSP associativity and
//! (c) DDP training ratio, on the paper's nine selected benchmarks.
//!
//! ```text
//! cargo run --release -p sqip-bench --bin figure5 -- capacity
//! cargo run --release -p sqip-bench --bin figure5 -- associativity
//! cargo run --release -p sqip-bench --bin figure5 -- ratio
//! cargo run --release -p sqip-bench --bin figure5          # all three
//! cargo run --release -p sqip-bench --bin figure5 -- --list-designs
//! cargo run --release -p sqip-bench --bin figure5 -- --design indexed-5-fwd+dly capacity
//! cargo run --release -p sqip-bench --bin figure5 -- --list-workloads
//! cargo run --release -p sqip-bench --bin figure5 -- --workload mix:7:500k ratio
//! ```
//!
//! Each panel is one [`Experiment`] whose `vary` axis is the swept knob;
//! the oracle denominators come from a shared baseline experiment. The
//! swept design defaults to the paper's `indexed-3-fwd+dly` and can be
//! any registered design via `--design`; the workload roster defaults to
//! the paper's nine and can be any registered workloads or generator
//! points via `--workload` (streamed in bounded memory).

#![forbid(unsafe_code)]

use sqip::{by_name, Experiment, ResultSet, SqDesign, Workload, FIGURE5_WORKLOADS};
use sqip_bench::{designs, sweep_flags, workloads};
use sqip_predictors::TrainRatio;

fn main() -> Result<(), sqip::SqipError> {
    let (sweep_args, rest) = sweep_flags::parse_or_exit(std::env::args().skip(1));
    let parsed = designs::parse_or_exit(rest, &[SqDesign::Indexed3FwdDly]);
    let [swept]: [SqDesign; 1] = match parsed.designs.try_into() {
        Ok(one) => one,
        Err(_) => {
            eprintln!("error: figure5 sweeps exactly one design");
            std::process::exit(2);
        }
    };
    let parsed = workloads::parse_or_exit(parsed.rest);
    let which = parsed.rest;
    let all = which.is_empty();
    let roster: Vec<Workload> = if parsed.workloads.is_empty() {
        FIGURE5_WORKLOADS
            .iter()
            .map(|n| Workload::from(by_name(n).expect("figure 5 workload exists")))
            .collect()
    } else {
        parsed.workloads
    };

    // Relative-time denominator: the ideal oracle baseline per workload.
    let baselines = sweep_args.run(
        &Experiment::new()
            .workloads(roster.iter().cloned())
            .design(SqDesign::IdealOracle),
    )?;

    if all || which.iter().any(|a| a == "capacity") {
        println!("Figure 5 (top): FSP/DDP capacity sweep (2-way), relative runtime\n");
        let sweep =
            [512usize, 1024, 2048, 4096, 8192]
                .into_iter()
                .fold(panel(&roster, swept), |e, cap| {
                    e.vary(format!("{cap}"), move |cfg| {
                        cfg.fsp.entries = cap;
                        cfg.ddp.entries = cap;
                    })
                });
        let sweep = sweep_args.run(&sweep)?;
        print_panel(&sweep, &baselines);
    }
    if all || which.iter().any(|a| a == "associativity") {
        println!("\nFigure 5 (middle): FSP associativity sweep (4K entries), relative runtime\n");
        let sweep = [1usize, 2, 4, 8, 32]
            .into_iter()
            .fold(panel(&roster, swept), |e, ways| {
                e.vary(format!("{ways}"), move |cfg| cfg.fsp.ways = ways)
            });
        let sweep = sweep_args.run(&sweep)?;
        print_panel(&sweep, &baselines);
    }
    if all || which.iter().any(|a| a == "ratio") {
        println!("\nFigure 5 (bottom): DDP training ratio sweep, relative runtime\n");
        let ratios = [(0u8, 1u8), (1, 1), (2, 1), (4, 1), (8, 1), (1, 0)];
        let sweep = ratios.into_iter().fold(panel(&roster, swept), |e, (p, n)| {
            e.vary(format!("{p}:{n}"), move |cfg| {
                cfg.ddp.ratio = TrainRatio::new(p, n);
                cfg.ddp.threshold = p.max(1);
            })
        });
        let sweep = sweep_args.run(&sweep)?;
        print_panel(&sweep, &baselines);
    }
    Ok(())
}

/// The shared shape of every Figure 5 panel: the roster under the
/// swept design; the panel's knob is added as `vary` points.
fn panel(roster: &[Workload], swept: SqDesign) -> Experiment {
    Experiment::new()
        .workloads(roster.iter().cloned())
        .design(swept)
}

fn print_panel(sweep: &ResultSet, baselines: &ResultSet) {
    // Read the swept and baseline designs off the records themselves so
    // this cannot drift from the experiments that produced them.
    let design = sweep.records()[0].design;
    let baseline_design = baselines.records()[0].design;
    let names = sweep.workload_names();
    print!("{:>12} |", "config");
    for name in &names {
        print!(" {name:>8}");
    }
    println!();
    println!("{}", "-".repeat(14 + 9 * names.len()));
    for variant in sweep.variants() {
        print!("{variant:>12} |");
        for name in &names {
            let cell = sweep.find(name, design, variant).expect("sweep cell ran");
            let base = baselines.get(name, baseline_design).expect("baseline ran");
            print!(
                " {:>8.3}",
                cell.stats.cycles as f64 / base.stats.cycles as f64
            );
        }
        println!();
    }
}
