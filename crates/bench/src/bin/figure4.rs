//! Regenerates the paper's **Figure 4**: execution times of five store
//! queue configurations relative to an ideal 3-cycle associative SQ with
//! oracle load scheduling, per benchmark and as per-suite geometric means.
//!
//! ```text
//! cargo run --release -p sqip-bench --bin figure4 [-- <benchmark> ...]
//! ```

use sqip_bench::{geomean, sim};
use sqip_core::SqDesign;
use sqip_workloads::{all_workloads, Suite, WorkloadSpec};

const DESIGNS: [SqDesign; 5] = [
    SqDesign::Associative3,
    SqDesign::Associative5Replay,
    SqDesign::Associative5FwdPred,
    SqDesign::Indexed3Fwd,
    SqDesign::Indexed3FwdDly,
];

struct Row {
    name: &'static str,
    suite: Suite,
    baseline_ipc: f64,
    /// Relative execution time per design (same order as `DESIGNS`).
    relative: [f64; 5],
}

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).collect();
    let workloads: Vec<WorkloadSpec> = all_workloads()
        .into_iter()
        .filter(|w| filter.is_empty() || filter.iter().any(|f| f == w.name))
        .collect();

    println!("Figure 4. Execution times relative to an ideal, 3-cycle");
    println!("associative store queue with oracle load scheduling.\n");
    println!(
        "{:>10} {:>6} | {:>8} {:>8} {:>8} {:>8} {:>8}",
        "", "IPC", "assoc-3", "assoc-5r", "assoc-5f", "idx-fwd", "idx-f+d"
    );
    println!("{}", "-".repeat(66));

    let mut rows = Vec::new();
    for spec in &workloads {
        let baseline = sim(spec, SqDesign::IdealOracle);
        let mut relative = [0.0; 5];
        for (slot, design) in relative.iter_mut().zip(DESIGNS) {
            let stats = sim(spec, design);
            *slot = stats.cycles as f64 / baseline.cycles as f64;
        }
        let row = Row {
            name: spec.name,
            suite: spec.suite,
            baseline_ipc: baseline.ipc(),
            relative,
        };
        print_row(&row);
        rows.push(row);
    }

    if filter.is_empty() {
        println!("{}", "-".repeat(66));
        for suite in [Suite::Media, Suite::Int, Suite::Fp] {
            print_gmean(&format!("{suite}.gmean"), rows.iter().filter(|r| r.suite == suite));
        }
        print_gmean("All.gmean", rows.iter());
    }
}

fn print_row(r: &Row) {
    print!("{:>10} {:>6.2} |", r.name, r.baseline_ipc);
    for v in r.relative {
        print!(" {v:>8.3}");
    }
    println!();
}

fn print_gmean<'a>(label: &str, rows: impl Iterator<Item = &'a Row>) {
    let rows: Vec<&Row> = rows.collect();
    if rows.is_empty() {
        return;
    }
    print!("{:>10} {:>6} |", label, "");
    for i in 0..5 {
        let g = geomean(rows.iter().map(|r| r.relative[i]));
        print!(" {g:>8.3}");
    }
    println!();
}
