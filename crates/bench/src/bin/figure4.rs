//! Regenerates the paper's **Figure 4**: execution times of five store
//! queue configurations relative to an ideal 3-cycle associative SQ with
//! oracle load scheduling, per benchmark and as per-suite geometric means.
//!
//! ```text
//! cargo run --release -p sqip-bench --bin figure4 [-- <benchmark> ...]
//! cargo run --release -p sqip-bench --bin figure4 -- --json > figure4.json
//! cargo run --release -p sqip-bench --bin figure4 -- --csv  > figure4.csv
//! cargo run --release -p sqip-bench --bin figure4 -- --list-designs
//! cargo run --release -p sqip-bench --bin figure4 -- --design indexed-5-fwd+dly
//! cargo run --release -p sqip-bench --bin figure4 -- --list-workloads
//! cargo run --release -p sqip-bench --bin figure4 -- --workload stream-10m
//! cargo run --release -p sqip-bench --bin figure4 -- --workload mix:0xbeef:1m
//! cargo run --release -p sqip-bench --bin figure4 -- --shard 0/2 --shard-out s0.json
//! ```
//!
//! The whole sweep is one [`Experiment`]: the selected workloads × the
//! selected designs, executed in parallel with deterministic results.
//! Both axes are open: `--design` names any registered store-queue
//! design; `--workload` names any registered workload or generator point
//! (streamed through the simulator in bounded memory — a 10M-instruction
//! generator cell runs fine on a small machine). Defaults: the 47
//! Table 3 workloads × Figure 4's five designs.

#![forbid(unsafe_code)]

use sqip::{all_workloads, geomean, Experiment, ResultSet, SqDesign, Suite, Workload};
use sqip_bench::{designs, sweep_flags, workloads};

const BASELINE: SqDesign = SqDesign::IdealOracle;
const DEFAULT_DESIGNS: [SqDesign; 5] = [
    SqDesign::Associative3,
    SqDesign::Associative5Replay,
    SqDesign::Associative5FwdPred,
    SqDesign::Indexed3Fwd,
    SqDesign::Indexed3FwdDly,
];

fn main() -> Result<(), sqip::SqipError> {
    let (sweep, rest) = sweep_flags::parse_or_exit(std::env::args().skip(1));
    let parsed = designs::parse_or_exit(rest, &DEFAULT_DESIGNS);
    let compared: Vec<SqDesign> = parsed
        .designs
        .into_iter()
        .filter(|&d| d != BASELINE)
        .collect();
    if compared.is_empty() {
        eprintln!("error: --design selected only the {BASELINE} baseline; nothing to compare");
        std::process::exit(2);
    }
    let parsed = workloads::parse_or_exit(parsed.rest);
    let json = parsed.rest.iter().any(|a| a == "--json");
    let csv = parsed.rest.iter().any(|a| a == "--csv");
    let filter: Vec<&String> = parsed
        .rest
        .iter()
        .filter(|a| !a.starts_with("--"))
        .collect();
    if !filter.is_empty() && !parsed.workloads.is_empty() {
        eprintln!(
            "error: positional benchmark filters and --workload are mutually exclusive; \
             pass everything via repeated --workload flags"
        );
        std::process::exit(2);
    }
    let subset = !filter.is_empty() || !parsed.workloads.is_empty();

    let selected: Vec<Workload> = if parsed.workloads.is_empty() {
        all_workloads()
            .into_iter()
            .filter(|w| filter.is_empty() || filter.iter().any(|f| **f == w.name))
            .map(Workload::from)
            .collect()
    } else {
        parsed.workloads
    };

    let experiment = Experiment::new()
        .workloads(selected)
        .design(BASELINE)
        .designs(compared.iter().copied());
    // `--shard i/n` runs this bin's slice of the sweep and emits a
    // `sqip-merge` artifact instead of the figure.
    let Some(results) = sweep.run_or_emit_shard(&experiment)? else {
        return Ok(());
    };

    if json {
        println!("{}", results.to_json_pretty());
        return Ok(());
    }
    if csv {
        print!("{}", results.to_csv());
        return Ok(());
    }

    println!("Figure 4. Execution times relative to an ideal, 3-cycle");
    println!("associative store queue with oracle load scheduling.\n");
    let widths: Vec<usize> = compared.iter().map(|d| d.label().len().max(8)).collect();
    // Name column sized to the roster (generator names can be long).
    let name_w = results
        .workload_names()
        .iter()
        .map(|n| n.len())
        .max()
        .unwrap_or(0)
        .max(10);
    print!("{:>name_w$} {:>6} |", "", "IPC");
    for (design, w) in compared.iter().zip(&widths) {
        print!(" {:>w$}", design.label(), w = w);
    }
    println!();
    // name + " " + 6-wide IPC + " |"; each design column adds " " + w.
    let rule = name_w + 9 + widths.iter().map(|w| w + 1).sum::<usize>();
    println!("{}", "-".repeat(rule));

    for name in results.workload_names() {
        let baseline = results.get(name, BASELINE).expect("baseline cell ran");
        print!("{name:>name_w$} {:>6.2} |", baseline.stats.ipc());
        for (&design, &w) in compared.iter().zip(&widths) {
            let rel = results
                .relative_runtime(name, sqip::BASE_VARIANT, design, BASELINE)
                .expect("design cell ran");
            print!(" {rel:>w$.3}", w = w);
        }
        println!();
    }

    if !subset {
        println!("{}", "-".repeat(rule));
        for suite in [Suite::Media, Suite::Int, Suite::Fp] {
            print_gmean(
                &results,
                &format!("{suite}.gmean"),
                Some(suite),
                &compared,
                &widths,
            );
        }
        print_gmean(&results, "All.gmean", None, &compared, &widths);
    }
    Ok(())
}

fn print_gmean(
    results: &ResultSet,
    label: &str,
    suite: Option<Suite>,
    compared: &[SqDesign],
    widths: &[usize],
) {
    print!("{:>10} {:>6} |", label, "");
    for (&design, &w) in compared.iter().zip(widths) {
        let ratios: Vec<f64> = results
            .workload_names()
            .iter()
            .filter(|&&name| {
                suite.is_none() || results.get(name, BASELINE).and_then(|r| r.suite) == suite
            })
            .filter_map(|name| results.relative_runtime(name, sqip::BASE_VARIANT, design, BASELINE))
            .collect();
        print!(" {:>w$.3}", geomean(ratios), w = w);
    }
    println!();
}
