//! Regenerates the paper's **Figure 4**: execution times of five store
//! queue configurations relative to an ideal 3-cycle associative SQ with
//! oracle load scheduling, per benchmark and as per-suite geometric means.
//!
//! ```text
//! cargo run --release -p sqip-bench --bin figure4 [-- <benchmark> ...]
//! cargo run --release -p sqip-bench --bin figure4 -- --json > figure4.json
//! cargo run --release -p sqip-bench --bin figure4 -- --csv  > figure4.csv
//! ```
//!
//! The whole sweep is one [`Experiment`]: 47 workloads × 6 designs,
//! executed in parallel with deterministic results.

use sqip::{all_workloads, geomean, Experiment, ResultSet, SqDesign, Suite};

const BASELINE: SqDesign = SqDesign::IdealOracle;
const DESIGNS: [SqDesign; 5] = [
    SqDesign::Associative3,
    SqDesign::Associative5Replay,
    SqDesign::Associative5FwdPred,
    SqDesign::Indexed3Fwd,
    SqDesign::Indexed3FwdDly,
];

fn main() -> Result<(), sqip::SqipError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let csv = args.iter().any(|a| a == "--csv");
    let filter: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let results = Experiment::new()
        .workloads(
            all_workloads()
                .into_iter()
                .filter(|w| filter.is_empty() || filter.iter().any(|f| *f == w.name)),
        )
        .design(BASELINE)
        .designs(DESIGNS)
        .run()?;

    if json {
        println!("{}", results.to_json_pretty());
        return Ok(());
    }
    if csv {
        print!("{}", results.to_csv());
        return Ok(());
    }

    println!("Figure 4. Execution times relative to an ideal, 3-cycle");
    println!("associative store queue with oracle load scheduling.\n");
    println!(
        "{:>10} {:>6} | {:>8} {:>8} {:>8} {:>8} {:>8}",
        "", "IPC", "assoc-3", "assoc-5r", "assoc-5f", "idx-fwd", "idx-f+d"
    );
    println!("{}", "-".repeat(66));

    for name in results.workload_names() {
        let baseline = results.get(name, BASELINE).expect("baseline cell ran");
        print!("{:>10} {:>6.2} |", name, baseline.stats.ipc());
        for design in DESIGNS {
            let rel = results
                .relative_runtime(name, sqip::BASE_VARIANT, design, BASELINE)
                .expect("design cell ran");
            print!(" {rel:>8.3}");
        }
        println!();
    }

    if filter.is_empty() {
        println!("{}", "-".repeat(66));
        for suite in [Suite::Media, Suite::Int, Suite::Fp] {
            print_gmean(&results, &format!("{suite}.gmean"), Some(suite));
        }
        print_gmean(&results, "All.gmean", None);
    }
    Ok(())
}

fn print_gmean(results: &ResultSet, label: &str, suite: Option<Suite>) {
    print!("{:>10} {:>6} |", label, "");
    for design in DESIGNS {
        let ratios: Vec<f64> = results
            .workload_names()
            .iter()
            .filter(|&&name| {
                suite.is_none() || results.get(name, BASELINE).and_then(|r| r.suite) == suite
            })
            .filter_map(|name| results.relative_runtime(name, sqip::BASE_VARIANT, design, BASELINE))
            .collect();
        print!(" {:>8.3}", geomean(ratios));
    }
    println!();
}
