//! Versioned, self-describing binary snapshots of simulator state.
//!
//! This crate is the persistence layer under `Processor::checkpoint` /
//! `Processor::restore`: a [`Snapshot`] trait (field-exact binary
//! save/load) plus a self-describing container format. A snapshot file
//! is
//!
//! ```text
//! magic "SQSN" | format version (u32 LE) | payload length (u64 LE)
//!             | FNV-1a-64 payload checksum (u64 LE) | payload
//! ```
//!
//! so truncation, corruption, and foreign versions are detected up
//! front — the same discipline as the trace-file format in
//! `sqip-isa::tracefile` — and every failure is a typed [`SnapError`],
//! never a panic.
//!
//! Determinism note: all integers are little-endian and fixed-width;
//! container impls write an explicit length prefix. A type's snapshot
//! bytes are a pure function of its state, which is what makes
//! checkpoint-at-N + resume bit-identical to a straight run.
//!
//! # Example
//!
//! ```
//! use sqip_snapshot::{snapshot_struct, SnapReader, SnapWriter, Snapshot};
//!
//! struct Counter {
//!     ticks: u64,
//!     armed: bool,
//! }
//! snapshot_struct!(Counter { ticks, armed });
//!
//! let before = Counter { ticks: 41, armed: true };
//! let mut w = SnapWriter::new();
//! before.save(&mut w)?;
//! let mut bytes = Vec::new();
//! w.finish(&mut bytes)?;
//!
//! let mut r = SnapReader::new(&mut bytes.as_slice())?;
//! let after = Counter::load(&mut r)?;
//! r.finish()?;
//! assert_eq!(after.ticks, 41);
//! assert!(after.armed);
//! # Ok::<(), sqip_snapshot::SnapError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::io::{Read, Write};

use sqip_types::{Addr, AddrSpan, Cycle, DataSize, Pc, Seq, Ssn};

/// File magic identifying a SQIP snapshot.
pub const SNAP_MAGIC: [u8; 4] = *b"SQSN";

/// Current snapshot format version.
pub const SNAP_VERSION: u32 = 1;

/// Everything that can go wrong saving, loading, or resuming from a
/// snapshot. No code path in this crate panics on malformed input.
#[derive(Debug)]
pub enum SnapError {
    /// The input does not start with [`SNAP_MAGIC`].
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The snapshot was written by an unknown format version.
    UnsupportedVersion {
        /// The version in the file.
        found: u32,
        /// The version this build reads.
        supported: u32,
    },
    /// The input ended before the declared payload did.
    Truncated {
        /// Bytes the reader needed.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually read.
        found: u64,
    },
    /// The payload decoded to an impossible value (bad enum tag,
    /// out-of-range index, trailing bytes, ...).
    Corrupt(String),
    /// The live state cannot be checkpointed (e.g. a custom boxed
    /// policy, or a shared-pass oracle feed).
    Unsupported(String),
    /// The trace source handed to restore does not match the
    /// checkpointed run (exhausted early, or failed while fast-forwarding).
    Source(String),
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::BadMagic { found } => {
                write!(f, "not a snapshot file (magic {found:02x?})")
            }
            SnapError::UnsupportedVersion { found, supported } => {
                write!(f, "snapshot version {found} (this build reads {supported})")
            }
            SnapError::Truncated { needed, available } => {
                write!(
                    f,
                    "snapshot truncated: needed {needed} bytes, had {available}"
                )
            }
            SnapError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot payload checksum {found:016x} != header {expected:016x}"
            ),
            SnapError::Corrupt(detail) => write!(f, "corrupt snapshot payload: {detail}"),
            SnapError::Unsupported(detail) => write!(f, "state cannot be checkpointed: {detail}"),
            SnapError::Source(detail) => write!(f, "resume source mismatch: {detail}"),
            SnapError::Io(e) => write!(f, "snapshot I/O error: {e}"),
        }
    }
}

impl std::error::Error for SnapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> SnapError {
        SnapError::Io(e)
    }
}

/// FNV-1a 64-bit — the checksum of the snapshot payload (and the digest
/// behind `sqip`'s content-addressed result cache).
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Fnv {
    /// The FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current hash value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0
    }

    /// The hash as 16 lowercase hex digits.
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv::new()
    }
}

/// Accumulates a snapshot payload, then emits the framed container
/// (magic + version + length + checksum + payload) via
/// [`SnapWriter::finish`].
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty payload buffer.
    #[must_use]
    pub fn new() -> SnapWriter {
        SnapWriter { buf: Vec::new() }
    }

    /// Appends raw bytes to the payload.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Bytes accumulated so far.
    #[must_use]
    pub fn payload_len(&self) -> usize {
        self.buf.len()
    }

    /// Writes the framed snapshot (header + payload) to `out`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Io`] if the sink fails.
    pub fn finish(self, out: &mut impl Write) -> Result<(), SnapError> {
        let mut fnv = Fnv::new();
        fnv.update(&self.buf);
        out.write_all(&SNAP_MAGIC)?;
        out.write_all(&SNAP_VERSION.to_le_bytes())?;
        out.write_all(&(self.buf.len() as u64).to_le_bytes())?;
        out.write_all(&fnv.value().to_le_bytes())?;
        out.write_all(&self.buf)?;
        out.flush()?;
        Ok(())
    }
}

/// Parses a framed snapshot up front (magic, version, length, checksum)
/// and then serves typed reads from the verified payload.
#[derive(Debug)]
pub struct SnapReader {
    buf: Vec<u8>,
    pos: usize,
}

impl SnapReader {
    /// Reads and verifies the container header, then buffers and
    /// checksums the whole payload.
    ///
    /// # Errors
    ///
    /// [`SnapError::BadMagic`], [`SnapError::UnsupportedVersion`],
    /// [`SnapError::Truncated`], [`SnapError::ChecksumMismatch`], or
    /// [`SnapError::Io`].
    pub fn new(input: &mut impl Read) -> Result<SnapReader, SnapError> {
        let mut header = [0u8; 4 + 4 + 8 + 8];
        read_exact(input, &mut header, "container header")?;
        let magic: [u8; 4] = header[0..4].try_into().expect("fixed slice");
        if magic != SNAP_MAGIC {
            return Err(SnapError::BadMagic { found: magic });
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("fixed slice"));
        if version != SNAP_VERSION {
            return Err(SnapError::UnsupportedVersion {
                found: version,
                supported: SNAP_VERSION,
            });
        }
        let len = u64::from_le_bytes(header[8..16].try_into().expect("fixed slice"));
        let expected = u64::from_le_bytes(header[16..24].try_into().expect("fixed slice"));

        let mut buf = Vec::new();
        input.take(len).read_to_end(&mut buf)?;
        if (buf.len() as u64) < len {
            return Err(SnapError::Truncated {
                needed: len,
                available: buf.len() as u64,
            });
        }
        let mut fnv = Fnv::new();
        fnv.update(&buf);
        if fnv.value() != expected {
            return Err(SnapError::ChecksumMismatch {
                expected,
                found: fnv.value(),
            });
        }
        Ok(SnapReader { buf, pos: 0 })
    }

    /// The next `n` payload bytes.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] if fewer than `n` bytes remain.
    pub fn take_bytes(&mut self, n: usize) -> Result<&[u8], SnapError> {
        let remaining = self.buf.len() - self.pos;
        if remaining < n {
            return Err(SnapError::Truncated {
                needed: n as u64,
                available: remaining as u64,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of payload.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take_bytes(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of payload.
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(
            self.take_bytes(4)?.try_into().expect("fixed slice"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of payload.
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(
            self.take_bytes(8)?.try_into().expect("fixed slice"),
        ))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of payload.
    pub fn get_i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(
            self.take_bytes(8)?.try_into().expect("fixed slice"),
        ))
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] if bytes remain — the payload and the
    /// loader disagree about the state's shape.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.pos != self.buf.len() {
            return Err(SnapError::Corrupt(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn read_exact(input: &mut impl Read, buf: &mut [u8], what: &str) -> Result<(), SnapError> {
    match input.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(SnapError::Truncated {
            needed: buf.len() as u64,
            available: 0,
        }),
        Err(e) => Err(SnapError::Corrupt(format!("reading {what}: {e}"))),
    }
}

/// Field-exact binary persistence: a type's full state, saved and
/// restored bit-identically.
///
/// Implementations must be *lossless and deterministic*: `load(save(x))`
/// must reproduce a value whose future behaviour is indistinguishable
/// from `x`'s. Derived caches may be re-derived on load; everything
/// observable must round-trip.
///
/// For plain named-field structs use [`snapshot_struct!`]; hand-write
/// enums (tag byte + payload) and types with internal invariants.
///
/// # Example
///
/// ```
/// use sqip_snapshot::{SnapReader, SnapWriter, Snapshot};
///
/// let state: Vec<(u64, bool)> = vec![(3, true), (9, false)];
/// let mut w = SnapWriter::new();
/// state.save(&mut w)?;
/// let mut bytes = Vec::new();
/// w.finish(&mut bytes)?;
///
/// let mut r = SnapReader::new(&mut bytes.as_slice())?;
/// let restored = Vec::<(u64, bool)>::load(&mut r)?;
/// assert_eq!(restored, state);
/// # Ok::<(), sqip_snapshot::SnapError>(())
/// ```
pub trait Snapshot: Sized {
    /// Appends this value's state to the payload.
    ///
    /// # Errors
    ///
    /// [`SnapError::Unsupported`] when the live state cannot be
    /// persisted (implementations for plain data never fail).
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError>;

    /// Reconstructs a value from the payload.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] or [`SnapError::Corrupt`] on malformed
    /// payloads.
    fn load(r: &mut SnapReader) -> Result<Self, SnapError>;
}

/// Generates a field-by-field [`Snapshot`] impl for a named-field
/// struct. Expand it in the module that owns the struct so private
/// fields are in scope; fields save and load in the listed order.
///
/// The optional `derived { field: expr, ... }` block names fields that
/// are *not* serialised: they load as the given placeholder expression
/// and the owner is expected to rebuild them from other state after
/// load. Adding a derived field never changes the snapshot format.
#[macro_export]
macro_rules! snapshot_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        $crate::snapshot_struct!($ty { $($field),+ } derived {});
    };
    ($ty:ty { $($field:ident),+ $(,)? }
     derived { $($dfield:ident: $dval:expr),* $(,)? }) => {
        impl $crate::Snapshot for $ty {
            fn save(
                &self,
                w: &mut $crate::SnapWriter,
            ) -> Result<(), $crate::SnapError> {
                $($crate::Snapshot::save(&self.$field, w)?;)+
                Ok(())
            }
            fn load(r: &mut $crate::SnapReader) -> Result<Self, $crate::SnapError> {
                Ok(Self {
                    $($field: $crate::Snapshot::load(r)?,)+
                    $($dfield: $dval,)*
                })
            }
        }
    };
}

impl Snapshot for u8 {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.put_u8(*self);
        Ok(())
    }
    fn load(r: &mut SnapReader) -> Result<u8, SnapError> {
        r.get_u8()
    }
}

impl Snapshot for u32 {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.put_u32(*self);
        Ok(())
    }
    fn load(r: &mut SnapReader) -> Result<u32, SnapError> {
        r.get_u32()
    }
}

impl Snapshot for u64 {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.put_u64(*self);
        Ok(())
    }
    fn load(r: &mut SnapReader) -> Result<u64, SnapError> {
        r.get_u64()
    }
}

impl Snapshot for i64 {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.put_i64(*self);
        Ok(())
    }
    fn load(r: &mut SnapReader) -> Result<i64, SnapError> {
        r.get_i64()
    }
}

impl Snapshot for usize {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.put_u64(*self as u64);
        Ok(())
    }
    fn load(r: &mut SnapReader) -> Result<usize, SnapError> {
        let v = r.get_u64()?;
        usize::try_from(v).map_err(|_| SnapError::Corrupt(format!("usize overflow: {v}")))
    }
}

impl Snapshot for bool {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.put_u8(u8::from(*self));
        Ok(())
    }
    fn load(r: &mut SnapReader) -> Result<bool, SnapError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(SnapError::Corrupt(format!("bool tag {t}"))),
        }
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.save(w)?;
            }
        }
        Ok(())
    }
    fn load(r: &mut SnapReader) -> Result<Option<T>, SnapError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            t => Err(SnapError::Corrupt(format!("Option tag {t}"))),
        }
    }
}

/// Pre-allocation cap for length-prefixed containers: a corrupt length
/// must not translate into an unbounded allocation before element reads
/// hit [`SnapError::Truncated`].
const PREALLOC_CAP: usize = 4096;

impl<T: Snapshot> Snapshot for Vec<T> {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.put_u64(self.len() as u64);
        for item in self {
            item.save(w)?;
        }
        Ok(())
    }
    fn load(r: &mut SnapReader) -> Result<Vec<T>, SnapError> {
        let n = usize::load(r)?;
        let mut out = Vec::with_capacity(n.min(PREALLOC_CAP));
        for _ in 0..n {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Snapshot> Snapshot for VecDeque<T> {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.put_u64(self.len() as u64);
        for item in self {
            item.save(w)?;
        }
        Ok(())
    }
    fn load(r: &mut SnapReader) -> Result<VecDeque<T>, SnapError> {
        let n = usize::load(r)?;
        let mut out = VecDeque::with_capacity(n.min(PREALLOC_CAP));
        for _ in 0..n {
            out.push_back(T::load(r)?);
        }
        Ok(out)
    }
}

impl Snapshot for String {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.put_u64(self.len() as u64);
        w.put_bytes(self.as_bytes());
        Ok(())
    }
    fn load(r: &mut SnapReader) -> Result<String, SnapError> {
        let n = usize::load(r)?;
        let bytes = r.take_bytes(n)?.to_vec();
        String::from_utf8(bytes).map_err(|_| SnapError::Corrupt("non-UTF-8 string".into()))
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        self.0.save(w)?;
        self.1.save(w)
    }
    fn load(r: &mut SnapReader) -> Result<(A, B), SnapError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Snapshot, B: Snapshot, C: Snapshot> Snapshot for (A, B, C) {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        self.0.save(w)?;
        self.1.save(w)?;
        self.2.save(w)
    }
    fn load(r: &mut SnapReader) -> Result<(A, B, C), SnapError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

impl<A: Snapshot, B: Snapshot, C: Snapshot, D: Snapshot> Snapshot for (A, B, C, D) {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        self.0.save(w)?;
        self.1.save(w)?;
        self.2.save(w)?;
        self.3.save(w)
    }
    fn load(r: &mut SnapReader) -> Result<(A, B, C, D), SnapError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?, D::load(r)?))
    }
}

impl<T: Snapshot, const N: usize> Snapshot for [T; N] {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        for item in self {
            item.save(w)?;
        }
        Ok(())
    }
    fn load(r: &mut SnapReader) -> Result<[T; N], SnapError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::load(r)?);
        }
        out.try_into()
            .map_err(|_| SnapError::Corrupt("array length mismatch".into()))
    }
}

macro_rules! snapshot_newtype_u64 {
    ($($ty:ident),+) => {
        $(impl Snapshot for $ty {
            fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
                w.put_u64(self.0);
                Ok(())
            }
            fn load(r: &mut SnapReader) -> Result<$ty, SnapError> {
                Ok($ty(r.get_u64()?))
            }
        })+
    };
}

snapshot_newtype_u64!(Seq, Cycle, Addr, Pc, Ssn);

impl Snapshot for DataSize {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.put_u8(self.bytes());
        Ok(())
    }
    fn load(r: &mut SnapReader) -> Result<DataSize, SnapError> {
        let b = r.get_u8()?;
        DataSize::from_bytes(b).ok_or_else(|| SnapError::Corrupt(format!("DataSize of {b} bytes")))
    }
}

impl Snapshot for AddrSpan {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.put_u64(self.base().0);
        w.put_u8(self.len());
        Ok(())
    }
    fn load(r: &mut SnapReader) -> Result<AddrSpan, SnapError> {
        let base = r.get_u64()?;
        let bytes = r.get_u8()?;
        let size = DataSize::from_bytes(bytes)
            .ok_or_else(|| SnapError::Corrupt(format!("AddrSpan of {bytes} bytes")))?;
        Ok(Addr::new(base).span(size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_bytes(w: SnapWriter) -> Vec<u8> {
        let mut out = Vec::new();
        w.finish(&mut out).unwrap();
        out
    }

    #[test]
    fn primitives_roundtrip() {
        let mut w = SnapWriter::new();
        0xABu8.save(&mut w).unwrap();
        0xDEAD_BEEFu32.save(&mut w).unwrap();
        u64::MAX.save(&mut w).unwrap();
        (-42i64).save(&mut w).unwrap();
        true.save(&mut w).unwrap();
        usize::MAX.save(&mut w).unwrap();
        let bytes = roundtrip_bytes(w);

        let mut r = SnapReader::new(&mut bytes.as_slice()).unwrap();
        assert_eq!(u8::load(&mut r).unwrap(), 0xAB);
        assert_eq!(u32::load(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(u64::load(&mut r).unwrap(), u64::MAX);
        assert_eq!(i64::load(&mut r).unwrap(), -42);
        assert!(bool::load(&mut r).unwrap());
        assert_eq!(usize::load(&mut r).unwrap(), usize::MAX);
        r.finish().unwrap();
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Option<u64>> = vec![Some(1), None, Some(3)];
        let d: VecDeque<(Seq, usize, Ssn)> =
            VecDeque::from(vec![(Seq(1), 2, Ssn::new(3)), (Seq(4), 5, Ssn::NONE)]);
        let s = String::from("hello snapshot");
        let arr: [Option<Seq>; 4] = [None, Some(Seq(9)), None, Some(Seq(11))];

        let mut w = SnapWriter::new();
        v.save(&mut w).unwrap();
        d.save(&mut w).unwrap();
        s.save(&mut w).unwrap();
        arr.save(&mut w).unwrap();
        let bytes = roundtrip_bytes(w);

        let mut r = SnapReader::new(&mut bytes.as_slice()).unwrap();
        assert_eq!(Vec::<Option<u64>>::load(&mut r).unwrap(), v);
        assert_eq!(VecDeque::<(Seq, usize, Ssn)>::load(&mut r).unwrap(), d);
        assert_eq!(String::load(&mut r).unwrap(), s);
        assert_eq!(<[Option<Seq>; 4]>::load(&mut r).unwrap(), arr);
        r.finish().unwrap();
    }

    #[test]
    fn span_and_size_roundtrip() {
        let span = Addr::new(0x104).span(DataSize::Word);
        let mut w = SnapWriter::new();
        span.save(&mut w).unwrap();
        DataSize::Byte.save(&mut w).unwrap();
        let bytes = roundtrip_bytes(w);
        let mut r = SnapReader::new(&mut bytes.as_slice()).unwrap();
        assert_eq!(AddrSpan::load(&mut r).unwrap(), span);
        assert_eq!(DataSize::load(&mut r).unwrap(), DataSize::Byte);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = roundtrip_bytes(SnapWriter::new());
        bytes[0] = b'X';
        match SnapReader::new(&mut bytes.as_slice()) {
            Err(SnapError::BadMagic { .. }) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn foreign_version_is_typed() {
        let mut bytes = roundtrip_bytes(SnapWriter::new());
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        match SnapReader::new(&mut bytes.as_slice()) {
            Err(SnapError::UnsupportedVersion { found: 99, .. }) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_typed() {
        let mut w = SnapWriter::new();
        vec![1u64, 2, 3].save(&mut w).unwrap();
        let bytes = roundtrip_bytes(w);
        for cut in [0, 3, 10, bytes.len() - 1] {
            match SnapReader::new(&mut &bytes[..cut]) {
                Err(SnapError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn corruption_is_typed() {
        let mut w = SnapWriter::new();
        vec![1u64, 2, 3].save(&mut w).unwrap();
        let mut bytes = roundtrip_bytes(w);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        match SnapReader::new(&mut bytes.as_slice()) {
            Err(SnapError::ChecksumMismatch { .. }) => {}
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let mut w = SnapWriter::new();
        7u64.save(&mut w).unwrap();
        8u64.save(&mut w).unwrap();
        let bytes = roundtrip_bytes(w);
        let mut r = SnapReader::new(&mut bytes.as_slice()).unwrap();
        let _ = u64::load(&mut r).unwrap();
        match r.finish() {
            Err(SnapError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_length_does_not_overallocate() {
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX); // absurd element count
        let bytes = roundtrip_bytes(w);
        let mut r = SnapReader::new(&mut bytes.as_slice()).unwrap();
        match Vec::<u64>::load(&mut r) {
            Err(SnapError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }
}
