//! Integration tests for the forwarding mechanisms themselves: the paper's
//! Figure 3 scenario, width rules, partial overlaps and SVW filtering.

use sqip_core::{Processor, SimConfig, SqDesign};
use sqip_isa::{trace_program, ProgramBuilder, Reg};
use sqip_types::DataSize;

fn run(design: SqDesign, trace: &sqip_isa::Trace) -> sqip_core::SimStats {
    Processor::new(SimConfig::with_design(design), trace).run()
}

/// The paper's Figure 3: a load that forwards from one static store,
/// repeatedly. First execution trains the FSP (one flush), later ones
/// forward through the predicted index.
#[test]
fn figure3_train_then_forward() {
    let mut b = ProgramBuilder::new();
    let (ctr, v, w) = (Reg::new(1), Reg::new(2), Reg::new(3));
    b.load_imm(ctr, 300);
    b.load_imm(v, 5);
    let top = b.label("top");
    b.add_imm(v, v, 1); // store Z's data changes every iteration
    b.store(DataSize::Quad, v, Reg::ZERO, 0xB00); // store Z
    b.load(DataSize::Quad, w, Reg::ZERO, 0xB00); // load W
    b.xor(w, w, v);
    b.add_imm(ctr, ctr, -1);
    b.branch_nz(ctr, top);
    b.halt();
    let trace = trace_program(&b.build().unwrap(), 100_000).unwrap();

    let stats = run(SqDesign::Indexed3FwdDly, &trace);
    assert!(
        stats.mis_forwards <= 2,
        "training flushes only, got {}",
        stats.mis_forwards
    );
    assert!(
        stats.loads_forwarded >= 250,
        "steady state forwards via the predicted index, got {}",
        stats.loads_forwarded
    );
}

/// Width rule: a byte load inside a quad store forwards; a quad load over
/// a word store cannot (partial), and must still commit correctly.
#[test]
fn width_rules_respected_end_to_end() {
    let mut b = ProgramBuilder::new();
    let (ctr, v, t) = (Reg::new(1), Reg::new(2), Reg::new(3));
    b.load_imm(ctr, 200);
    b.load_imm(v, 0x1122_3344);
    let top = b.label("top");
    b.store(DataSize::Quad, v, Reg::ZERO, 0xC00);
    b.load(DataSize::Byte, t, Reg::ZERO, 0xC02); // inside: forwards
    b.store(DataSize::Word, v, Reg::ZERO, 0xC10);
    b.load(DataSize::Quad, t, Reg::ZERO, 0xC10); // over: partial
    b.add_imm(ctr, ctr, -1);
    b.branch_nz(ctr, top);
    b.halt();
    let trace = trace_program(&b.build().unwrap(), 100_000).unwrap();

    for design in [SqDesign::Associative3, SqDesign::Indexed3FwdDly] {
        let stats = run(design, &trace);
        assert_eq!(stats.committed, trace.len() as u64, "{design}");
    }
    // The associative design stalls partial hits instead of flushing.
    let assoc = run(SqDesign::Associative3, &trace);
    assert!(assoc.partial_stalls > 50, "got {}", assoc.partial_stalls);
}

/// SVW must filter re-execution: a program with no forwarding at all
/// should re-execute (almost) nothing.
#[test]
fn svw_filters_reexecution_for_independent_loads() {
    let mut b = ProgramBuilder::new();
    let (ctr, t) = (Reg::new(1), Reg::new(3));
    b.load_imm(ctr, 500);
    let top = b.label("top");
    for i in 0..4 {
        b.load(DataSize::Quad, t, Reg::ZERO, 0x5000 + 8 * i);
    }
    b.store(DataSize::Quad, ctr, Reg::ZERO, 0x9123); // offset chosen not to alias the loads in the 2K SSBF
    b.add_imm(ctr, ctr, -1);
    b.branch_nz(ctr, top);
    b.halt();
    let trace = trace_program(&b.build().unwrap(), 100_000).unwrap();

    let stats = run(SqDesign::Indexed3FwdDly, &trace);
    assert_eq!(stats.mis_forwards, 0);
    assert!(
        stats.re_executions * 10 < stats.loads,
        "SVW should filter most re-execution: {} of {}",
        stats.re_executions,
        stats.loads
    );
    assert!(
        stats.re_executions <= stats.naive_reexec_candidates,
        "SVW must filter at least as well as the unknown-address rule"
    );
}

/// A load and store to the same address separated by more than SQ-size
/// stores can never forward; the FSP must not cause persistent delays.
#[test]
fn far_dependences_do_not_forward() {
    let mut b = ProgramBuilder::new();
    let (ctr, v, t) = (Reg::new(1), Reg::new(2), Reg::new(3));
    b.load_imm(ctr, 100);
    b.load_imm(v, 7);
    let top = b.label("top");
    b.load(DataSize::Quad, t, Reg::ZERO, 0xD00); // reads last iteration's
    b.store(DataSize::Quad, v, Reg::ZERO, 0xD00);
    // 80 filler stores push the dependence beyond the 64-entry SQ.
    for i in 0..80 {
        b.store(DataSize::Quad, ctr, Reg::ZERO, 0xE00 + 8 * i);
    }
    b.add_imm(ctr, ctr, -1);
    b.branch_nz(ctr, top);
    b.halt();
    let trace = trace_program(&b.build().unwrap(), 100_000).unwrap();

    let stats = run(SqDesign::Indexed3FwdDly, &trace);
    assert_eq!(stats.committed, trace.len() as u64);
    assert_eq!(stats.loads_forwarded, 0, "distance > SQ can never forward");
    assert_eq!(stats.mis_forwards, 0, "and it must not flush either");
}

/// Silent mis-forwards (wrong store, same value) must not flush: value-
/// based re-execution compares values, not identities.
#[test]
fn silent_violations_do_not_flush() {
    let mut b = ProgramBuilder::new();
    let (ctr, v, t) = (Reg::new(1), Reg::new(2), Reg::new(3));
    b.load_imm(ctr, 200);
    b.load_imm(v, 42); // constant data: every store writes the same value
    let top = b.label("top");
    b.store(DataSize::Quad, v, Reg::ZERO, 0xF00);
    b.load(DataSize::Quad, t, Reg::ZERO, 0xF00);
    b.add_imm(ctr, ctr, -1);
    b.branch_nz(ctr, top);
    b.halt();
    let trace = trace_program(&b.build().unwrap(), 100_000).unwrap();

    let stats = run(SqDesign::Indexed3Fwd, &trace);
    // The very first iteration may flush once (cold memory holds 0, not
    // 42); every later miss is silent because the value already matches.
    assert!(
        stats.mis_forwards <= 1,
        "identical values: re-execution observes no mismatch, got {}",
        stats.mis_forwards
    );
}
