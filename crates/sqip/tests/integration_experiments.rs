//! Miniature end-to-end versions of every experiment the harness
//! regenerates, asserting the paper's qualitative claims hold — each
//! driven through the `Experiment` API.

use sqip::{by_name, shrink, simulate, simulate_with, Experiment, SimConfig, SqDesign};
use sqip_cacti::{sq_energy_pj, table2_sq_rows, SqGeometry, TechParams};
use sqip_predictors::TrainRatio;

/// Table 2: indexed SQ latency beats associative at every size/porting,
/// and the paper's headline 64-entry/2-port comparison holds.
#[test]
fn table2_claims() {
    let tech = TechParams::default();
    for row in table2_sq_rows(&tech) {
        assert!(row.index_2p.0 < row.assoc_2p.0);
    }
    assert!(tech.sq_cycles(SqGeometry::associative(64, 2)) >= 4);
    assert_eq!(tech.sq_cycles(SqGeometry::indexed(64, 2)), 2);
    let saving = 1.0
        - sq_energy_pj(SqGeometry::indexed(64, 2)) / sq_energy_pj(SqGeometry::associative(64, 2));
    assert!(
        (saving - 0.30).abs() < 0.05,
        "~30% energy saving, got {saving:.2}"
    );
}

/// Table 3: delay prediction cuts mis-forwarding by a large factor at a
/// small delayed-load cost (shrunk three-benchmark sample), as one
/// workloads × designs sweep.
#[test]
fn table3_claims() {
    let results = Experiment::new()
        .workloads(["mesa.t", "eon.k", "twolf"].map(|n| shrink(by_name(n).unwrap(), 800)))
        .designs([SqDesign::Indexed3Fwd, SqDesign::Indexed3FwdDly])
        .run()
        .expect("sweep runs");

    let avg = |design: SqDesign, f: &dyn Fn(&sqip::SimStats) -> f64| -> f64 {
        let rows: Vec<f64> = results
            .iter()
            .filter(|r| r.design == design)
            .map(|r| f(&r.stats))
            .collect();
        assert_eq!(rows.len(), 3);
        rows.iter().sum::<f64>() / 3.0
    };
    let fwd_avg = avg(SqDesign::Indexed3Fwd, &|s| s.mis_forwards_per_1000());
    let dly_avg = avg(SqDesign::Indexed3FwdDly, &|s| s.mis_forwards_per_1000());
    assert!(
        fwd_avg > 3.0,
        "pathological sample must mis-forward, got {fwd_avg:.1}"
    );
    assert!(
        dly_avg < fwd_avg / 2.0,
        "delay must cut mis-forwarding substantially: {dly_avg:.2} vs {fwd_avg:.2}"
    );
    assert!(
        results
            .iter()
            .filter(|r| r.design == SqDesign::Indexed3FwdDly)
            .all(|r| r.stats.pct_loads_delayed() < 35.0),
        "delays stay bounded"
    );
}

/// Figure 4: the design ordering on a mixed sample — ideal fastest,
/// indexed-with-delay competitive with the associative designs, raw
/// indexed worst.
#[test]
fn figure4_claims() {
    let results = Experiment::new()
        .workloads(["gzip", "vortex", "gsm.e"].map(|n| shrink(by_name(n).unwrap(), 1500)))
        .designs([
            SqDesign::IdealOracle,
            SqDesign::Associative3,
            SqDesign::Indexed3Fwd,
            SqDesign::Indexed3FwdDly,
        ])
        .run()
        .expect("sweep runs");

    let gmean_rel = |design: SqDesign| -> f64 {
        sqip::geomean(results.workload_names().iter().map(|name| {
            results
                .relative_runtime(name, sqip::BASE_VARIANT, design, SqDesign::IdealOracle)
                .expect("both designs ran")
        }))
    };
    let assoc3 = gmean_rel(SqDesign::Associative3);
    let idx_fwd = gmean_rel(SqDesign::Indexed3Fwd);
    let idx_dly = gmean_rel(SqDesign::Indexed3FwdDly);
    assert!(assoc3 >= 0.99, "oracle is the floor, got {assoc3:.3}");
    assert!(
        idx_fwd > idx_dly,
        "delay prediction must improve raw indexed forwarding ({idx_fwd:.3} vs {idx_dly:.3})"
    );
    assert!(
        idx_dly < assoc3 + 0.06,
        "indexed+delay competitive with associative: {idx_dly:.3} vs {assoc3:.3}"
    );
}

/// Figure 5: a 512-entry FSP/DDP must not beat the default 4K tables on a
/// large-footprint workload, and the 0:1 DDP ratio degenerates to the raw
/// forwarding configuration.
#[test]
fn figure5_claims() {
    let spec = shrink(by_name("vortex").unwrap(), 1500);

    let capacity = [512usize, 4096]
        .into_iter()
        .fold(
            Experiment::new()
                .workload(spec.clone())
                .design(SqDesign::Indexed3FwdDly),
            |e, entries| {
                e.vary(format!("{entries}"), move |cfg| {
                    cfg.fsp.entries = entries;
                    cfg.ddp.entries = entries;
                })
            },
        )
        .run()
        .expect("capacity sweep runs");
    let cycles = |variant: &str| {
        capacity
            .find("vortex", SqDesign::Indexed3FwdDly, variant)
            .expect("cell ran")
            .stats
            .cycles
    };
    assert!(cycles("512") as f64 >= cycles("4096") as f64 * 0.98);

    let mut zero_one = SimConfig::with_design(SqDesign::Indexed3FwdDly);
    zero_one.ddp.ratio = TrainRatio::new(0, 1);
    zero_one.ddp.threshold = 1;
    let degenerate = simulate_with(&spec, zero_one).expect("0:1 config simulates");
    let raw = simulate(&spec, SqDesign::Indexed3Fwd).expect("raw design simulates");
    assert_eq!(
        degenerate.loads_delayed, 0,
        "0:1 never learns delay, matching the raw Fwd configuration"
    );
    assert_eq!(degenerate.mis_forwards, raw.mis_forwards);
}
