//! Golden policy-equivalence coverage: every builtin store-queue design
//! must produce **bit-identical** `SimStats` to the pre-refactor closed
//! `SqDesign` enum dispatch on a representative workload subset.
//!
//! The fixture (`tests/fixtures/golden_designs.json`) was generated from
//! the enum-dispatch implementation immediately before design dispatch
//! moved behind the `ForwardingPolicy` trait; this test pins the policy
//! implementations to it. Regenerate (only when an *intentional* modelling
//! change lands) with:
//!
//! ```text
//! SQIP_UPDATE_GOLDEN=1 cargo test -p sqip --test golden_designs
//! ```

use serde::{Deserialize, Serialize};
use sqip::{
    by_name, simulate_with, Engine, OrderingMode, Processor, SimConfig, SimStats, SqDesign,
};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_designs.json"
);

/// One media, one integer and one pointer-heavy workload, shrunk so the
/// whole matrix stays a few seconds.
const WORKLOADS: [(&str, u32); 3] = [("gzip", 150), ("mesa.t", 150), ("mcf", 120)];

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenCell {
    cell: String,
    stats: SimStats,
}

fn current_cells() -> Vec<GoldenCell> {
    let mut cells = Vec::new();
    for (name, iters) in WORKLOADS {
        let spec = by_name(name)
            .expect("golden workload exists")
            .with_iterations(iters);
        for design in SqDesign::ALL {
            let stats = simulate_with(&spec, SimConfig::with_design(design))
                .expect("golden cell simulates");
            cells.push(GoldenCell {
                cell: format!("{name}/{design}/svw"),
                stats,
            });
        }
    }
    // The LQ-CAM ordering scheme is part of the design-dispatch surface
    // too (victim training differs per design); pin the associative trio.
    let spec = by_name("gzip").unwrap().with_iterations(150);
    for design in [
        SqDesign::IdealOracle,
        SqDesign::Associative3StoreSets,
        SqDesign::Associative3,
    ] {
        let mut cfg = SimConfig::with_design(design);
        cfg.ordering = OrderingMode::LqCam;
        let stats = simulate_with(&spec, cfg).expect("golden cam cell simulates");
        cells.push(GoldenCell {
            cell: format!("gzip/{design}/cam"),
            stats,
        });
    }
    cells
}

/// The golden matrix again, but through the **reference engine** and
/// through **streamed** (`TraceSource`) inputs: neither the engine choice
/// nor the input path may move a single bit of any fixture cell. The
/// fixture bytes themselves are unchanged since the pre-refactor enum
/// dispatch — three generations of rework (policy objects, streaming
/// inputs, the event engine) all pin to the same numbers.
#[test]
fn golden_matrix_is_engine_and_input_path_invariant() {
    if std::env::var("SQIP_UPDATE_GOLDEN").is_ok() {
        return; // regeneration handled by the fixture test below
    }
    let raw = std::fs::read_to_string(FIXTURE)
        .expect("fixture exists (regenerate with SQIP_UPDATE_GOLDEN=1)");
    let golden: Vec<GoldenCell> = serde_json::from_str(&raw).expect("fixture parses");
    let mut idx = 0;
    for (name, iters) in WORKLOADS {
        let spec = by_name(name)
            .expect("golden workload exists")
            .with_iterations(iters);
        for design in SqDesign::ALL {
            let then = &golden[idx];
            assert_eq!(then.cell, format!("{name}/{design}/svw"), "cell order");
            idx += 1;

            let mut cfg = SimConfig::with_design(design);
            cfg.engine = Engine::Reference;
            let reference = simulate_with(&spec, cfg).expect("reference cell simulates");
            assert_eq!(
                reference, then.stats,
                "{}: reference engine diverged from the golden fixture",
                then.cell
            );

            let source = spec.source().expect("golden workload streams");
            let streamed = Processor::try_from_source(SimConfig::with_design(design), source)
                .and_then(Processor::try_run)
                .expect("streamed cell simulates");
            assert_eq!(
                streamed, then.stats,
                "{}: streamed event-engine run diverged from the golden fixture",
                then.cell
            );
        }
    }
}

#[test]
fn builtin_policies_match_pre_refactor_enum_dispatch() {
    let cells = current_cells();
    if std::env::var("SQIP_UPDATE_GOLDEN").is_ok() {
        let json = serde_json::to_string_pretty(&cells).expect("fixture serializes");
        std::fs::write(FIXTURE, json).expect("fixture written");
        eprintln!("golden fixture regenerated: {FIXTURE}");
        return;
    }
    let raw = std::fs::read_to_string(FIXTURE)
        .expect("fixture exists (regenerate with SQIP_UPDATE_GOLDEN=1)");
    let golden: Vec<GoldenCell> = serde_json::from_str(&raw).expect("fixture parses");
    assert_eq!(
        cells.len(),
        golden.len(),
        "golden cell roster changed; regenerate deliberately"
    );
    for (now, then) in cells.iter().zip(&golden) {
        assert_eq!(now.cell, then.cell, "cell order changed");
        assert_eq!(
            now.stats, then.stats,
            "{}: SimStats diverged from the pre-refactor enum dispatch",
            now.cell
        );
    }
}
