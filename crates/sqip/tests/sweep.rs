//! Shared-pass sweep pinning: the [`SweepEngine`]'s lock-step shared
//! pass must be **bit-identical** to the per-cell path — for random
//! programs, every registered design, and any thread count — while
//! pulling each workload's record stream exactly once.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use sqip::{
    oracle_tap, DesignRegistry, Experiment, OrderingMode, Processor, RegisteredWorkload, SimConfig,
    SqDesign, SweepEngine, SweepMode, TraceSource, TraceTee, Workload,
};
use sqip_isa::{Program, ProgramBuilder, ProgramSource, Reg};
use sqip_types::DataSize;

#[derive(Debug, Clone)]
enum Stmt {
    Alu(u8, u8, u8),
    Mul(u8, u8, u8),
    Store(u8, u16, u8),
    Load(u8, u16, u8),
    Fp(u8, u8),
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let reg = 1u8..20;
    prop_oneof![
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(a, b, c)| Stmt::Alu(a, b, c)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(a, b, c)| Stmt::Mul(a, b, c)),
        (reg.clone(), 0u16..24, 0u8..4).prop_map(|(d, s, z)| Stmt::Store(d, s, z)),
        (reg.clone(), 0u16..24, 0u8..4).prop_map(|(d, s, z)| Stmt::Load(d, s, z)),
        (reg.clone(), reg).prop_map(|(a, b)| Stmt::Fp(a, b)),
    ]
}

fn build_program(body: &[Stmt], iters: i64) -> Program {
    let sizes = [
        DataSize::Byte,
        DataSize::Half,
        DataSize::Word,
        DataSize::Quad,
    ];
    let mut b = ProgramBuilder::new();
    let ctr = Reg::new(62);
    b.load_imm(ctr, iters);
    for r in 1..20 {
        b.load_imm(Reg::new(r), i64::from(r) * 77 + 1);
    }
    let top = b.label("top");
    for s in body {
        match *s {
            Stmt::Alu(a, x, y) => {
                b.xor(Reg::new(a), Reg::new(x), Reg::new(y));
            }
            Stmt::Mul(a, x, y) => {
                b.mul(Reg::new(a), Reg::new(x), Reg::new(y));
            }
            Stmt::Store(d, slot, z) => {
                b.store(
                    sizes[z as usize],
                    Reg::new(d),
                    Reg::ZERO,
                    0x400 + 8 * i64::from(slot),
                );
            }
            Stmt::Load(d, slot, z) => {
                b.load(
                    sizes[z as usize],
                    Reg::new(d),
                    Reg::ZERO,
                    0x400 + 8 * i64::from(slot),
                );
            }
            Stmt::Fp(a, x) => {
                b.fmul(Reg::new(a), Reg::new(a), Reg::new(x));
            }
        }
    }
    b.add_imm(ctr, ctr, -1);
    b.branch_nz(ctr, top);
    b.halt();
    b.build().unwrap()
}

fn program_workload(name: &str, program: Program, budget: u64) -> Workload {
    Workload::from(RegisteredWorkload::from_factory(
        name,
        "sweep-proptest program",
        move || Ok(Box::new(ProgramSource::new(program.clone(), budget)) as Box<_>),
    ))
}

fn all_designs() -> Vec<SqDesign> {
    DesignRegistry::global()
        .names()
        .iter()
        .map(|n| n.parse().expect("registered design name parses"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// The acceptance pin: shared-pass `ResultSet` ≡ per-cell `ResultSet`,
    /// bit for bit, across random programs × every registered design (all
    /// 8) × random thread counts — including the serialized bytes.
    #[test]
    fn shared_pass_sweep_is_bit_identical_to_per_cell(
        body_a in proptest::collection::vec(stmt_strategy(), 1..14),
        body_b in proptest::collection::vec(stmt_strategy(), 1..14),
        iters in 3i64..40,
        threads in 1usize..5,
    ) {
        let experiment = Experiment::new()
            .workload(program_workload("sweep-prop-a", build_program(&body_a, iters), 1_000_000))
            .workload(program_workload("sweep-prop-b", build_program(&body_b, iters), 1_000_000))
            .designs(all_designs())
            .threads(threads);

        let per_cell = experiment.run_per_cell().expect("per-cell sweep runs");
        let shared = SweepEngine::new()
            .threads(threads)
            .run(&experiment)
            .expect("shared-pass sweep runs");
        prop_assert_eq!(&shared, &per_cell, "stats diverge (threads={})", threads);
        prop_assert_eq!(shared.to_json(), per_cell.to_json(), "serialized bytes diverge");

        // And the default entry point (`Experiment::run`) is the shared
        // path, also pinned.
        let default_run = experiment.run().expect("default run");
        prop_assert_eq!(&default_run, &per_cell);
    }
}

/// A `TraceSource` that counts upstream pulls, so a test can prove the
/// tee pulled the generator exactly once however consumers squash.
struct CountingSource {
    inner: ProgramSource,
    pulls: Arc<AtomicU64>,
}

impl TraceSource for CountingSource {
    fn next_record(&mut self) -> Result<Option<sqip_isa::TraceRecord>, sqip_isa::IsaError> {
        let rec = self.inner.next_record()?;
        if rec.is_some() {
            self.pulls.fetch_add(1, Ordering::Relaxed);
        }
        Ok(rec)
    }
}

/// A program whose stores are data-delayed behind a multiply chain while
/// a younger load reads the same address: under the conventional LQ-CAM
/// ordering the load executes early, the store's execution catches it,
/// and the pipeline squashes from the load — which then **re-fetches**.
fn squashy_program(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let (ctr, data, probe) = (Reg::new(60), Reg::new(1), Reg::new(2));
    b.load_imm(ctr, iters);
    b.load_imm(data, 3);
    let top = b.label("top");
    // Delay the store's data far past the load's issue.
    for _ in 0..6 {
        b.mul(data, data, data);
    }
    b.store(DataSize::Quad, data, Reg::ZERO, 0x100);
    b.load(DataSize::Quad, probe, Reg::ZERO, 0x100);
    b.add_imm(ctr, ctr, -1);
    b.branch_nz(ctr, top);
    b.halt();
    b.build().unwrap()
}

/// Squash re-fetches replay records whose positions straddle the event
/// engine's fetch-block edges (the block-pull tentpole's nastiest
/// corner): both sweep modes must stay bit-identical through them, for
/// every registered design.
#[test]
fn squash_straddling_fetch_block_edges_is_mode_invariant() {
    // ~11 records per iteration: 100 iterations crosses many
    // FETCH_BLOCK-record fetch edges while forwarding squashes are in
    // flight on the mispredicting designs.
    let experiment = Experiment::new()
        .workload(program_workload(
            "squashy-block-edges",
            squashy_program(100),
            1_000_000,
        ))
        .designs(all_designs())
        .threads(1);
    let shared = experiment.run().expect("shared sweep runs");
    let per_cell = experiment.run_per_cell().expect("per-cell sweep runs");
    assert_eq!(shared, per_cell, "squash across block edges diverged");
}

/// Exactly-once delivery under squash/re-fetch: squashed consumers replay
/// records out of their own windows, never re-pulling through the tee —
/// the upstream pull count equals the stream length exactly, and the
/// shared-pass stats still match a per-cell run of the same cell.
#[test]
fn squashing_consumers_do_not_repull_the_shared_stream() {
    let budget = 100_000u64;
    let mut cam = SimConfig::with_design(SqDesign::Associative3);
    cam.ordering = OrderingMode::LqCam;
    let cfgs = [cam.clone(), SimConfig::with_design(SqDesign::IdealOracle)];

    // Reference: each cell on its own pass.
    let solo: Vec<_> = cfgs
        .iter()
        .map(|cfg| {
            Processor::try_from_source(cfg.clone(), ProgramSource::new(squashy_program(40), budget))
                .unwrap()
                .try_run()
                .unwrap()
        })
        .collect();
    assert!(solo[0].flushes > 0, "the CAM cell must actually squash");
    let len = solo[0].committed;

    // Shared pass over a counting upstream.
    let pulls = Arc::new(AtomicU64::new(0));
    let counting = CountingSource {
        inner: ProgramSource::new(squashy_program(40), budget),
        pulls: Arc::clone(&pulls),
    };
    let (tap, feed) = oracle_tap(counting, 512);
    let (tee, cursors) = TraceTee::new(tap, 2, 512);
    let mut procs: Vec<_> = cursors
        .into_iter()
        .zip(&cfgs)
        .map(|(cursor, cfg)| {
            Some(Processor::try_from_shared(cfg.clone(), cursor, feed.clone()).unwrap())
        })
        .collect();
    // A deliberately tiny lock-step quantum, to interleave squashes with
    // the other consumer's progress as unfavourably as possible.
    let mut stats: [Option<sqip::SimStats>; 2] = [None, None];
    while stats.iter().any(Option::is_none) {
        for (i, slot) in procs.iter_mut().enumerate() {
            let Some(p) = slot.as_mut() else { continue };
            let may_pull = !(tee.is_done() && tee.position(i) == tee.pulled());
            if may_pull && tee.position(i) + 8 > tee.base() + tee.capacity() as u64 {
                continue;
            }
            for _ in 0..16 {
                match p.step().expect("lock-step cell steps") {
                    sqip::StepOutcome::Running => {}
                    sqip::StepOutcome::Done => {
                        stats[i] = Some(p.stats().clone());
                        *slot = None;
                        break;
                    }
                }
            }
        }
    }

    assert_eq!(stats[0].as_ref().unwrap(), &solo[0], "CAM cell diverged");
    assert_eq!(stats[1].as_ref().unwrap(), &solo[1], "oracle cell diverged");
    assert_eq!(
        pulls.load(Ordering::Relaxed),
        len,
        "squash re-fetches must replay from consumer windows, not the tee"
    );
    assert_eq!(tee.pulled(), len);
}

/// Sweep telemetry reports the shared-ring high-water mark and per-cell
/// buffering separately, and both stay within their structural bounds
/// (the PR 3 memory-boundedness story, extended to shared passes).
#[test]
fn sweep_telemetry_reports_bounded_buffering() {
    let experiment = Experiment::new()
        .workload(Workload::from_registry("mix:0xabc:60k").unwrap())
        .designs([
            SqDesign::IdealOracle,
            SqDesign::Associative3,
            SqDesign::Indexed3FwdDly,
        ])
        .threads(1);
    let (results, telemetry) = SweepEngine::new()
        .threads(1)
        .run_with_telemetry(&experiment)
        .unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(telemetry.groups.len(), 1, "one workload, one group");
    let group = &telemetry.groups[0];
    assert_eq!(group.cells.len(), 3);
    assert!(group.records_pulled > 0);
    assert!(group.ring_high_water > 0);

    // Each cell's own window obeys the PR 3 bound; the shared ring obeys
    // its capacity. The two observables are reported separately. The
    // event engine's batched fetch front may run up to one fetch block
    // ahead of the scalar frontier, hence the FETCH_BLOCK slack term.
    let cfg = SimConfig::with_design(SqDesign::IdealOracle);
    let window_bound =
        (cfg.rob_size + 5 * cfg.fetch_width) as u64 + sqip_core::engine::FETCH_BLOCK as u64;
    for (&peak, lag) in group.peak_buffered.iter().zip(&group.peak_lag) {
        assert!(peak > 0 && peak <= window_bound, "peak {peak}");
        assert!(*lag <= group.records_pulled);
    }
}

/// `SweepMode::PerCell` is available explicitly, and observed
/// experiments stay on the shared pass (the PR 5 fallback is gone);
/// both match the shared results bit for bit.
#[test]
fn per_cell_mode_and_observed_runs_match_shared_results() {
    let experiment = Experiment::new()
        .workload(Workload::from_registry("chase:128:64:20k").unwrap())
        .designs([SqDesign::IdealOracle, SqDesign::Indexed3FwdDly])
        .threads(2);
    let shared = experiment.run().unwrap();
    let per_cell = SweepEngine::new()
        .mode(SweepMode::PerCell)
        .threads(2)
        .run(&experiment)
        .unwrap();
    assert_eq!(shared, per_cell);

    struct Noop;
    impl sqip::SimObserver for Noop {}
    let observed = experiment
        .clone()
        .observe(|_| Box::new(Noop))
        .run()
        .unwrap();
    assert_eq!(observed, shared);
}
