//! Cross-crate integration tests: whole-pipeline behaviour of the
//! simulator on handcrafted programs, across every store-queue design.

use sqip_core::{Processor, SimConfig, SqDesign};
use sqip_isa::{trace_program, ProgramBuilder, Reg};
use sqip_types::DataSize;

/// A mixed program exercising ALU, FP, branches, calls and memory.
fn mixed_program(iters: i64) -> sqip_isa::Trace {
    let mut b = ProgramBuilder::new();
    let (ctr, a, f, link, t) = (
        Reg::new(1),
        Reg::new(2),
        Reg::new(3),
        Reg::new(30),
        Reg::new(4),
    );
    b.load_imm(ctr, iters);
    b.load_imm(a, 1);
    b.load_imm(f, 99);
    b.jump_to("main");
    // A small callee that spills/reloads its argument.
    b.place("callee");
    b.store(DataSize::Quad, a, Reg::ZERO, 0x200);
    b.load(DataSize::Quad, t, Reg::ZERO, 0x200);
    b.add(a, a, t);
    b.ret(link);
    b.place("main");
    let top = b.label("top");
    b.fmul(f, f, f);
    b.call_to(link, "callee");
    b.store(DataSize::Word, a, Reg::ZERO, 0x300);
    b.load(DataSize::Half, t, Reg::ZERO, 0x302);
    b.xor(a, a, t);
    b.add_imm(ctr, ctr, -1);
    b.branch_nz(ctr, top);
    b.halt();
    trace_program(&b.build().unwrap(), 1_000_000).unwrap()
}

#[test]
fn every_design_commits_the_whole_mixed_trace() {
    let trace = mixed_program(400);
    for design in SqDesign::ALL {
        let stats = Processor::new(SimConfig::with_design(design), &trace).run();
        assert_eq!(stats.committed, trace.len() as u64, "{design}");
        assert_eq!(
            stats.loads + stats.stores,
            trace.dynamic_loads() + trace.dynamic_stores(),
            "{design}: memory op accounting"
        );
    }
}

#[test]
fn oracle_is_never_slower_than_speculative_designs() {
    let trace = mixed_program(600);
    let baseline = Processor::new(SimConfig::with_design(SqDesign::IdealOracle), &trace)
        .run()
        .cycles;
    for design in [
        SqDesign::Indexed3Fwd,
        SqDesign::Indexed3FwdDly,
        SqDesign::Associative3,
    ] {
        let cycles = Processor::new(SimConfig::with_design(design), &trace)
            .run()
            .cycles;
        // Small slack: predictor warmup noise on a short trace.
        assert!(
            cycles as f64 >= baseline as f64 * 0.98,
            "{design}: {cycles} vs oracle {baseline}"
        );
    }
}

#[test]
fn calls_and_returns_use_the_ras() {
    let trace = mixed_program(300);
    let stats = Processor::new(SimConfig::with_design(SqDesign::Indexed3FwdDly), &trace).run();
    // The RAS is pushed speculatively at fetch and is not repaired on
    // mis-forwarding flushes (like many real designs), so a handful of
    // post-flush returns may mispredict; well-nested call/ret must
    // otherwise be fully predicted.
    assert!(
        stats.return_mispredicts <= 5,
        "RAS should predict nearly all returns, got {} mispredicts",
        stats.return_mispredicts
    );
}

#[test]
fn ssn_wrap_drain_preserves_correctness_in_integration() {
    let trace = mixed_program(500);
    let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
    cfg.ssn_bits = 8; // force wraps every 256 stores
    let stats = Processor::new(cfg, &trace).run();
    assert_eq!(stats.committed, trace.len() as u64);
    assert!(stats.ssn_wraps >= 3, "got {}", stats.ssn_wraps);
}

#[test]
fn narrower_machine_is_slower_on_parallel_work() {
    // The mixed program is latency-bound; width only shows on ILP-rich
    // code, so use a block of independent ALU ops per iteration.
    let mut b = ProgramBuilder::new();
    let ctr = Reg::new(1);
    b.load_imm(ctr, 500);
    let top = b.label("top");
    for i in 0..12 {
        b.add_imm(Reg::new(10 + i), ctr, i64::from(i));
    }
    b.add_imm(ctr, ctr, -1);
    b.branch_nz(ctr, top);
    b.halt();
    let trace = trace_program(&b.build().unwrap(), 100_000).unwrap();

    let wide = Processor::new(SimConfig::with_design(SqDesign::Indexed3FwdDly), &trace).run();
    let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
    cfg.rename_width = 2;
    cfg.commit_width = 2;
    cfg.issue.total = 2;
    let narrow = Processor::new(cfg, &trace).run();
    assert!(
        narrow.cycles > wide.cycles * 2,
        "2-wide {} vs 8-wide {}",
        narrow.cycles,
        wide.cycles
    );
}

#[test]
fn tiny_structures_still_complete() {
    let trace = mixed_program(200);
    let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
    cfg.rob_size = 16;
    cfg.iq_size = 8;
    cfg.lq_size = 4;
    cfg.sq_size = 4;
    cfg.ddp.max_distance = 4;
    let stats = Processor::new(cfg, &trace).run();
    assert_eq!(stats.committed, trace.len() as u64);
}
