//! The versioned `ExperimentSpec` wire schema: canonical round-trips,
//! registry-name resolution, and strict rejection of anything the schema
//! does not know (unknown fields, unknown names, unknown knobs, foreign
//! versions).

use sqip::{DesignRegistry, ExperimentSpec, SqipError, WorkloadRegistry, SPEC_VERSION};

const CANONICAL: &str = r#"{"version":1,"workloads":["mix:0xfeed:20k","gzip"],"designs":["ideal-oracle","indexed-3-fwd+dly"],"variants":[{"name":"small-fsp","set":{"fsp_entries":512}}]}"#;

#[test]
fn canonical_json_round_trips_byte_identically() {
    let spec = ExperimentSpec::from_json(CANONICAL).unwrap();
    assert_eq!(spec.to_json(), CANONICAL);
    // And the pretty form parses back to the same spec.
    assert_eq!(
        ExperimentSpec::from_json(&spec.to_json_pretty()).unwrap(),
        spec
    );
    // A spec built through the API serializes to the same canonical form.
    let built = ExperimentSpec::new(
        ["mix:0xfeed:20k", "gzip"],
        ["ideal-oracle", "indexed-3-fwd+dly"],
    )
    .variant("small-fsp", vec![("fsp_entries".to_string(), 512)]);
    assert_eq!(built.to_json(), CANONICAL);
}

#[test]
fn variants_field_is_optional_and_canonicalized() {
    let spec = ExperimentSpec::from_json(
        r#"{"version":1,"workloads":["gzip"],"designs":["ideal-oracle"]}"#,
    )
    .unwrap();
    assert!(spec.variants.is_empty());
    // `to_json` always emits the field: one canonical form.
    assert_eq!(
        spec.to_json(),
        r#"{"version":1,"workloads":["gzip"],"designs":["ideal-oracle"],"variants":[]}"#
    );
}

#[test]
fn to_experiment_resolves_every_registry_name() {
    // Every registered workload name and every registered design name is
    // accepted — the spec surface covers the full registries.
    let workloads: Vec<String> = WorkloadRegistry::global()
        .names()
        .iter()
        .take(6)
        .map(|n| n.to_string())
        .collect();
    let designs: Vec<String> = DesignRegistry::global()
        .names()
        .iter()
        .map(|n| n.to_string())
        .collect();
    let n_cells = workloads.len() * designs.len();
    let spec = ExperimentSpec::new(workloads, designs);
    let experiment = spec.to_experiment().unwrap();
    assert_eq!(experiment.cells().unwrap().len(), n_cells);
}

#[test]
fn variant_knobs_reach_the_cell_configs() {
    let spec = ExperimentSpec::new(["mix:1:10k"], ["indexed-3-fwd+dly"]).variant(
        "tiny",
        vec![
            ("fsp_entries".to_string(), 512),
            ("sq_size".to_string(), 32),
        ],
    );
    let cells = spec.to_experiment().unwrap().cells().unwrap();
    assert_eq!(cells.len(), 1);
    assert_eq!(cells[0].config.fsp.entries, 512);
    assert_eq!(cells[0].config.sq_size, 32);
    // The coupled invariant: sq_size drags ddp.max_distance along, so the
    // cell still validates.
    assert_eq!(cells[0].config.ddp.max_distance, 32);
}

#[test]
fn unknown_fields_are_rejected_at_parse_time() {
    let err = ExperimentSpec::from_json(
        r#"{"version":1,"workloads":["gzip"],"designs":["ideal-oracle"],"bogus":1}"#,
    )
    .unwrap_err();
    assert!(matches!(err, SqipError::Parse(_)), "{err}");
    assert!(err.to_string().contains("unknown field `bogus`"), "{err}");

    let err = ExperimentSpec::from_json(
        r#"{"version":1,"workloads":["gzip"],"designs":["ideal-oracle"],"variants":[{"name":"v","extra":true}]}"#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("unknown field `extra`"), "{err}");
}

#[test]
fn unknown_names_and_knobs_error_with_context() {
    let spec = ExperimentSpec::new(["no-such-workload"], ["ideal-oracle"]);
    let err = spec.to_experiment().unwrap_err();
    assert!(matches!(err, SqipError::UnknownWorkload(_)), "{err}");

    let spec = ExperimentSpec::new(["gzip"], ["no-such-design"]);
    let err = spec.to_experiment().unwrap_err();
    assert!(matches!(err, SqipError::UnknownDesign(_)), "{err}");
    assert!(err.to_string().contains("no-such-design"), "{err}");

    let spec = ExperimentSpec::new(["gzip"], ["ideal-oracle"])
        .variant("v", vec![("warp_factor".to_string(), 9)]);
    let err = spec.to_experiment().unwrap_err();
    assert!(matches!(err, SqipError::Config(_)), "{err}");
    assert!(
        err.to_string().contains("unknown knob `warp_factor`"),
        "{err}"
    );
}

#[test]
fn foreign_versions_are_rejected() {
    let spec = ExperimentSpec {
        version: SPEC_VERSION + 1,
        ..ExperimentSpec::new(["gzip"], ["ideal-oracle"])
    };
    let err = spec.to_experiment().unwrap_err();
    assert!(
        err.to_string().contains("unsupported spec version"),
        "{err}"
    );
}

#[test]
fn specs_run_end_to_end() {
    let spec = ExperimentSpec::new(["mix:0xfeed:10k"], ["ideal-oracle", "indexed-3-fwd+dly"]);
    let results = spec.to_experiment().unwrap().run().unwrap();
    assert_eq!(results.len(), 2);
    assert!(results.records().iter().all(|r| r.stats.committed > 0));
}
