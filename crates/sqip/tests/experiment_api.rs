//! Tests for the Experiment driver API: sweep shape, parallel/serial
//! determinism, observer hooks, the resumable step core, and result
//! serialization.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sqip::{
    by_name, shrink, Experiment, ObserverAction, Processor, SimConfig, SimObserver, SimStats,
    SqDesign, SqipError, StepOutcome, Workload,
};

fn small_experiment() -> Experiment {
    Experiment::new()
        .workloads(["gzip", "mesa.t"].map(|n| shrink(by_name(n).unwrap(), 150)))
        .designs([SqDesign::IdealOracle, SqDesign::Indexed3FwdDly])
}

#[test]
fn cells_enumerate_the_cartesian_product_in_order() {
    let cells = small_experiment()
        .vary("a", |_| {})
        .vary("b", |cfg| cfg.fsp.entries = 512)
        .cells()
        .expect("well-formed experiment");
    assert_eq!(cells.len(), 2 * 2 * 2);
    let labels: Vec<String> = cells.iter().map(sqip::Run::label).collect();
    assert_eq!(labels[0], "gzip/ideal-oracle/a");
    assert_eq!(labels[1], "gzip/ideal-oracle/b");
    assert_eq!(labels[2], "gzip/indexed-3-fwd+dly/a");
    assert_eq!(labels[7], "mesa.t/indexed-3-fwd+dly/b");
    // Variant mutations are baked into the cell configs.
    assert_eq!(cells[1].config.fsp.entries, 512);
    assert_eq!(cells[0].config.fsp.entries, 4096);
}

#[test]
fn malformed_experiments_are_rejected() {
    let no_workloads = Experiment::new().design(SqDesign::IdealOracle).run();
    assert!(matches!(no_workloads, Err(SqipError::Config(_))));
    let no_designs = Experiment::new().workload(by_name("gzip").unwrap()).run();
    assert!(matches!(no_designs, Err(SqipError::Config(_))));
    // An invalid cell config is caught at cell-resolution time, tagged
    // with the failing cell.
    let bad = small_experiment()
        .vary("bad-sq", |cfg| cfg.sq_size = 32)
        .run();
    match bad {
        Err(SqipError::Sim { cell, .. }) => assert!(cell.contains("bad-sq"), "{cell}"),
        other => panic!("expected a tagged Sim error, got {other:?}"),
    }
    // Traces are shared by workload name, so duplicate names would
    // silently alias two different workloads — rejected instead.
    let duplicate = Experiment::new()
        .workload(shrink(by_name("gzip").unwrap(), 100))
        .workload(by_name("gzip").unwrap())
        .design(SqDesign::IdealOracle)
        .run();
    match duplicate {
        Err(SqipError::Config(msg)) => assert!(msg.contains("duplicate"), "{msg}"),
        other => panic!("expected a duplicate-name Config error, got {other:?}"),
    }
}

/// The headline determinism guarantee: a parallel sweep returns
/// bit-identical `SimStats` to a serial sweep, in the same order.
#[test]
fn parallel_and_serial_sweeps_are_bit_identical() {
    let experiment = small_experiment()
        .vary("base", |_| {})
        .vary("small-fsp", |cfg| {
            cfg.fsp.entries = 512;
        });
    let serial = experiment.run_serial().expect("serial sweep runs");
    for threads in [2, 4, 7] {
        let parallel = experiment
            .clone()
            .threads(threads)
            .run()
            .expect("parallel sweep runs");
        assert_eq!(parallel, serial, "threads={threads}");
    }
    // Also via the auto-threaded entry point.
    let auto = experiment.run().expect("auto-threaded sweep runs");
    assert_eq!(auto, serial);
}

#[derive(Default)]
struct Counts {
    starts: AtomicU64,
    intervals: AtomicU64,
    finishes: AtomicU64,
}

struct CountingObserver {
    counts: Arc<Counts>,
    interval: u64,
}

impl SimObserver for CountingObserver {
    fn interval(&self) -> u64 {
        self.interval
    }
    fn on_start(&mut self, _cfg: &SimConfig, _trace_len: Option<usize>) {
        self.counts.starts.fetch_add(1, Ordering::Relaxed);
    }
    fn on_interval(&mut self, _cycle: u64, _stats: &SimStats) -> ObserverAction {
        self.counts.intervals.fetch_add(1, Ordering::Relaxed);
        ObserverAction::Continue
    }
    fn on_finish(&mut self, _stats: &SimStats) {
        self.counts.finishes.fetch_add(1, Ordering::Relaxed);
    }
}

/// Observer callbacks fire a predictable number of times: one start and
/// one finish per cell, and one interval callback per `interval` cycles.
#[test]
fn observer_callbacks_fire_the_expected_number_of_times() {
    let counts = Arc::new(Counts::default());
    let interval = 500;
    let factory_counts = Arc::clone(&counts);
    let results = small_experiment()
        .observe(move |_run| {
            Box::new(CountingObserver {
                counts: Arc::clone(&factory_counts),
                interval,
            })
        })
        .run()
        .expect("observed sweep runs");

    let cells = results.len() as u64;
    assert_eq!(cells, 4);
    assert_eq!(counts.starts.load(Ordering::Relaxed), cells);
    assert_eq!(counts.finishes.load(Ordering::Relaxed), cells);
    // One interval callback per completed `interval` cycles, except at
    // the final cycle (the run ends before the callback would fire).
    let expected: u64 = results
        .iter()
        .map(|r| (r.stats.cycles - 1) / interval)
        .sum();
    assert_eq!(counts.intervals.load(Ordering::Relaxed), expected);
}

struct AbortAfterFirstInterval;

impl SimObserver for AbortAfterFirstInterval {
    fn interval(&self) -> u64 {
        200
    }
    fn on_interval(&mut self, _cycle: u64, _stats: &SimStats) -> ObserverAction {
        ObserverAction::Abort
    }
}

#[test]
fn observers_can_abort_runs_early() {
    let results = Experiment::new()
        .workload(shrink(by_name("gzip").unwrap(), 500))
        .design(SqDesign::Indexed3FwdDly)
        .observe(|_| Box::new(AbortAfterFirstInterval))
        .run()
        .expect("aborted sweep still returns partial stats");
    let record = &results.records()[0];
    assert_eq!(record.stats.cycles, 200, "stopped at the first interval");
    let full = sqip::simulate(
        &shrink(by_name("gzip").unwrap(), 500),
        SqDesign::Indexed3FwdDly,
    )
    .expect("full run");
    assert!(
        record.stats.committed < full.committed,
        "abort left the trace unfinished"
    );
}

/// The resumable core: stepping a processor by hand (with arbitrary
/// `run_until` breakpoints) reaches the same final statistics as a
/// one-shot run.
#[test]
fn stepped_execution_matches_one_shot_execution() {
    let spec = shrink(by_name("gzip").unwrap(), 100);
    let trace = spec.trace().expect("workload traces");
    let config = SimConfig::with_design(SqDesign::Indexed3FwdDly);

    let one_shot = Processor::try_new(config.clone(), &trace)
        .and_then(Processor::try_run)
        .expect("one-shot run");

    let mut stepped = Processor::try_new(config, &trace).expect("valid config");
    // Advance in ragged chunks to exercise mid-run pauses.
    let mut limit = 13;
    while stepped.run_until(limit).expect("no deadlock") == StepOutcome::Running {
        assert!(stepped.cycle() <= limit);
        // Mid-run statistics are live: totals are folded in every step.
        assert_eq!(stepped.stats().cycles, stepped.cycle());
        limit = limit * 2 + 7;
    }
    assert!(stepped.is_done());
    assert_eq!(stepped.stats(), &one_shot);
    // Stepping past completion is a no-op.
    assert_eq!(stepped.step().expect("no deadlock"), StepOutcome::Done);
    assert_eq!(stepped.stats(), &one_shot);
}

/// Custom traces drive through the same sweep machinery as Table 3
/// models, and share one trace across designs.
#[test]
fn custom_traces_sweep_like_workloads() {
    let trace = shrink(by_name("gzip").unwrap(), 100)
        .trace()
        .expect("traces");
    let results = Experiment::new()
        .workload(Workload::from_trace("custom-gzip", trace))
        .designs([SqDesign::IdealOracle, SqDesign::Indexed3FwdDly])
        .run()
        .expect("custom-trace sweep runs");
    assert_eq!(results.len(), 2);
    assert_eq!(results.records()[0].workload, "custom-gzip");
    assert_eq!(results.records()[0].suite, None);
    assert!(results.records()[1].stats.committed > 0);
}

/// Sweep results survive a JSON round trip and render as CSV.
#[test]
fn sweep_results_serialize_and_round_trip() {
    let results = small_experiment().run().expect("sweep runs");
    let back = sqip::ResultSet::from_json(&results.to_json()).expect("round trip");
    assert_eq!(back, results);
    let csv = results.to_csv();
    assert_eq!(csv.lines().count(), 1 + results.len());
    assert!(csv
        .lines()
        .nth(1)
        .unwrap()
        .starts_with("gzip,Int,ideal-oracle,base,"));
}
