//! Cooperative cancellation and incremental row streaming: a cancelled
//! sweep stops within one ring window and leaks no tee cursors; streamed
//! per-cell rows arrive in completion order and concatenate into the
//! batch `ResultSet` bytes exactly.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sqip::{
    CancelToken, CellEvent, Experiment, ObserverAction, RegisteredWorkload, ResultSet, SimStats,
    SqDesign, SqipError, SweepEngine, SweepMode, TraceSource, Workload,
};
use sqip_isa::{ProgramBuilder, ProgramSource, Reg};
use sqip_types::DataSize;

/// A long-running streaming workload whose upstream pulls are counted and
/// whose drop is observable — the probe for "stops promptly, leaks
/// nothing".
struct ProbeSource {
    inner: ProgramSource,
    pulls: Arc<AtomicU64>,
    dropped: Arc<AtomicBool>,
}

impl TraceSource for ProbeSource {
    fn next_record(&mut self) -> Result<Option<sqip_isa::TraceRecord>, sqip_isa::IsaError> {
        let rec = self.inner.next_record()?;
        if rec.is_some() {
            self.pulls.fetch_add(1, Ordering::Relaxed);
        }
        Ok(rec)
    }
}

impl Drop for ProbeSource {
    fn drop(&mut self) {
        self.dropped.store(true, Ordering::Relaxed);
    }
}

fn probe_workload(
    name: &str,
    budget: u64,
    pulls: Arc<AtomicU64>,
    dropped: Arc<AtomicBool>,
) -> Workload {
    let mut b = ProgramBuilder::new();
    let ctr = Reg::new(60);
    b.load_imm(ctr, i64::MAX);
    let top = b.label("top");
    b.store(DataSize::Quad, ctr, Reg::ZERO, 0x100);
    b.load(DataSize::Quad, Reg::new(2), Reg::ZERO, 0x100);
    b.add_imm(ctr, ctr, -1);
    b.branch_nz(ctr, top);
    b.halt();
    let program = b.build().unwrap();
    Workload::from(RegisteredWorkload::from_factory(
        name,
        "cancellation probe",
        move || {
            Ok(Box::new(ProbeSource {
                inner: ProgramSource::new(program.clone(), budget),
                pulls: Arc::clone(&pulls),
                dropped: Arc::clone(&dropped),
            }) as Box<_>)
        },
    ))
}

/// A sweep whose token is already cancelled stops within one ring window
/// — the shared pass pulls at most the initial fill — and the upstream
/// source (with every tee cursor above it) is dropped.
#[test]
fn pre_cancelled_sweep_stops_within_one_ring_window() {
    let pulls = Arc::new(AtomicU64::new(0));
    let dropped = Arc::new(AtomicBool::new(false));
    let budget = 50_000_000u64; // far beyond a ring window
    let experiment = Experiment::new()
        .workload(probe_workload(
            "cancel-pre",
            budget,
            Arc::clone(&pulls),
            Arc::clone(&dropped),
        ))
        .designs([SqDesign::IdealOracle, SqDesign::Indexed3FwdDly])
        .threads(1);

    let token = CancelToken::new();
    token.cancel();
    let err = SweepEngine::new()
        .threads(1)
        .cancel_token(token)
        .run(&experiment)
        .unwrap_err();
    assert!(matches!(err, SqipError::Cancelled { .. }), "{err}");

    let pulled = pulls.load(Ordering::Relaxed);
    assert!(
        pulled <= SweepEngine::RING_CAPACITY as u64,
        "pre-cancelled sweep pulled {pulled} records (> one ring window)"
    );
    assert!(
        dropped.load(Ordering::Relaxed),
        "upstream source leaked: tee cursors were not dropped"
    );
}

/// Cancelling mid-run (from an observer callback, i.e. from inside the
/// lock-step loop) stops the sweep within one ring window of the cancel
/// point and drops the shared pass.
#[test]
fn mid_run_cancel_stops_within_one_ring_window() {
    let pulls = Arc::new(AtomicU64::new(0));
    let dropped = Arc::new(AtomicBool::new(false));
    let budget = 50_000_000u64;
    let token = CancelToken::new();
    let pulls_at_cancel = Arc::new(AtomicU64::new(0));

    struct CancelAt {
        token: CancelToken,
        pulls: Arc<AtomicU64>,
        pulls_at_cancel: Arc<AtomicU64>,
    }
    impl sqip::SimObserver for CancelAt {
        fn interval(&self) -> u64 {
            5_000
        }
        fn on_interval(&mut self, _cycle: u64, _stats: &SimStats) -> ObserverAction {
            self.pulls_at_cancel
                .store(self.pulls.load(Ordering::Relaxed), Ordering::Relaxed);
            self.token.cancel();
            ObserverAction::Continue
        }
    }

    let experiment = Experiment::new()
        .workload(probe_workload(
            "cancel-mid",
            budget,
            Arc::clone(&pulls),
            Arc::clone(&dropped),
        ))
        .designs([SqDesign::IdealOracle, SqDesign::Indexed3FwdDly])
        .threads(1)
        .observe({
            let token = token.clone();
            let pulls = Arc::clone(&pulls);
            let pulls_at_cancel = Arc::clone(&pulls_at_cancel);
            move |_| {
                Box::new(CancelAt {
                    token: token.clone(),
                    pulls: Arc::clone(&pulls),
                    pulls_at_cancel: Arc::clone(&pulls_at_cancel),
                })
            }
        });

    let err = SweepEngine::new()
        .threads(1)
        .cancel_token(token)
        .run(&experiment)
        .unwrap_err();
    assert!(matches!(err, SqipError::Cancelled { .. }), "{err}");

    let total = pulls.load(Ordering::Relaxed);
    let at_cancel = pulls_at_cancel.load(Ordering::Relaxed);
    assert!(at_cancel > 0, "the observer never fired");
    assert!(
        total <= at_cancel + SweepEngine::RING_CAPACITY as u64,
        "sweep ran on after cancel: {total} pulls vs {at_cancel} at cancel"
    );
    assert!(total < budget, "sweep consumed the whole stream anyway");
    assert!(dropped.load(Ordering::Relaxed), "upstream source leaked");
}

/// Per-cell mode honours the token too (the explicit differential path).
#[test]
fn per_cell_mode_cancels() {
    let pulls = Arc::new(AtomicU64::new(0));
    let dropped = Arc::new(AtomicBool::new(false));
    let experiment = Experiment::new()
        .workload(probe_workload(
            "cancel-percell",
            50_000_000,
            Arc::clone(&pulls),
            Arc::clone(&dropped),
        ))
        .designs([SqDesign::IdealOracle, SqDesign::Indexed3FwdDly])
        .threads(1);
    let token = CancelToken::new();
    token.cancel();
    let err = SweepEngine::new()
        .threads(1)
        .mode(SweepMode::PerCell)
        .cancel_token(token)
        .run(&experiment)
        .unwrap_err();
    assert!(matches!(err, SqipError::Cancelled { .. }), "{err}");
}

fn streaming_experiment() -> Experiment {
    Experiment::new()
        .workload(Workload::from_registry("mix:0xbeef:15k").unwrap())
        .workload(Workload::from_registry("chase:128:64:10k").unwrap())
        .designs([SqDesign::IdealOracle, SqDesign::Indexed3FwdDly])
        .threads(1)
}

fn collect_events(engine: SweepEngine, experiment: &Experiment) -> (ResultSet, Vec<CellEvent>) {
    let events: Arc<Mutex<Vec<CellEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&events);
    let set = engine
        .on_cell(move |event| sink.lock().unwrap().push(event))
        .run(experiment)
        .unwrap();
    let events = events.lock().unwrap().clone();
    (set, events)
}

/// Streamed rows: every cell fires exactly one `Finished` event, the
/// streamed record at index `i` is the batch record at index `i` bit for
/// bit, and the concatenation of streamed rows (ordered by index)
/// reproduces the batch JSON and CSV serializations byte-identically.
#[test]
fn streamed_rows_concatenate_into_batch_bytes() {
    let experiment = streaming_experiment();
    for mode in [SweepMode::SharedPass, SweepMode::PerCell] {
        let (set, events) = collect_events(SweepEngine::new().threads(1).mode(mode), &experiment);
        assert_eq!(set.len(), 4);
        assert_eq!(events.len(), 4, "one event per cell ({mode:?})");

        let mut rows: Vec<(usize, sqip::RunRecord)> = events
            .iter()
            .map(|e| match e {
                CellEvent::Finished { index, record } => (*index, record.clone()),
                CellEvent::Failed { cell, error, .. } => panic!("cell {cell} failed: {error}"),
            })
            .collect();
        let mut indices: Vec<usize> = rows.iter().map(|(i, _)| *i).collect();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2, 3], "no lost or duplicated rows");

        rows.sort_by_key(|(i, _)| *i);
        for (i, record) in &rows {
            assert_eq!(record, &set.records()[*i], "streamed row {i} diverges");
            assert_eq!(record.to_json(), set.records()[*i].to_json());
        }

        // JSON: streamed rows joined with commas inside brackets are the
        // batch serialization, byte for byte.
        let streamed_json = format!(
            "[{}]",
            rows.iter()
                .map(|(_, r)| r.to_json())
                .collect::<Vec<_>>()
                .join(",")
        );
        assert_eq!(
            streamed_json,
            set.to_json(),
            "JSON bytes diverge ({mode:?})"
        );

        // CSV likewise: header + one row per record.
        let mut streamed_csv = String::from(ResultSet::csv_header());
        streamed_csv.push('\n');
        for (_, r) in &rows {
            streamed_csv.push_str(&r.to_csv_row());
            streamed_csv.push('\n');
        }
        assert_eq!(streamed_csv, set.to_csv(), "CSV bytes diverge ({mode:?})");
    }
}

/// Events arrive in completion order, and that order is deterministic:
/// two identical single-threaded runs stream identical event sequences.
#[test]
fn event_order_is_completion_order_and_deterministic() {
    let experiment = streaming_experiment();
    let (_, first) = collect_events(SweepEngine::new().threads(1), &experiment);
    let (_, second) = collect_events(SweepEngine::new().threads(1), &experiment);
    let order = |events: &[CellEvent]| events.iter().map(CellEvent::index).collect::<Vec<_>>();
    assert_eq!(
        order(&first),
        order(&second),
        "completion order is not deterministic"
    );

    // Within one workload group the lock-step scheduler finishes cells as
    // they drain the stream — the ideal-oracle cell (indices 0 and 2 are
    // the first design) never finishes after its group partner under a
    // serial run of this workload pair. We pin only determinism and
    // completeness here; which cell wins is a property of the designs.
    assert_eq!(first.len(), 4);
}

/// The PR 5 gap, closed: an experiment with an observer now runs on the
/// shared pass (telemetry proves it — the fallback used to return no
/// groups) and the observer still sees start/interval/finish callbacks.
#[test]
fn observers_ride_the_shared_pass() {
    #[derive(Default)]
    struct Counts {
        starts: Arc<AtomicU64>,
        intervals: Arc<AtomicU64>,
        finishes: Arc<AtomicU64>,
    }
    struct Counting {
        counts: Counts,
    }
    impl sqip::SimObserver for Counting {
        fn interval(&self) -> u64 {
            1_000
        }
        fn on_start(&mut self, _config: &sqip::SimConfig, _len: Option<usize>) {
            self.counts.starts.fetch_add(1, Ordering::Relaxed);
        }
        fn on_interval(&mut self, _cycle: u64, _stats: &SimStats) -> ObserverAction {
            self.counts.intervals.fetch_add(1, Ordering::Relaxed);
            ObserverAction::Continue
        }
        fn on_finish(&mut self, _stats: &SimStats) {
            self.counts.finishes.fetch_add(1, Ordering::Relaxed);
        }
    }

    let starts = Arc::new(AtomicU64::new(0));
    let intervals = Arc::new(AtomicU64::new(0));
    let finishes = Arc::new(AtomicU64::new(0));
    let experiment = Experiment::new()
        .workload(Workload::from_registry("mix:0xabc:30k").unwrap())
        .designs([SqDesign::IdealOracle, SqDesign::Indexed3FwdDly])
        .threads(1)
        .observe({
            let (s, i, f) = (
                Arc::clone(&starts),
                Arc::clone(&intervals),
                Arc::clone(&finishes),
            );
            move |_| {
                Box::new(Counting {
                    counts: Counts {
                        starts: Arc::clone(&s),
                        intervals: Arc::clone(&i),
                        finishes: Arc::clone(&f),
                    },
                })
            }
        });

    let (observed, telemetry) = SweepEngine::new()
        .threads(1)
        .run_with_telemetry(&experiment)
        .unwrap();
    assert_eq!(
        telemetry.groups.len(),
        1,
        "observer experiments must use the shared pass (one group), not fall back per-cell"
    );
    assert_eq!(starts.load(Ordering::Relaxed), 2, "one on_start per cell");
    assert_eq!(
        finishes.load(Ordering::Relaxed),
        2,
        "one on_finish per cell"
    );
    assert!(intervals.load(Ordering::Relaxed) > 0, "intervals fired");

    // And the results are still bit-identical to the per-cell path.
    let per_cell = experiment.run_per_cell().unwrap();
    assert_eq!(observed, per_cell);
    assert_eq!(observed.to_json(), per_cell.to_json());
}
