//! Result caching and sweep sharding: a warm cache answers the whole
//! sweep without simulating and reproduces the cold run's JSON
//! byte-for-byte; sharded runs merge to exactly the unsharded sweep.

use std::path::PathBuf;

use sqip::{by_name, merge_shards, CacheDir, Experiment, ShardSpec, SqDesign};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqip-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small but non-trivial sweep: two workloads (one streaming) × three
/// designs × two variants = 12 cells.
fn experiment() -> Experiment {
    Experiment::new()
        .workload(by_name("gzip").unwrap().with_iterations(120))
        .workload(sqip::Workload::from_registry("mix:0xbeef:10k").unwrap())
        .designs([
            SqDesign::IdealOracle,
            SqDesign::Associative3,
            SqDesign::Indexed3FwdDly,
        ])
        .vary("base", |_| {})
        .vary("fsp512", |cfg| cfg.fsp.entries = 512)
}

#[test]
fn warm_cache_reruns_byte_identical_with_zero_executions() {
    let dir = scratch("warm-cache");
    let cache = CacheDir::open(&dir).unwrap();
    let exp = experiment();
    let baseline = exp.run().unwrap();

    let (cold, first) = exp.run_cached(&cache).unwrap();
    assert_eq!(first.executed, 12, "cold cache simulates every cell");
    assert_eq!(first.cached, 0);
    assert_eq!(cold.to_json(), baseline.to_json(), "cached ≡ uncached run");

    let (warm, second) = exp.run_cached(&cache).unwrap();
    assert_eq!(second.executed, 0, "warm cache simulates nothing");
    assert_eq!(second.cached, 12);
    assert_eq!(
        warm.to_json(),
        baseline.to_json(),
        "warm rerun byte-identical"
    );
    assert_eq!(warm.to_csv(), baseline.to_csv());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cache_is_keyed_by_full_identity_not_labels() {
    let dir = scratch("identity");
    let cache = CacheDir::open(&dir).unwrap();
    let exp = experiment();
    let (_, first) = exp.run_cached(&cache).unwrap();
    assert_eq!(first.executed, 12);

    // Same labels, different machine configuration: every cell misses.
    let reconfigured = experiment().configure(|cfg| cfg.rob_size = 256);
    let (results, second) = reconfigured.run_cached(&cache).unwrap();
    assert_eq!(second.executed, 12, "config changes invalidate by key");
    assert_eq!(results.to_json(), reconfigured.run().unwrap().to_json());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shard_union_is_byte_identical_to_the_unsharded_sweep() {
    let exp = experiment();
    let baseline = exp.run().unwrap();
    for of in [2usize, 3] {
        let shards: Vec<_> = (0..of)
            .map(|i| exp.run_shard(ShardSpec::new(i, of).unwrap()).unwrap())
            .collect();
        let covered: usize = shards.iter().map(|s| s.records.len()).sum();
        assert_eq!(covered, 12, "{of} shards cover every cell exactly once");

        // Round-trip each artifact through its JSON form, as the CLI
        // (`sqip-merge`) would see it, then merge.
        let merged = merge_shards(
            shards
                .iter()
                .map(|s| sqip::ShardResult::from_json(&s.to_json()).unwrap()),
        )
        .unwrap();
        assert_eq!(
            merged.to_json(),
            baseline.to_json(),
            "{of}-way shard union ≡ unsharded"
        );
        assert_eq!(merged.to_csv(), baseline.to_csv());
    }
}

#[test]
fn merging_an_incomplete_split_is_an_error_not_a_partial_result() {
    let exp = experiment();
    let half = exp.run_shard("0/2".parse::<ShardSpec>().unwrap()).unwrap();
    let err = merge_shards([half]).unwrap_err();
    assert!(
        err.to_string().contains("covered by no shard"),
        "unexpected: {err}"
    );
}
