//! Integration tests over the 47 synthetic Table 3 workloads: every model
//! must build, trace, and simulate to completion, with its measured
//! memory-dependence character in the regime the paper reports.

use sqip::{all_workloads, by_name, mediabench, specfp, specint, OracleInfo, SqDesign};

#[test]
fn the_full_table3_roster_exists() {
    assert_eq!(mediabench().len(), 18);
    assert_eq!(specint().len(), 16);
    assert_eq!(specfp().len(), 13);
    let names: std::collections::HashSet<_> = all_workloads().into_iter().map(|w| w.name).collect();
    assert_eq!(names.len(), 47);
}

#[test]
fn forwarding_rates_match_targets_across_the_roster() {
    // Spot-check a spread of forwarding regimes (full-roster tracing is
    // covered by unit tests; here we verify the measured architectural
    // rate against each spec's target).
    for name in [
        "adpcm.d", "gsm.e", "gzip", "vortex", "mesa.m", "sixtrack", "mcf",
    ] {
        let spec = by_name(name).unwrap();
        let trace = spec.trace().unwrap();
        let oracle = OracleInfo::analyze(&trace);
        let measured = oracle.forwarding_rate(&trace, 64);
        let target = spec.target_forwarding_rate();
        assert!(
            (measured - target).abs() < 0.08,
            "{name}: measured {measured:.3} vs target {target:.3}"
        );
    }
}

#[test]
fn representative_workloads_simulate_under_all_designs() {
    for name in ["gzip", "mesa.t", "eon.c", "mcf"] {
        let spec = by_name(name).unwrap();
        let expected = spec.trace().unwrap().len() as u64;
        for design in SqDesign::ALL {
            let stats = sqip::simulate(&spec, design).unwrap();
            assert_eq!(stats.committed, expected, "{name}/{design}");
        }
    }
}

#[test]
fn pathology_profiles_land_in_the_papers_regimes() {
    // eon: FSP-conflict thrash that delay prediction cures.
    let eon_fwd = sqip::simulate(&by_name("eon.k").unwrap(), SqDesign::Indexed3Fwd).unwrap();
    let eon_dly = sqip::simulate(&by_name("eon.k").unwrap(), SqDesign::Indexed3FwdDly).unwrap();
    assert!(
        eon_fwd.mis_forwards_per_1000() > 5.0,
        "eon.k must thrash without delay, got {:.1}",
        eon_fwd.mis_forwards_per_1000()
    );
    assert!(
        eon_dly.mis_forwards_per_1000() < eon_fwd.mis_forwards_per_1000() / 3.0,
        "delay must cure most of it: {:.2} vs {:.2}",
        eon_dly.mis_forwards_per_1000(),
        eon_fwd.mis_forwards_per_1000()
    );
    assert!(eon_dly.pct_loads_delayed() > 2.0, "delays must be applied");

    // adpcm: no forwarding at all, so prediction must be free.
    let adpcm = sqip::simulate(&by_name("adpcm.d").unwrap(), SqDesign::Indexed3FwdDly).unwrap();
    assert_eq!(adpcm.mis_forwards, 0);
    assert!(adpcm.pct_loads_delayed() < 1.0);

    // mcf: memory bound, low IPC.
    let mcf = sqip::simulate(&by_name("mcf").unwrap(), SqDesign::IdealOracle).unwrap();
    assert!(
        mcf.ipc() < 0.5,
        "mcf is memory-bound, got IPC {:.2}",
        mcf.ipc()
    );
    assert!(mcf.l1.misses > 5_000);
}

#[test]
fn suite_averages_track_the_paper() {
    // Sample three per suite and check the forwarding-rate ordering the
    // paper reports (Media ~14%, Int ~13%, FP ~11%).
    let sample = |names: [&str; 3]| -> f64 {
        names
            .iter()
            .map(|n| {
                let spec = by_name(n).unwrap();
                let t = spec.trace().unwrap();
                OracleInfo::analyze(&t).forwarding_rate(&t, 64)
            })
            .sum::<f64>()
            / 3.0
    };
    let media = sample(["mesa.m", "mpeg2.d", "gsm.d"]);
    let fp = sample(["art", "swim", "lucas"]);
    assert!(
        media > 0.15,
        "forwarding-heavy Media sample, got {media:.3}"
    );
    assert!(fp < 0.05, "forwarding-light FP sample, got {fp:.3}");
}
