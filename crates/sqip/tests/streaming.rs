//! Integration tests for the streaming trace-source API: record/replay
//! through the on-disk format, registry-driven streamed experiment
//! cells, and the memory-boundedness guarantee on multi-million-
//! instruction generator workloads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sqip::{
    by_name, generator, record_trace, Experiment, Processor, SimConfig, SimError, SqDesign,
    StepOutcome, TraceReader, TraceSource, Workload, WorkloadRegistry,
};

/// A counting pass-through source: observes how many records the
/// processor has pulled, without perturbing the stream.
struct Metered<S> {
    inner: S,
    pulled: Arc<AtomicU64>,
}

impl<S: TraceSource> TraceSource for Metered<S> {
    fn next_record(&mut self) -> Result<Option<sqip_isa::TraceRecord>, sqip_isa::IsaError> {
        let rec = self.inner.next_record()?;
        self.pulled
            .fetch_add(u64::from(rec.is_some()), Ordering::Relaxed);
        Ok(rec)
    }
    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint()
    }
}

/// Record a workload to the binary on-disk format, replay it from disk,
/// and get bit-identical statistics to simulating the live trace.
#[test]
fn recorded_trace_file_replays_bit_identically() {
    let spec = by_name("gzip").unwrap().with_iterations(120);
    let trace = spec.trace().unwrap();

    let path = std::env::temp_dir().join(format!("sqip-roundtrip-{}.sqtr", std::process::id()));
    let file = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
    let written = record_trace(&mut trace.stream(), file).unwrap();
    assert_eq!(written, trace.len() as u64);

    let cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
    let reader =
        TraceReader::new(std::io::BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
    let replayed = Processor::from_source(cfg.clone(), reader)
        .try_run()
        .unwrap();
    let live = Processor::new(cfg, &trace).run();
    std::fs::remove_file(&path).ok();

    assert_eq!(replayed, live, "disk replay must be bit-identical");
}

/// A truncated trace file fails the simulation with a trace-source
/// error — never a silent short run.
#[test]
fn truncated_trace_file_fails_the_run_cleanly() {
    let spec = by_name("gzip").unwrap().with_iterations(60);
    let trace = spec.trace().unwrap();
    let mut buf = Vec::new();
    record_trace(&mut trace.stream(), &mut buf).unwrap();
    buf.truncate(buf.len() / 2);

    let reader = TraceReader::new(buf.as_slice()).unwrap();
    let cfg = SimConfig::with_design(SqDesign::Associative3);
    let err = Processor::from_source(cfg, reader).try_run().unwrap_err();
    match err {
        SimError::TraceSource { pulled, detail } => {
            assert!(pulled > 0, "some records were delivered first");
            assert!(detail.contains("truncated"), "{detail}");
        }
        other => panic!("expected a trace-source error, got {other}"),
    }
}

/// Registry-resolved workloads run as streamed `Experiment` cells, and a
/// streamed cell matches the same spec simulated from a materialized
/// trace.
#[test]
fn registry_workloads_stream_through_experiments() {
    let spec = generator::pointer_chase(64, 64, 8_000);
    let name = spec.name.clone();
    let materialized = sqip::simulate(&spec, SqDesign::Indexed3FwdDly).unwrap();

    let results = Experiment::new()
        .workload(Workload::from_registry(&name).unwrap())
        .design(SqDesign::Indexed3FwdDly)
        .run()
        .unwrap();
    assert_eq!(results.len(), 1);
    assert_eq!(
        results.records()[0].stats,
        materialized,
        "streamed cell must match the materialized run"
    );
    assert_eq!(results.records()[0].workload, name);

    // Unknown names are reported, not panicked on.
    assert!(matches!(
        Workload::from_registry("definitely-not-a-workload"),
        Err(sqip::SqipError::UnknownWorkload(_))
    ));
}

/// The memory-boundedness regression: committing a multi-million-
/// instruction generator workload, the processor never buffers more than
/// O(window) records, and never pulls more than O(window) ahead of
/// commit. (A materialized run of the same workload would hold every
/// record at once.)
#[test]
fn multi_million_instruction_stream_is_memory_bounded() {
    let target: u64 = 2_500_000;
    let spec = generator::random_mix(0x00f0_0d50_fa11, target);
    let pulled = Arc::new(AtomicU64::new(0));
    let source = Metered {
        inner: spec.source().unwrap(),
        pulled: Arc::clone(&pulled),
    };

    let cfg = SimConfig::default();
    // ROB + fetch-ahead + slack: the O(window) bound, independent of
    // `target`.
    let bound = (cfg.rob_size + 4 * cfg.fetch_width + 64) as u64;
    let mut processor = Processor::try_from_source(cfg, source).unwrap();

    let mut peak_buffered = 0usize;
    loop {
        match processor.step().unwrap() {
            StepOutcome::Done => break,
            StepOutcome::Running => {}
        }
        // Sample every step, not on cycle-number multiples: under the
        // event engine a step may skip many cycles, and the bound must
        // hold at every point the simulation actually visits.
        peak_buffered = peak_buffered.max(processor.buffered_records());
        let ahead = pulled
            .load(Ordering::Relaxed)
            .saturating_sub(processor.stats().committed);
        assert!(
            ahead <= bound,
            "pulled {ahead} records ahead of commit (bound {bound}) at cycle {}",
            processor.cycle()
        );
    }
    peak_buffered = peak_buffered.max(processor.buffered_records());

    let committed = processor.stats().committed;
    assert!(
        committed >= target * 9 / 10,
        "only {committed} of ~{target} instructions committed"
    );
    assert_eq!(
        committed,
        pulled.load(Ordering::Relaxed),
        "every pulled record commits"
    );
    assert!(
        (peak_buffered as u64) <= bound,
        "peak buffer {peak_buffered} exceeds the O(window) bound {bound}"
    );
    // The bound is real, not vacuous: a healthy run keeps the window full.
    assert!(
        peak_buffered > 64,
        "suspiciously small peak buffer {peak_buffered}"
    );
}

/// `stream-10m` — the scale proof registered in the global registry — is
/// resolvable and streams from record zero. (The full ten-million-
/// instruction run is exercised through the figure4 binary; see
/// README "the workload axis".)
#[test]
fn stream_10m_is_registered_and_opens() {
    let entry = WorkloadRegistry::global().resolve("stream-10m").unwrap();
    let mut source = entry.open().unwrap();
    for _ in 0..1000 {
        assert!(source.next_record().unwrap().is_some());
    }
}
