//! Deterministic sweep sharding: partition an experiment's cells across
//! independent invocations (machines, CI jobs, service workers) and merge
//! the shard artifacts back into the exact [`ResultSet`] the unsharded
//! sweep would have produced.
//!
//! Ownership is content-addressed, not positional: a cell belongs to
//! shard `i` of `n` iff the FNV-1a-64 digest of its
//! `workload/design/variant` label satisfies `digest % n == i`. That
//! makes the partition a pure function of the experiment — independent of
//! thread counts, execution order, and of *which* shard enumerates the
//! cells — so `n` invocations of the same experiment with `--shard 0/n`
//! … `--shard (n-1)/n` cover every cell exactly once, with no
//! coordination.
//!
//! Each invocation emits a [`ShardResult`]: its records plus the cell
//! indices they occupy in the experiment's canonical cell order, and the
//! total cell count for coverage checking. [`merge_shards`] (or the
//! `sqip-merge` binary) validates that the artifacts are mutually
//! consistent and jointly complete, then reassembles the records in cell
//! order — byte-identical, by the simulator's determinism, to running the
//! whole sweep in one place.

use std::str::FromStr;

use serde::{Deserialize, Serialize};
use sqip_snapshot::Fnv;

use crate::error::SqipError;
use crate::results::{ResultSet, RunRecord};

/// One slice of an `n`-way sweep partition: shard `index` of `of`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// This shard's position, `0 <= index < of`.
    pub index: usize,
    /// The total number of shards.
    pub of: usize,
}

impl ShardSpec {
    /// Builds a validated shard spec.
    ///
    /// # Errors
    ///
    /// [`SqipError::Config`] when `of` is zero or `index` is out of
    /// range.
    pub fn new(index: usize, of: usize) -> Result<ShardSpec, SqipError> {
        if of == 0 {
            return Err(SqipError::Config("shard count must be at least 1".into()));
        }
        if index >= of {
            return Err(SqipError::Config(format!(
                "shard index {index} out of range for {of} shards (indices are 0-based)"
            )));
        }
        Ok(ShardSpec { index, of })
    }

    /// Whether this shard owns the cell with the given
    /// `workload/design/variant` label.
    ///
    /// Pure in the label and the spec: every shard of the same split
    /// agrees, whatever order or thread count it runs with.
    #[must_use]
    pub fn owns(&self, label: &str) -> bool {
        let mut fnv = Fnv::new();
        fnv.update(label.as_bytes());
        fnv.value() % (self.of as u64) == self.index as u64
    }
}

impl FromStr for ShardSpec {
    type Err = SqipError;

    /// Parses the command-line form `i/n` (0-based, `i < n`).
    fn from_str(s: &str) -> Result<ShardSpec, SqipError> {
        let bad = || SqipError::Config(format!("`{s}` is not a shard spec (expected `i/n`)"));
        let (index, of) = s.split_once('/').ok_or_else(bad)?;
        ShardSpec::new(
            index.trim().parse().map_err(|_| bad())?,
            of.trim().parse().map_err(|_| bad())?,
        )
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.of)
    }
}

/// The artifact one sharded invocation produces: the records of the cells
/// this shard owns, tagged with their positions in the experiment's
/// canonical cell order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardResult {
    /// Which shard produced this artifact.
    pub shard: usize,
    /// The split's total shard count.
    pub of: usize,
    /// The experiment's total cell count (identical across shards of one
    /// split; checked at merge time).
    pub total_cells: usize,
    /// The canonical cell index of each record, parallel to `records`.
    pub indices: Vec<usize>,
    /// The owned cells' results, in canonical cell order.
    pub records: Vec<RunRecord>,
}

impl ShardResult {
    /// Serializes this artifact to compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("shard artifacts serialize")
    }

    /// Serializes this artifact to human-readable JSON.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("shard artifacts serialize")
    }

    /// Parses an artifact serialized by [`ShardResult::to_json`].
    ///
    /// # Errors
    ///
    /// [`SqipError::Parse`] on malformed JSON or a shape mismatch.
    pub fn from_json(text: &str) -> Result<ShardResult, SqipError> {
        Ok(serde_json::from_str(text)?)
    }
}

/// Joins shard artifacts into the full sweep's [`ResultSet`], in the
/// experiment's canonical cell order.
///
/// The artifacts must be mutually consistent (same `of`, same
/// `total_cells`) and jointly complete: every cell index in
/// `0..total_cells` covered exactly once. Supplying the same shard twice,
/// omitting one, or mixing artifacts from different experiments or
/// splits is an error — never a silently partial result.
///
/// ```
/// use sqip::{by_name, merge_shards, Experiment, ShardSpec, SqDesign};
///
/// let exp = Experiment::new()
///     .workload(by_name("gzip").unwrap().with_iterations(100))
///     .designs([SqDesign::Associative3, SqDesign::Indexed3FwdDly]);
///
/// // Two independent invocations, each running its half...
/// let a = exp.run_shard("0/2".parse::<ShardSpec>()?)?;
/// let b = exp.run_shard("1/2".parse::<ShardSpec>()?)?;
///
/// // ...merge to exactly the unsharded sweep's results.
/// let merged = merge_shards([a, b])?;
/// assert_eq!(merged.to_json(), exp.run()?.to_json());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// [`SqipError::Config`] describing the first inconsistency: no
/// artifacts, mismatched splits, an out-of-range or duplicated cell
/// index, or missing cells.
pub fn merge_shards(shards: impl IntoIterator<Item = ShardResult>) -> Result<ResultSet, SqipError> {
    let shards: Vec<ShardResult> = shards.into_iter().collect();
    let first = shards
        .first()
        .ok_or_else(|| SqipError::Config("no shard artifacts to merge".into()))?;
    let (of, total) = (first.of, first.total_cells);
    let mut slots: Vec<Option<RunRecord>> = vec![None; total];
    for shard in shards {
        if shard.of != of || shard.total_cells != total {
            return Err(SqipError::Config(format!(
                "shard {}/{} with {} cells does not belong to the {}-shard, {}-cell split",
                shard.shard, shard.of, shard.total_cells, of, total
            )));
        }
        if shard.shard >= of {
            return Err(SqipError::Config(format!(
                "shard index {} out of range for {} shards",
                shard.shard, of
            )));
        }
        if shard.indices.len() != shard.records.len() {
            return Err(SqipError::Config(format!(
                "shard {}: {} indices for {} records",
                shard.shard,
                shard.indices.len(),
                shard.records.len()
            )));
        }
        for (index, record) in shard.indices.iter().zip(shard.records) {
            let slot = slots.get_mut(*index).ok_or_else(|| {
                SqipError::Config(format!("cell index {index} out of range for {total} cells"))
            })?;
            if slot.is_some() {
                return Err(SqipError::Config(format!(
                    "cell index {index} covered by more than one shard artifact"
                )));
            }
            *slot = Some(record);
        }
    }
    let mut records = Vec::with_capacity(total);
    for (index, slot) in slots.into_iter().enumerate() {
        records.push(slot.ok_or_else(|| {
            SqipError::Config(format!(
                "cell index {index} covered by no shard artifact (missing shard?)"
            ))
        })?);
    }
    Ok(ResultSet::new(records))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_validates() {
        let spec: ShardSpec = "2/5".parse().unwrap();
        assert_eq!((spec.index, spec.of), (2, 5));
        assert_eq!(spec.to_string(), "2/5");
        for bad in ["", "3", "5/5", "1/0", "a/b", "-1/3"] {
            assert!(bad.parse::<ShardSpec>().is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn every_label_has_exactly_one_owner() {
        let labels = [
            "gzip/associative-3/base",
            "mesa.t/indexed-3-fwd/f64",
            "x/y/z",
        ];
        for of in 1..=5 {
            for label in labels {
                let owners = (0..of)
                    .filter(|&i| ShardSpec::new(i, of).unwrap().owns(label))
                    .count();
                assert_eq!(owners, 1, "{label} under {of} shards");
            }
        }
    }

    #[test]
    fn merge_rejects_duplicates_gaps_and_mixed_splits() {
        let shard = |index: usize, of, total, indices: Vec<usize>| ShardResult {
            shard: index,
            of,
            total_cells: total,
            records: indices
                .iter()
                .map(|&i| RunRecord {
                    workload: format!("w{i}"),
                    suite: None,
                    design: sqip_core::SqDesign::Associative3,
                    variant: "base".to_string(),
                    stats: sqip_core::SimStats::default(),
                })
                .collect(),
            indices,
        };
        // A complete split merges, in index order.
        let merged = merge_shards([shard(1, 2, 3, vec![1]), shard(0, 2, 3, vec![0, 2])]).unwrap();
        let names: Vec<&str> = merged.iter().map(|r| r.workload.as_str()).collect();
        assert_eq!(names, ["w0", "w1", "w2"]);

        assert!(merge_shards([]).is_err(), "empty");
        assert!(
            merge_shards([shard(0, 2, 3, vec![0, 2])]).is_err(),
            "missing cells"
        );
        assert!(
            merge_shards([shard(0, 2, 3, vec![0, 2]), shard(0, 2, 3, vec![0, 2])]).is_err(),
            "duplicate coverage"
        );
        assert!(
            merge_shards([shard(0, 2, 3, vec![0, 2]), shard(1, 3, 3, vec![1])]).is_err(),
            "mixed splits"
        );
        assert!(
            merge_shards([shard(0, 1, 2, vec![0, 5])]).is_err(),
            "index out of range"
        );
    }
}
