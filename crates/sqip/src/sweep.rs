//! The shared-pass sweep engine: trace each workload **once**, drive
//! every design cell that wants it in lock-step off that single pass.
//!
//! [`Experiment::run`] used to hand every cell to a worker independently;
//! a streamed cell then re-ran the generator/interpreter and re-built the
//! dependence oracle from scratch, so an 8-design sweep paid the workload
//! axis 8×. [`SweepEngine`] instead groups cells by workload and, per
//! group:
//!
//! * opens the workload's record stream once, wrapped in a shared
//!   dependence-analysis pass ([`sqip_core::oracle_tap`]),
//! * tees it through a bounded ring ([`sqip_isa::TraceTee`]) to one
//!   cursor per cell,
//! * builds each cell's [`Processor`] over its cursor
//!   ([`Processor::try_from_shared`]), and
//! * round-robins [`Processor::step`] across the group in bounded
//!   quanta, skipping any consumer about to outrun the ring window —
//!   the slowest consumer is always eligible, so the group always makes
//!   progress and the ring (not the workload length) bounds memory.
//!
//! Groups are distributed over worker threads by a work-stealing queue
//! (groups are few and lopsided; see
//! [`work_steal_map`](crate::parallel::work_steal_map)). Results are
//! **bit-identical** to the per-cell path for any thread count — pinned
//! by a proptest — because every cell still simulates the exact record
//! stream and oracle info it would have computed for itself.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use sqip_core::{oracle_tap, ObserverAction, Processor, SimObserver, SimStats, StepOutcome};
use sqip_isa::{IsaError, Trace, TraceSource, TraceTee};
use sqip_workloads::intern_name;

use crate::error::SqipError;
use crate::experiment::{Experiment, ObserverFn, Run, Workload};
use crate::parallel::{default_threads, work_steal_map};
use crate::results::{ResultSet, RunRecord};

/// A shared abort switch for cooperative sweep cancellation.
///
/// Clone the token, hand one clone to [`SweepEngine::cancel_token`], keep
/// the other, and flip it from any thread ([`CancelToken::cancel`]); the
/// engine checks it at every [`Processor::step`] boundary, so a cancelled
/// sweep stops within one lock-step turn — unfinished cells report
/// [`SqipError::Cancelled`] and every shared-ring cursor is dropped with
/// its processor (nothing leaks, nothing keeps pulling the workload).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Flips the token; every sweep holding a clone stops at its next
    /// step boundary. Idempotent, callable from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A per-cell completion notification streamed while a sweep is still
/// running (see [`SweepEngine::on_cell`]). Fired on the worker thread
/// that finished the cell, in that group's completion order.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // one event per finished cell, far off the hot path; boxing would ripple through the streaming API
pub enum CellEvent {
    /// A cell ran to completion (or an observer aborted it early, in
    /// which case the record holds the partial statistics).
    Finished {
        /// The cell's index in [`Experiment::cells`] order.
        index: usize,
        /// The finished cell's result row — exactly the [`RunRecord`]
        /// that will appear at `index` in the final [`ResultSet`].
        record: RunRecord,
    },
    /// A cell failed; the sweep's own `Result` carries the first failure
    /// in cell order, this event reports them as they happen.
    Failed {
        /// The cell's index in [`Experiment::cells`] order.
        index: usize,
        /// The cell's `workload/design/variant` label.
        cell: String,
        /// The rendered failure.
        error: String,
    },
}

impl CellEvent {
    /// The cell's index in [`Experiment::cells`] order.
    #[must_use]
    pub fn index(&self) -> usize {
        match self {
            CellEvent::Finished { index, .. } | CellEvent::Failed { index, .. } => *index,
        }
    }
}

/// A sink for [`CellEvent`]s ([`SweepEngine::on_cell`]). Called from
/// worker threads, hence `Send + Sync`.
pub type CellEventFn = Arc<dyn Fn(CellEvent) + Send + Sync>;

/// Builds the event for a finished/failed cell and hands it to the sink,
/// if one is installed. (Cancelled cells fire no event: the caller that
/// cancelled the sweep already knows.)
pub(crate) fn emit_cell_event(
    events: Option<&CellEventFn>,
    cell: &Run,
    index: usize,
    result: &Result<SimStats, SqipError>,
) {
    let Some(sink) = events else { return };
    let event = match result {
        Ok(stats) => CellEvent::Finished {
            index,
            record: RunRecord {
                workload: cell.workload.name().to_string(),
                suite: cell.workload.suite(),
                design: cell.design,
                variant: cell.variant.clone(),
                stats: stats.clone(),
            },
        },
        Err(SqipError::Cancelled { .. }) => return,
        Err(e) => CellEvent::Failed {
            index,
            cell: cell.label(),
            error: e.to_string(),
        },
    };
    sink(event);
}

/// How [`SweepEngine`] executes a sweep's cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepMode {
    /// One workload pass per group, consumers in lock-step (the default).
    #[default]
    SharedPass,
    /// One independent pass per cell (the pre-sweep-engine behaviour;
    /// kept as the differential baseline).
    PerCell,
}

/// Shared-ring capacity in records. Bounds both the tee ring and the
/// spread between the fastest and slowest consumer of a group; at ~72
/// bytes a record this is ~300KB of shared buffer per in-flight group.
const RING_CAPACITY: usize = 32768;

/// Lock-step quantum: `step()` calls a consumer may take per turn before
/// the scheduler rotates (large enough to amortize warming the cell's
/// simulator state back into cache, small enough to keep the group in
/// lock-step when one design is much slower than the rest).
const QUANTUM: usize = 2048;

/// Per-group telemetry from a shared pass (the sweep-mode half of the
/// memory-boundedness story: the *shared ring's* high-water mark and each
/// consumer's lag are reported separately from each cell's own
/// [`Processor::buffered_records`] peak).
#[derive(Debug, Clone)]
pub struct GroupTelemetry {
    /// The group's workload name.
    pub workload: String,
    /// Cell labels in group order.
    pub cells: Vec<String>,
    /// Records pulled from the upstream source (exactly once each).
    pub records_pulled: u64,
    /// The shared tee ring's capacity in records.
    pub ring_capacity: u64,
    /// Peak occupancy of the shared tee ring.
    pub ring_high_water: u64,
    /// Per cell: peak records buffered in the cell's own window
    /// (commit point to fetch frontier — the PR 3 observable).
    pub peak_buffered: Vec<u64>,
    /// Per cell: peak lag behind the shared pull frontier, in records.
    pub peak_lag: Vec<u64>,
}

/// Telemetry for a whole shared-pass sweep (empty under
/// [`SweepMode::PerCell`] and for single-cell groups, which run the
/// per-cell path).
#[derive(Debug, Clone, Default)]
pub struct SweepTelemetry {
    /// One entry per multi-cell workload group.
    pub groups: Vec<GroupTelemetry>,
}

/// Executes [`Experiment`]s with workload-grouped shared passes: one
/// record pass and one dependence-analysis pass per workload, however
/// many design cells consume it (see the module-level documentation).
///
/// # Example
///
/// ```
/// use sqip::{Experiment, SqDesign, SweepEngine, SweepMode};
///
/// let experiment = Experiment::new()
///     .workload(sqip::Workload::from_registry("mix:0xfeed:20k")?)
///     .designs([SqDesign::IdealOracle, SqDesign::Indexed3FwdDly]);
///
/// // The generator runs once; both design cells consume the same pass.
/// let shared = SweepEngine::new().run(&experiment)?;
/// // Bit-identical to the per-cell path (pinned by proptest, shown here).
/// let per_cell = SweepEngine::new().mode(SweepMode::PerCell).run(&experiment)?;
/// assert_eq!(shared, per_cell);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Default)]
pub struct SweepEngine {
    threads: Option<usize>,
    mode: SweepMode,
    token: Option<CancelToken>,
    events: Option<CellEventFn>,
}

impl std::fmt::Debug for SweepEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepEngine")
            .field("threads", &self.threads)
            .field("mode", &self.mode)
            .field("cancellable", &self.token.is_some())
            .field("streams_events", &self.events.is_some())
            .finish()
    }
}

impl SweepEngine {
    /// The shared tee ring's capacity in records — the bound on how far a
    /// cancelled sweep can still advance (cancellation is checked at
    /// every step, and no consumer runs more than a ring window ahead of
    /// the shared pull frontier).
    pub const RING_CAPACITY: usize = RING_CAPACITY;

    /// A shared-pass engine with one worker per available core.
    #[must_use]
    pub fn new() -> SweepEngine {
        SweepEngine::default()
    }

    /// Caps the worker-thread count (`1` forces a serial run; results are
    /// identical either way).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> SweepEngine {
        self.threads = Some(threads.max(1));
        self
    }

    /// Selects the execution mode.
    #[must_use]
    pub fn mode(mut self, mode: SweepMode) -> SweepEngine {
        self.mode = mode;
        self
    }

    /// Installs a cooperative cancellation token. The engine checks it at
    /// every [`Processor::step`] boundary; once cancelled, unfinished
    /// cells report [`SqipError::Cancelled`] (the sweep's `Result` is the
    /// first failure in cell order) and every in-flight processor — with
    /// its shared-ring cursor — is dropped promptly.
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> SweepEngine {
        self.token = Some(token);
        self
    }

    /// Installs a per-cell completion sink: as each cell finishes (in
    /// either mode, on whichever worker thread ran it), `sink` receives a
    /// [`CellEvent`] carrying the cell's final [`RunRecord`] — the same
    /// row, bit for bit, that the returned [`ResultSet`] will hold at
    /// that index. This is how long sweeps stream incremental results
    /// (e.g. over the wire) without waiting for the slowest cell.
    #[must_use]
    pub fn on_cell(mut self, sink: impl Fn(CellEvent) + Send + Sync + 'static) -> SweepEngine {
        self.events = Some(Arc::new(sink));
        self
    }

    /// Runs the experiment's sweep. See [`SweepEngine::run_with_telemetry`].
    ///
    /// # Errors
    ///
    /// The first workload or cell failure, in cell order.
    pub fn run(&self, experiment: &Experiment) -> Result<ResultSet, SqipError> {
        self.run_with_telemetry(experiment).map(|(set, _)| set)
    }

    /// Runs the experiment's sweep and returns the shared-pass telemetry
    /// alongside the results.
    ///
    /// Experiments with an observer stay on the shared-pass path: each
    /// cell's observer is driven from the lock-step scheduler, with
    /// `on_interval` fired at the first step boundary **at or past** each
    /// interval (the event core's step can jump several cycles, and the
    /// scheduler rotates cells in quanta, so boundaries are not landed on
    /// exactly — use [`Experiment::run_per_cell`] /
    /// [`Processor::run_observed`] for exact-boundary sampling).
    /// `Abort` is honoured per cell: the aborted cell records its partial
    /// statistics while the rest of the group keeps running.
    ///
    /// # Errors
    ///
    /// The first workload or cell failure, in cell order.
    pub fn run_with_telemetry(
        &self,
        experiment: &Experiment,
    ) -> Result<(ResultSet, SweepTelemetry), SqipError> {
        // Engine-level threads win; otherwise the experiment's own
        // setting; otherwise one worker per core.
        let threads = self
            .threads
            .or_else(|| experiment.threads_setting())
            .unwrap_or_else(default_threads);
        if self.mode == SweepMode::PerCell {
            return experiment
                .run_per_cell_inner(threads, self.token.as_ref(), self.events.as_ref())
                .map(|set| (set, SweepTelemetry::default()));
        }
        let cells = experiment.cells()?;

        // Group cell indices by workload identity (interned name), in
        // first-appearance order; cell order within a group is cell
        // order. Keying by name is sound because `Experiment::cells`
        // rejects two distinct workloads under one name up front — every
        // same-key cell provably shares one `Workload` definition.
        let mut groups: Vec<(&'static str, Vec<usize>)> = Vec::new();
        for (i, cell) in cells.iter().enumerate() {
            let key = cell.workload.key();
            match groups.iter_mut().find(|(k, _)| std::ptr::eq(*k, key)) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((key, vec![i])),
            }
        }

        // Work-stealing over workload groups: few items, lopsided sizes.
        let ctx = GroupCtx {
            token: self.token.as_ref(),
            events: self.events.as_ref(),
            observer: experiment.observer_fn(),
        };
        let outcomes = work_steal_map(&groups, threads, |_, (_, idxs)| {
            run_group(&cells, idxs, &ctx)
        });

        let mut slots: Vec<Option<Result<SimStats, SqipError>>> =
            cells.iter().map(|_| None).collect();
        let mut telemetry = SweepTelemetry::default();
        for outcome in outcomes {
            for (idx, result) in outcome.results {
                slots[idx] = Some(result);
            }
            if let Some(group) = outcome.telemetry {
                telemetry.groups.push(group);
            }
        }
        // (`work_steal_map` returns outcomes in input order, so the
        // telemetry groups are already in first-appearance order.)

        let mut records = Vec::with_capacity(cells.len());
        for (cell, slot) in cells.iter().zip(slots) {
            let stats = slot.expect("every cell produced an outcome")?;
            records.push(RunRecord {
                workload: cell.workload.name().to_string(),
                suite: cell.workload.suite(),
                design: cell.design,
                variant: cell.variant.clone(),
                stats,
            });
        }
        Ok((ResultSet::new(records), telemetry))
    }
}

struct GroupOutcome {
    results: Vec<(usize, Result<SimStats, SqipError>)>,
    telemetry: Option<GroupTelemetry>,
}

/// The sweep-wide controls threaded into each group's scheduler.
struct GroupCtx<'a> {
    token: Option<&'a CancelToken>,
    events: Option<&'a CellEventFn>,
    observer: Option<&'a ObserverFn>,
}

impl GroupCtx<'_> {
    fn cancelled(&self) -> bool {
        self.token.is_some_and(CancelToken::is_cancelled)
    }
}

/// Runs one workload group on the calling worker thread.
fn run_group(cells: &[Run], idxs: &[usize], ctx: &GroupCtx<'_>) -> GroupOutcome {
    if let [only] = idxs {
        // Single-cell groups take the plain per-cell path: a tee over one
        // consumer is pure overhead.
        let result = cells[*only].execute_controlled(ctx.observer, ctx.token);
        emit_cell_event(ctx.events, &cells[*only], *only, &result);
        return GroupOutcome {
            results: vec![(*only, result)],
            telemetry: None,
        };
    }
    let workload = &cells[idxs[0]].workload;

    // Open the group's single upstream pass. A failure here is what every
    // cell would have hit opening its own pass: report it per cell.
    let fail_all = |source: IsaError| GroupOutcome {
        results: idxs
            .iter()
            .map(|&i| {
                (
                    i,
                    Err(SqipError::Workload {
                        name: workload.name().to_string(),
                        source: source.clone(),
                    }),
                )
            })
            .collect(),
        telemetry: None,
    };
    // Materialized workloads trace once per group and stream from the
    // trace; streaming workloads open their registered source.
    let trace: Option<Arc<Trace>> = match workload.trace() {
        None => None,
        Some(Ok(trace)) => Some(trace),
        Some(Err(SqipError::Workload { source, .. })) => return fail_all(source),
        Some(Err(_)) => unreachable!("Workload::trace reports SqipError::Workload"),
    };
    let upstream: Box<dyn TraceSource + '_> = match (&trace, workload) {
        (Some(trace), _) => Box::new(trace.stream()),
        (None, Workload::Source(reg)) => match reg.open() {
            Ok(source) => source,
            Err(e) => return fail_all(e),
        },
        (None, _) => unreachable!("non-streaming workloads always materialize"),
    };

    drive_group(cells, idxs, workload, upstream, ctx)
}

/// The lock-step scheduler: one shared pass, one processor per cell,
/// round-robin quanta bounded by the ring window.
fn drive_group(
    cells: &[Run],
    idxs: &[usize],
    workload: &Workload,
    upstream: Box<dyn TraceSource + '_>,
    ctx: &GroupCtx<'_>,
) -> GroupOutcome {
    let n = idxs.len();
    let (tap, feed) = oracle_tap(upstream, RING_CAPACITY);
    let (tee, cursors) = TraceTee::new(tap, n, RING_CAPACITY);
    let cap = tee.capacity() as u64;

    let sim_err = |i: usize| {
        let cell = cells[i].label();
        move |source| SqipError::Sim {
            cell: cell.clone(),
            source,
        }
    };

    let mut procs: Vec<Option<Processor<'_>>> = Vec::with_capacity(n);
    let mut results: Vec<Option<Result<SimStats, SqipError>>> = (0..n).map(|_| None).collect();
    for (cursor, &i) in cursors.into_iter().zip(idxs) {
        match Processor::try_from_shared(cells[i].config.clone(), cursor, feed.clone()) {
            Ok(p) => procs.push(Some(p)),
            Err(e) => {
                // Unreachable through `Experiment` (cells are validated up
                // front), kept total for direct `SweepEngine` users.
                results[procs.len()] = Some(Err(sim_err(i)(e)));
                procs.push(None);
            }
        }
    }

    // Observers ride the lock-step loop: `on_interval` fires at the
    // first step boundary at or past each interval (see
    // `SweepEngine::run_with_telemetry`).
    let mut observers: Vec<Option<Box<dyn SimObserver>>> = (0..n).map(|_| None).collect();
    let mut boundaries = vec![u64::MAX; n];
    if let Some(factory) = ctx.observer {
        for (c, &i) in idxs.iter().enumerate() {
            if procs[c].is_some() {
                let mut obs = factory(&cells[i]);
                obs.on_start(&cells[i].config, None);
                boundaries[c] = obs.interval().max(1);
                observers[c] = Some(obs);
            }
        }
    }

    let fw: Vec<u64> = idxs
        .iter()
        .map(|&i| cells[i].config.fetch_width as u64)
        .collect();
    let mut peak_buffered = vec![0u64; n];
    let mut peak_lag = vec![0u64; n];
    let mut cancelled = false;

    'sweep: loop {
        let mut any_live = false;
        let mut progressed = false;
        for c in 0..n {
            let Some(p) = procs[c].as_mut() else { continue };
            any_live = true;
            // A consumer still pulling may not run more than a ring ahead
            // of the slowest; one that has drained the stream (the tee is
            // done — or failed, which ends it just as surely — and it is
            // at the frontier) holds no ring slots hostage and is always
            // eligible. Without the failed case a frontier cursor would
            // sit gated on ring capacity waiting for records that can
            // never arrive, surfacing the upstream error only after every
            // slower cell drained — or never, if it was itself the
            // slowest.
            let ended = tee.is_done() || tee.is_failed();
            let may_pull = !(ended && tee.position(c) == tee.pulled());
            if may_pull && tee.position(c) + fw[c] > tee.base() + cap {
                continue;
            }
            progressed = true;
            let mut outcome = None;
            for _ in 0..QUANTUM {
                if ctx.cancelled() {
                    cancelled = true;
                    break 'sweep;
                }
                match p.step() {
                    Ok(StepOutcome::Running) => {
                        peak_buffered[c] = peak_buffered[c].max(p.buffered_records() as u64);
                        if p.cycle() >= boundaries[c] {
                            let obs = observers[c].as_mut().expect("boundary set with observer");
                            let interval = obs.interval().max(1);
                            boundaries[c] = (p.cycle() / interval + 1) * interval;
                            if obs.on_interval(p.cycle(), p.stats()) == ObserverAction::Abort {
                                outcome = Some(Ok(p.stats().clone()));
                                break;
                            }
                        }
                        if may_pull && tee.position(c) + fw[c] > tee.base() + cap {
                            break; // about to outrun the ring: rotate
                        }
                    }
                    Ok(StepOutcome::Done) => {
                        if let Some(obs) = observers[c].as_mut() {
                            obs.on_finish(p.stats());
                        }
                        outcome = Some(Ok(p.stats().clone()));
                        break;
                    }
                    Err(e) => {
                        outcome = Some(Err(sim_err(idxs[c])(e)));
                        break;
                    }
                }
            }
            peak_lag[c] = peak_lag[c].max(tee.pulled().saturating_sub(tee.position(c)));
            if let Some(result) = outcome {
                emit_cell_event(ctx.events, &cells[idxs[c]], idxs[c], &result);
                results[c] = Some(result);
                // Dropping the processor drops its tee cursor, releasing
                // its ring holds so the group never waits on a finished
                // (or failed) cell.
                procs[c] = None;
                observers[c] = None;
            }
        }
        if !any_live {
            break;
        }
        assert!(
            progressed,
            "lock-step sweep wedged: no consumer was eligible to run \
             (scheduler invariant violation)"
        );
    }
    if cancelled {
        // Unfinished cells report the cancellation; dropping their
        // processors (with `procs`, below) drops their tee cursors.
        for (c, slot) in results.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(Err(SqipError::Cancelled {
                    cell: cells[idxs[c]].label(),
                }));
            }
        }
        drop(procs);
    }

    let telemetry = GroupTelemetry {
        workload: workload.name().to_string(),
        cells: idxs.iter().map(|&i| cells[i].label()).collect(),
        records_pulled: tee.pulled(),
        ring_capacity: tee.capacity() as u64,
        ring_high_water: tee.high_water() as u64,
        peak_buffered,
        peak_lag,
    };
    GroupOutcome {
        results: idxs
            .iter()
            .zip(results)
            .map(|(&i, r)| (i, r.expect("every live cell ran to an outcome")))
            .collect(),
        telemetry: Some(telemetry),
    }
}

// `Workload::key` lives here to keep the interning dependency local to
// the sweep path.
impl Workload {
    /// The workload's interned identity: sweep groups and trace caches
    /// key on this (`'static`, pointer-stable) handle instead of cloning
    /// name `String`s per cell.
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            Workload::Source(reg) => reg.name(),
            other => intern_name(other.name()),
        }
    }
}
