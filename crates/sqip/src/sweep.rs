//! The shared-pass sweep engine: trace each workload **once**, drive
//! every design cell that wants it in lock-step off that single pass.
//!
//! [`Experiment::run`] used to hand every cell to a worker independently;
//! a streamed cell then re-ran the generator/interpreter and re-built the
//! dependence oracle from scratch, so an 8-design sweep paid the workload
//! axis 8×. [`SweepEngine`] instead groups cells by workload and, per
//! group:
//!
//! * opens the workload's record stream once, wrapped in a shared
//!   dependence-analysis pass ([`sqip_core::oracle_tap`]),
//! * tees it through a bounded ring ([`sqip_isa::TraceTee`]) to one
//!   cursor per cell,
//! * builds each cell's [`Processor`] over its cursor
//!   ([`Processor::try_from_shared`]), and
//! * round-robins [`Processor::step`] across the group in bounded
//!   quanta, skipping any consumer about to outrun the ring window —
//!   the slowest consumer is always eligible, so the group always makes
//!   progress and the ring (not the workload length) bounds memory.
//!
//! Groups are distributed over worker threads by a work-stealing queue
//! (groups are few and lopsided; see
//! [`work_steal_map`](crate::parallel::work_steal_map)). Results are
//! **bit-identical** to the per-cell path for any thread count — pinned
//! by a proptest — because every cell still simulates the exact record
//! stream and oracle info it would have computed for itself.

use std::sync::Arc;

use sqip_core::{oracle_tap, Processor, SimStats, StepOutcome};
use sqip_isa::{IsaError, Trace, TraceSource, TraceTee};
use sqip_workloads::intern_name;

use crate::error::SqipError;
use crate::experiment::{Experiment, Run, Workload};
use crate::parallel::{default_threads, work_steal_map};
use crate::results::{ResultSet, RunRecord};

/// How [`SweepEngine`] executes a sweep's cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepMode {
    /// One workload pass per group, consumers in lock-step (the default).
    #[default]
    SharedPass,
    /// One independent pass per cell (the pre-sweep-engine behaviour;
    /// kept as the differential baseline and observer fallback).
    PerCell,
}

/// Shared-ring capacity in records. Bounds both the tee ring and the
/// spread between the fastest and slowest consumer of a group; at ~72
/// bytes a record this is ~300KB of shared buffer per in-flight group.
const RING_CAPACITY: usize = 32768;

/// Lock-step quantum: `step()` calls a consumer may take per turn before
/// the scheduler rotates (large enough to amortize warming the cell's
/// simulator state back into cache, small enough to keep the group in
/// lock-step when one design is much slower than the rest).
const QUANTUM: usize = 2048;

/// Per-group telemetry from a shared pass (the sweep-mode half of the
/// memory-boundedness story: the *shared ring's* high-water mark and each
/// consumer's lag are reported separately from each cell's own
/// [`Processor::buffered_records`] peak).
#[derive(Debug, Clone)]
pub struct GroupTelemetry {
    /// The group's workload name.
    pub workload: String,
    /// Cell labels in group order.
    pub cells: Vec<String>,
    /// Records pulled from the upstream source (exactly once each).
    pub records_pulled: u64,
    /// The shared tee ring's capacity in records.
    pub ring_capacity: u64,
    /// Peak occupancy of the shared tee ring.
    pub ring_high_water: u64,
    /// Per cell: peak records buffered in the cell's own window
    /// (commit point to fetch frontier — the PR 3 observable).
    pub peak_buffered: Vec<u64>,
    /// Per cell: peak lag behind the shared pull frontier, in records.
    pub peak_lag: Vec<u64>,
}

/// Telemetry for a whole shared-pass sweep (empty under
/// [`SweepMode::PerCell`] and for single-cell groups, which run the
/// per-cell path).
#[derive(Debug, Clone, Default)]
pub struct SweepTelemetry {
    /// One entry per multi-cell workload group.
    pub groups: Vec<GroupTelemetry>,
}

/// Executes [`Experiment`]s with workload-grouped shared passes: one
/// record pass and one dependence-analysis pass per workload, however
/// many design cells consume it (see the module-level documentation).
///
/// # Example
///
/// ```
/// use sqip::{Experiment, SqDesign, SweepEngine, SweepMode};
///
/// let experiment = Experiment::new()
///     .workload(sqip::Workload::from_registry("mix:0xfeed:20k")?)
///     .designs([SqDesign::IdealOracle, SqDesign::Indexed3FwdDly]);
///
/// // The generator runs once; both design cells consume the same pass.
/// let shared = SweepEngine::new().run(&experiment)?;
/// // Bit-identical to the per-cell path (pinned by proptest, shown here).
/// let per_cell = SweepEngine::new().mode(SweepMode::PerCell).run(&experiment)?;
/// assert_eq!(shared, per_cell);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SweepEngine {
    threads: Option<usize>,
    mode: SweepMode,
}

impl SweepEngine {
    /// A shared-pass engine with one worker per available core.
    #[must_use]
    pub fn new() -> SweepEngine {
        SweepEngine::default()
    }

    /// Caps the worker-thread count (`1` forces a serial run; results are
    /// identical either way).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> SweepEngine {
        self.threads = Some(threads.max(1));
        self
    }

    /// Selects the execution mode.
    #[must_use]
    pub fn mode(mut self, mode: SweepMode) -> SweepEngine {
        self.mode = mode;
        self
    }

    /// Runs the experiment's sweep. See [`SweepEngine::run_with_telemetry`].
    ///
    /// # Errors
    ///
    /// The first workload or cell failure, in cell order.
    pub fn run(&self, experiment: &Experiment) -> Result<ResultSet, SqipError> {
        self.run_with_telemetry(experiment).map(|(set, _)| set)
    }

    /// Runs the experiment's sweep and returns the shared-pass telemetry
    /// alongside the results.
    ///
    /// Experiments with an observer always take the per-cell path (an
    /// observer watches one cell's own run loop, which a lock-step
    /// scheduler would preempt).
    ///
    /// # Errors
    ///
    /// The first workload or cell failure, in cell order.
    pub fn run_with_telemetry(
        &self,
        experiment: &Experiment,
    ) -> Result<(ResultSet, SweepTelemetry), SqipError> {
        // Engine-level threads win; otherwise the experiment's own
        // setting; otherwise one worker per core.
        let threads = self
            .threads
            .or_else(|| experiment.threads_setting())
            .unwrap_or_else(default_threads);
        if self.mode == SweepMode::PerCell || experiment.observer_fn().is_some() {
            return experiment
                .run_per_cell_on(threads)
                .map(|set| (set, SweepTelemetry::default()));
        }
        let cells = experiment.cells()?;

        // Group cell indices by workload identity (interned name), in
        // first-appearance order; cell order within a group is cell
        // order. Keying by name is sound because `Experiment::cells`
        // rejects two distinct workloads under one name up front — every
        // same-key cell provably shares one `Workload` definition.
        let mut groups: Vec<(&'static str, Vec<usize>)> = Vec::new();
        for (i, cell) in cells.iter().enumerate() {
            let key = cell.workload.key();
            match groups.iter_mut().find(|(k, _)| std::ptr::eq(*k, key)) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((key, vec![i])),
            }
        }

        // Work-stealing over workload groups: few items, lopsided sizes.
        let outcomes = work_steal_map(&groups, threads, |_, (_, idxs)| run_group(&cells, idxs));

        let mut slots: Vec<Option<Result<SimStats, SqipError>>> =
            cells.iter().map(|_| None).collect();
        let mut telemetry = SweepTelemetry::default();
        for outcome in outcomes {
            for (idx, result) in outcome.results {
                slots[idx] = Some(result);
            }
            if let Some(group) = outcome.telemetry {
                telemetry.groups.push(group);
            }
        }
        // (`work_steal_map` returns outcomes in input order, so the
        // telemetry groups are already in first-appearance order.)

        let mut records = Vec::with_capacity(cells.len());
        for (cell, slot) in cells.iter().zip(slots) {
            let stats = slot.expect("every cell produced an outcome")?;
            records.push(RunRecord {
                workload: cell.workload.name().to_string(),
                suite: cell.workload.suite(),
                design: cell.design,
                variant: cell.variant.clone(),
                stats,
            });
        }
        Ok((ResultSet::new(records), telemetry))
    }
}

struct GroupOutcome {
    results: Vec<(usize, Result<SimStats, SqipError>)>,
    telemetry: Option<GroupTelemetry>,
}

/// Runs one workload group on the calling worker thread.
fn run_group(cells: &[Run], idxs: &[usize]) -> GroupOutcome {
    if let [only] = idxs {
        // Single-cell groups take the plain per-cell path: a tee over one
        // consumer is pure overhead.
        return GroupOutcome {
            results: vec![(*only, cells[*only].execute_standalone())],
            telemetry: None,
        };
    }
    let workload = &cells[idxs[0]].workload;

    // Open the group's single upstream pass. A failure here is what every
    // cell would have hit opening its own pass: report it per cell.
    let fail_all = |source: IsaError| GroupOutcome {
        results: idxs
            .iter()
            .map(|&i| {
                (
                    i,
                    Err(SqipError::Workload {
                        name: workload.name().to_string(),
                        source: source.clone(),
                    }),
                )
            })
            .collect(),
        telemetry: None,
    };
    // Materialized workloads trace once per group and stream from the
    // trace; streaming workloads open their registered source.
    let trace: Option<Arc<Trace>> = match workload.trace() {
        None => None,
        Some(Ok(trace)) => Some(trace),
        Some(Err(SqipError::Workload { source, .. })) => return fail_all(source),
        Some(Err(_)) => unreachable!("Workload::trace reports SqipError::Workload"),
    };
    let upstream: Box<dyn TraceSource + '_> = match (&trace, workload) {
        (Some(trace), _) => Box::new(trace.stream()),
        (None, Workload::Source(reg)) => match reg.open() {
            Ok(source) => source,
            Err(e) => return fail_all(e),
        },
        (None, _) => unreachable!("non-streaming workloads always materialize"),
    };

    drive_group(cells, idxs, workload, upstream)
}

/// The lock-step scheduler: one shared pass, one processor per cell,
/// round-robin quanta bounded by the ring window.
fn drive_group(
    cells: &[Run],
    idxs: &[usize],
    workload: &Workload,
    upstream: Box<dyn TraceSource + '_>,
) -> GroupOutcome {
    let n = idxs.len();
    let (tap, feed) = oracle_tap(upstream, RING_CAPACITY);
    let (tee, cursors) = TraceTee::new(tap, n, RING_CAPACITY);
    let cap = tee.capacity() as u64;

    let sim_err = |i: usize| {
        let cell = cells[i].label();
        move |source| SqipError::Sim {
            cell: cell.clone(),
            source,
        }
    };

    let mut procs: Vec<Option<Processor<'_>>> = Vec::with_capacity(n);
    let mut results: Vec<Option<Result<SimStats, SqipError>>> = (0..n).map(|_| None).collect();
    for (cursor, &i) in cursors.into_iter().zip(idxs) {
        match Processor::try_from_shared(cells[i].config.clone(), cursor, feed.clone()) {
            Ok(p) => procs.push(Some(p)),
            Err(e) => {
                // Unreachable through `Experiment` (cells are validated up
                // front), kept total for direct `SweepEngine` users.
                results[procs.len()] = Some(Err(sim_err(i)(e)));
                procs.push(None);
            }
        }
    }

    let fw: Vec<u64> = idxs
        .iter()
        .map(|&i| cells[i].config.fetch_width as u64)
        .collect();
    let mut peak_buffered = vec![0u64; n];
    let mut peak_lag = vec![0u64; n];

    loop {
        let mut any_live = false;
        let mut progressed = false;
        for c in 0..n {
            let Some(p) = procs[c].as_mut() else { continue };
            any_live = true;
            // A consumer still pulling may not run more than a ring ahead
            // of the slowest; one that has drained the stream (the tee is
            // done and it is at the frontier) holds no ring slots hostage
            // and is always eligible.
            let may_pull = !(tee.is_done() && tee.position(c) == tee.pulled());
            if may_pull && tee.position(c) + fw[c] > tee.base() + cap {
                continue;
            }
            progressed = true;
            let mut outcome = None;
            for _ in 0..QUANTUM {
                match p.step() {
                    Ok(StepOutcome::Running) => {
                        peak_buffered[c] = peak_buffered[c].max(p.buffered_records() as u64);
                        if may_pull && tee.position(c) + fw[c] > tee.base() + cap {
                            break; // about to outrun the ring: rotate
                        }
                    }
                    Ok(StepOutcome::Done) => {
                        outcome = Some(Ok(p.stats().clone()));
                        break;
                    }
                    Err(e) => {
                        outcome = Some(Err(sim_err(idxs[c])(e)));
                        break;
                    }
                }
            }
            peak_lag[c] = peak_lag[c].max(tee.pulled().saturating_sub(tee.position(c)));
            if let Some(result) = outcome {
                results[c] = Some(result);
                // Dropping the processor drops its tee cursor, releasing
                // its ring holds so the group never waits on a finished
                // (or failed) cell.
                procs[c] = None;
            }
        }
        if !any_live {
            break;
        }
        assert!(
            progressed,
            "lock-step sweep wedged: no consumer was eligible to run \
             (scheduler invariant violation)"
        );
    }

    let telemetry = GroupTelemetry {
        workload: workload.name().to_string(),
        cells: idxs.iter().map(|&i| cells[i].label()).collect(),
        records_pulled: tee.pulled(),
        ring_capacity: tee.capacity() as u64,
        ring_high_water: tee.high_water() as u64,
        peak_buffered,
        peak_lag,
    };
    GroupOutcome {
        results: idxs
            .iter()
            .zip(results)
            .map(|(&i, r)| (i, r.expect("every live cell ran to an outcome")))
            .collect(),
        telemetry: Some(telemetry),
    }
}

// `Workload::key` lives here to keep the interning dependency local to
// the sweep path.
impl Workload {
    /// The workload's interned identity: sweep groups and trace caches
    /// key on this (`'static`, pointer-stable) handle instead of cloning
    /// name `String`s per cell.
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            Workload::Source(reg) => reg.name(),
            other => intern_name(other.name()),
        }
    }
}
