//! Structured sweep results: grouping, aggregation and serialization.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use sqip_core::{SimStats, SqDesign};
use sqip_workloads::Suite;

use crate::error::SqipError;

/// Geometric mean of a sequence of positive values (1.0 for empty input).
///
/// # Panics
///
/// Panics if any value is non-positive.
#[must_use]
pub fn geomean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for v in values {
        assert!(v > 0.0, "geometric mean requires positive values");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / f64::from(n)).exp()
    }
}

/// One completed sweep cell: where it ran and what it measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Workload name (a Table 3 row, or a custom trace's label).
    pub workload: String,
    /// Suite grouping; `None` for custom traces.
    pub suite: Option<Suite>,
    /// Store-queue design simulated.
    pub design: SqDesign,
    /// Variant label (`"base"` when the experiment declared no variants).
    pub variant: String,
    /// The full statistics of the run.
    pub stats: SimStats,
}

impl RunRecord {
    /// The `workload/design/variant` cell label.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}/{}/{}", self.workload, self.design, self.variant)
    }

    /// Serializes this record to compact JSON — the exact bytes the
    /// record occupies inside [`ResultSet::to_json`], so streamed rows
    /// concatenate back into the batch serialization.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("run records contain only finite numbers")
    }

    /// Parses a record serialized by [`RunRecord::to_json`].
    ///
    /// # Errors
    ///
    /// [`SqipError::Parse`] on malformed JSON or a shape mismatch.
    pub fn from_json(text: &str) -> Result<RunRecord, SqipError> {
        Ok(serde_json::from_str(text)?)
    }

    /// Renders this record as one CSV row (no trailing newline), in the
    /// column order of [`ResultSet::csv_header`].
    #[must_use]
    pub fn to_csv_row(&self) -> String {
        let suite = self.suite.map_or_else(String::new, |s| s.to_string());
        let s = &self.stats;
        format!(
            "{},{},{},{},{},{},{:.6},{},{},{},{},{},{},{},{},{},{}",
            self.workload,
            suite,
            self.design,
            self.variant,
            s.cycles,
            s.committed,
            s.ipc(),
            s.loads,
            s.stores,
            s.loads_forwarded,
            s.mis_forwards,
            s.flushes,
            s.replays,
            s.re_executions,
            s.loads_delayed,
            s.delay_cycles,
            s.partial_stalls,
        )
    }
}

/// The ordered collection of records an [`crate::Experiment`] produced.
///
/// Record order is the experiment's cell order (workloads × designs ×
/// variants), independent of how many threads executed the sweep.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    records: Vec<RunRecord>,
}

impl ResultSet {
    /// Wraps a list of records.
    #[must_use]
    pub fn new(records: Vec<RunRecord>) -> ResultSet {
        ResultSet { records }
    }

    /// All records, in cell order.
    #[must_use]
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Iterates the records in cell order.
    pub fn iter(&self) -> std::slice::Iter<'_, RunRecord> {
        self.records.iter()
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Concatenates two result sets (e.g. a baseline experiment and a
    /// sweep experiment over the same workloads).
    #[must_use]
    pub fn merge(mut self, other: ResultSet) -> ResultSet {
        self.records.extend(other.records);
        self
    }

    /// The first record for `workload` under `design` (any variant).
    #[must_use]
    pub fn get(&self, workload: &str, design: SqDesign) -> Option<&RunRecord> {
        self.records
            .iter()
            .find(|r| r.workload == workload && r.design == design)
    }

    /// The record for an exact (workload, design, variant) cell.
    #[must_use]
    pub fn find(&self, workload: &str, design: SqDesign, variant: &str) -> Option<&RunRecord> {
        self.records
            .iter()
            .find(|r| r.workload == workload && r.design == design && r.variant == variant)
    }

    /// Unique workload names, in first-appearance order.
    #[must_use]
    pub fn workload_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for r in &self.records {
            if !names.contains(&r.workload.as_str()) {
                names.push(&r.workload);
            }
        }
        names
    }

    /// Unique variant labels, in first-appearance order.
    #[must_use]
    pub fn variants(&self) -> Vec<&str> {
        let mut variants: Vec<&str> = Vec::new();
        for r in &self.records {
            if !variants.contains(&r.variant.as_str()) {
                variants.push(&r.variant);
            }
        }
        variants
    }

    /// Groups records by an arbitrary key, preserving cell order within
    /// each group.
    pub fn group_by<K: Ord, F: Fn(&RunRecord) -> K>(&self, key: F) -> BTreeMap<K, Vec<&RunRecord>> {
        let mut groups: BTreeMap<K, Vec<&RunRecord>> = BTreeMap::new();
        for r in &self.records {
            groups.entry(key(r)).or_default().push(r);
        }
        groups
    }

    /// Records grouped by suite (custom traces, which have no suite, are
    /// omitted).
    #[must_use]
    pub fn by_suite(&self) -> Vec<(Suite, Vec<&RunRecord>)> {
        [Suite::Media, Suite::Int, Suite::Fp]
            .into_iter()
            .filter_map(|s| {
                let rows: Vec<&RunRecord> =
                    self.records.iter().filter(|r| r.suite == Some(s)).collect();
                (!rows.is_empty()).then_some((s, rows))
            })
            .collect()
    }

    /// Geometric mean of a per-record metric over records matching
    /// `filter`; `None` when nothing matches.
    pub fn geomean_of<M, P>(&self, metric: M, filter: P) -> Option<f64>
    where
        M: Fn(&RunRecord) -> f64,
        P: Fn(&RunRecord) -> bool,
    {
        let values: Vec<f64> = self
            .records
            .iter()
            .filter(|r| filter(r))
            .map(metric)
            .collect();
        if values.is_empty() {
            None
        } else {
            Some(geomean(values))
        }
    }

    /// Runtime of (`workload`, `design`, `variant`) relative to the same
    /// workload and variant under `baseline` — the paper's
    /// relative-execution-time metric (Figures 4 and 5).
    #[must_use]
    pub fn relative_runtime(
        &self,
        workload: &str,
        variant: &str,
        design: SqDesign,
        baseline: SqDesign,
    ) -> Option<f64> {
        let num = self.find(workload, design, variant)?.stats.cycles as f64;
        let den = self.find(workload, baseline, variant)?.stats.cycles as f64;
        (den > 0.0).then_some(num / den)
    }

    /// Serializes the whole set to compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("result sets contain only finite numbers")
    }

    /// Serializes the whole set to pretty-printed JSON.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("result sets contain only finite numbers")
    }

    /// Parses a set serialized by [`ResultSet::to_json`].
    ///
    /// # Errors
    ///
    /// [`SqipError::Parse`] on malformed JSON or a shape mismatch.
    pub fn from_json(text: &str) -> Result<ResultSet, SqipError> {
        Ok(serde_json::from_str(text)?)
    }

    /// The CSV header row (no trailing newline): identity columns, the
    /// headline counters, and the derived per-run metrics, matching
    /// [`RunRecord::to_csv_row`]'s column order.
    #[must_use]
    pub fn csv_header() -> &'static str {
        "workload,suite,design,variant,cycles,committed,ipc,loads,stores,\
         loads_forwarded,mis_forwards,flushes,replays,re_executions,\
         loads_delayed,delay_cycles,partial_stalls"
    }

    /// Renders the set as CSV: [`ResultSet::csv_header`] then one
    /// [`RunRecord::to_csv_row`] per record, each line `\n`-terminated —
    /// so rows streamed cell-by-cell concatenate into the same bytes.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(Self::csv_header());
        out.push('\n');
        for r in &self.records {
            out.push_str(&r.to_csv_row());
            out.push('\n');
        }
        out
    }
}

impl<'a> IntoIterator for &'a ResultSet {
    type Item = &'a RunRecord;
    type IntoIter = std::slice::Iter<'a, RunRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl Serialize for ResultSet {
    fn serialize(&self) -> serde::Value {
        self.records.serialize()
    }
}

impl Deserialize for ResultSet {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(ResultSet {
            records: Vec::<RunRecord>::deserialize(value)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(workload: &str, suite: Option<Suite>, design: SqDesign, cycles: u64) -> RunRecord {
        RunRecord {
            workload: workload.to_string(),
            suite,
            design,
            variant: "base".to_string(),
            stats: SimStats {
                cycles,
                committed: 100,
                ..SimStats::default()
            },
        }
    }

    fn sample() -> ResultSet {
        ResultSet::new(vec![
            record("gzip", Some(Suite::Int), SqDesign::IdealOracle, 1000),
            record("gzip", Some(Suite::Int), SqDesign::Indexed3FwdDly, 1100),
            record("mesa.t", Some(Suite::Media), SqDesign::IdealOracle, 2000),
            record("mesa.t", Some(Suite::Media), SqDesign::Indexed3FwdDly, 2200),
            record("custom", None, SqDesign::Indexed3FwdDly, 500),
        ])
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean([]) - 1.0).abs() < 1e-12);
        assert!((geomean([5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean([0.0]);
    }

    #[test]
    fn lookups_and_grouping() {
        let rs = sample();
        assert_eq!(rs.len(), 5);
        assert_eq!(
            rs.get("gzip", SqDesign::IdealOracle).unwrap().stats.cycles,
            1000
        );
        assert!(rs.find("gzip", SqDesign::IdealOracle, "nope").is_none());
        assert_eq!(rs.workload_names(), vec!["gzip", "mesa.t", "custom"]);
        let by_suite = rs.by_suite();
        assert_eq!(by_suite.len(), 2);
        assert_eq!(by_suite[0].0, Suite::Media);
        assert_eq!(by_suite[0].1.len(), 2);
        let by_design = rs.group_by(|r| r.design.label());
        assert_eq!(by_design["indexed-3-fwd+dly"].len(), 3);
    }

    #[test]
    fn relative_runtime_matches_hand_math() {
        let rs = sample();
        let rel = rs
            .relative_runtime(
                "gzip",
                "base",
                SqDesign::Indexed3FwdDly,
                SqDesign::IdealOracle,
            )
            .unwrap();
        assert!((rel - 1.1).abs() < 1e-12);
        assert!(rs
            .relative_runtime(
                "gzip",
                "base",
                SqDesign::Associative3,
                SqDesign::IdealOracle
            )
            .is_none());
    }

    #[test]
    fn geomean_of_selects_and_aggregates() {
        let rs = sample();
        let g = rs
            .geomean_of(
                |r| r.stats.cycles as f64,
                |r| r.design == SqDesign::IdealOracle,
            )
            .unwrap();
        assert!((g - (1000.0f64 * 2000.0).sqrt()).abs() < 1e-9);
        assert!(rs.geomean_of(|_| 1.0, |_| false).is_none());
    }

    #[test]
    fn json_round_trips() {
        let rs = sample();
        let back = ResultSet::from_json(&rs.to_json()).unwrap();
        assert_eq!(back, rs);
        let back = ResultSet::from_json(&rs.to_json_pretty()).unwrap();
        assert_eq!(back, rs);
        assert!(ResultSet::from_json("{not json").is_err());
    }

    #[test]
    fn csv_has_header_and_one_row_per_record() {
        let rs = sample();
        let csv = rs.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].starts_with("workload,suite,design,"));
        assert!(lines[1].starts_with("gzip,Int,ideal-oracle,base,1000,100,0.1"));
        assert!(lines[5].starts_with("custom,,indexed-3-fwd+dly,base,500"));
    }

    #[test]
    fn merge_preserves_order() {
        let a = sample();
        let b = ResultSet::new(vec![record("x", None, SqDesign::Associative3, 9)]);
        let merged = a.clone().merge(b);
        assert_eq!(merged.len(), 6);
        assert_eq!(merged.records()[5].workload, "x");
    }
}
