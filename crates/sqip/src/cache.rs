//! The content-addressed result cache: finished sweep cells persist as
//! small JSON artifacts keyed by a digest of their full identity, so
//! re-running an experiment only simulates the cells that changed.
//!
//! A cell's **cache key** is the FNV-1a-64 digest (the same [`Fnv`] the
//! snapshot container uses for its payload checksum) over a canonical
//! encoding of everything that determines its result: the workload name,
//! the design name, the variant label, and the cell's fully-resolved
//! [`SimConfig`](sqip_core::SimConfig) serialized to JSON. Because the
//! simulator is deterministic, identical keys mean identical results —
//! and any knob change (a different FSP capacity, a different engine)
//! changes the config JSON and therefore the key, so stale entries are
//! structurally unreachable rather than invalidated.
//!
//! Entries are written atomically (temp file + rename) and validated on
//! load: an entry whose recorded identity does not match the requesting
//! cell — a digest collision, a truncated write, hand-edited JSON — is
//! treated as a miss, never an error. The cache is therefore safe to
//! share between concurrent sweeps and safe to delete at any time.

use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use sqip_snapshot::Fnv;

use crate::error::SqipError;
use crate::experiment::Run;
use crate::results::RunRecord;

/// What [`Experiment::run_cached`](crate::Experiment::run_cached) did:
/// how many cells were simulated versus answered from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheOutcome {
    /// Cells that were actually simulated (cache misses).
    pub executed: usize,
    /// Cells answered from the cache without simulating (hits).
    pub cached: usize,
}

impl CacheOutcome {
    /// Total cells the sweep covered.
    #[must_use]
    pub fn total(&self) -> usize {
        self.executed + self.cached
    }
}

/// The on-disk shape of one cache entry: the result plus the identity it
/// was computed under, echoed back so loads can reject digest collisions
/// and stale hand-copied files.
#[derive(Serialize, Deserialize)]
struct CacheEntry {
    /// The cell's `workload/design/variant` label.
    label: String,
    /// The cell's canonical configuration JSON.
    config: String,
    /// The cell's result.
    record: RunRecord,
}

/// A directory of content-addressed sweep results.
///
/// ```
/// use sqip::{by_name, CacheDir, Experiment, SqDesign};
///
/// let dir = tempdir();
/// let cache = CacheDir::open(&dir)?;
/// let exp = Experiment::new()
///     .workload(by_name("gzip").unwrap().with_iterations(100))
///     .designs([SqDesign::Associative3, SqDesign::Indexed3FwdDly]);
///
/// let (cold, first) = exp.run_cached(&cache)?;
/// assert_eq!((first.executed, first.cached), (2, 0));
///
/// // A warm re-run simulates nothing and returns identical results.
/// let (warm, second) = exp.run_cached(&cache)?;
/// assert_eq!((second.executed, second.cached), (0, 2));
/// assert_eq!(warm.to_json(), cold.to_json());
/// # std::fs::remove_dir_all(&dir)?;
/// # fn tempdir() -> std::path::PathBuf {
/// #     std::env::temp_dir().join(format!("sqip-cache-doc-{}", std::process::id()))
/// # }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CacheDir {
    root: PathBuf,
}

impl CacheDir {
    /// Opens (creating if necessary) a cache directory.
    ///
    /// # Errors
    ///
    /// [`SqipError::Io`] if the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<CacheDir, SqipError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(CacheDir { root })
    }

    /// The cache's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The content-addressed key of a sweep cell: 16 lowercase hex digits
    /// of the FNV-1a-64 digest over its canonical identity encoding
    /// (workload name, design name, variant label, config JSON — each
    /// NUL-terminated).
    #[must_use]
    pub fn key_of(run: &Run) -> String {
        let mut fnv = Fnv::new();
        let mut eat = |part: &str| {
            fnv.update(part.as_bytes());
            fnv.update(&[0]);
        };
        eat(run.workload.name());
        eat(&run.design.to_string());
        eat(&run.variant);
        eat(&config_json(run));
        fnv.hex()
    }

    /// The entry path a cell would occupy.
    #[must_use]
    pub fn path_of(&self, run: &Run) -> PathBuf {
        self.root.join(format!("{}.json", CacheDir::key_of(run)))
    }

    /// Looks `run` up: `Some(record)` only for a well-formed entry whose
    /// recorded identity matches the cell exactly. Absent, unreadable,
    /// malformed, or mismatched entries are all misses.
    #[must_use]
    pub fn load(&self, run: &Run) -> Option<RunRecord> {
        let text = fs::read_to_string(self.path_of(run)).ok()?;
        let entry: CacheEntry = serde_json::from_str(&text).ok()?;
        let valid = entry.label == run.label() && entry.config == config_json(run);
        valid.then_some(entry.record)
    }

    /// Persists a finished cell. The write is atomic (temp file + rename
    /// within the cache directory), so concurrent sweeps sharing a cache
    /// never observe partial entries.
    ///
    /// # Errors
    ///
    /// [`SqipError::Io`] if the entry cannot be written.
    pub fn store(&self, run: &Run, record: &RunRecord) -> Result<(), SqipError> {
        let entry = CacheEntry {
            label: run.label(),
            config: config_json(run),
            record: record.clone(),
        };
        let path = self.path_of(run);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        fs::write(
            &tmp,
            serde_json::to_string(&entry).expect("entries serialize"),
        )?;
        fs::rename(&tmp, &path)?;
        Ok(())
    }
}

/// The canonical configuration encoding cache identity is computed over.
fn config_json(run: &Run) -> String {
    serde_json::to_string(&run.config).expect("configurations serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use sqip_core::SqDesign;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqip-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn one_cell() -> Run {
        Experiment::new()
            .workload(sqip_workloads::by_name("gzip").unwrap().with_iterations(50))
            .design(SqDesign::Associative3)
            .cells()
            .unwrap()
            .remove(0)
    }

    #[test]
    fn keys_are_stable_and_identity_sensitive() {
        let run = one_cell();
        assert_eq!(CacheDir::key_of(&run), CacheDir::key_of(&run));
        assert_eq!(CacheDir::key_of(&run).len(), 16);

        let mut other = run.clone();
        other.config.sq_size += 1;
        assert_ne!(CacheDir::key_of(&run), CacheDir::key_of(&other));
    }

    #[test]
    fn store_then_load_round_trips_and_rejects_mismatches() {
        let dir = scratch("roundtrip");
        let cache = CacheDir::open(&dir).unwrap();
        let run = one_cell();
        let record = RunRecord {
            workload: run.workload.name().to_string(),
            suite: run.workload.suite(),
            design: run.design,
            variant: run.variant.clone(),
            stats: sqip_core::SimStats::default(),
        };
        assert!(cache.load(&run).is_none(), "cold cache misses");
        cache.store(&run, &record).unwrap();
        assert_eq!(cache.load(&run), Some(record));

        // A corrupted entry is a miss, not an error.
        fs::write(cache.path_of(&run), "{not json").unwrap();
        assert!(cache.load(&run).is_none());

        // An entry whose body belongs to a different identity is a miss.
        let mut other = run.clone();
        other.config.sq_size += 1;
        let entry = fs::read_to_string({
            let fresh = CacheDir::open(&dir).unwrap();
            let rec = RunRecord {
                workload: run.workload.name().to_string(),
                suite: run.workload.suite(),
                design: run.design,
                variant: run.variant.clone(),
                stats: sqip_core::SimStats::default(),
            };
            fresh.store(&run, &rec).unwrap();
            fresh.path_of(&run)
        })
        .unwrap();
        fs::write(cache.path_of(&other), entry).unwrap();
        assert!(cache.load(&other).is_none(), "identity mismatch is a miss");
        fs::remove_dir_all(&dir).unwrap();
    }
}
