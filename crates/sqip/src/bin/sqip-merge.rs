//! `sqip-merge` — joins shard artifacts back into the full sweep.
//!
//! Each sharded invocation of an experiment (`Experiment::run_shard`, or
//! a regenerator binary's `--shard i/n` flag) writes one JSON artifact.
//! This tool validates that a set of artifacts forms a complete,
//! consistent split and emits the merged [`ResultSet`](sqip::ResultSet)
//! — byte-identical to the unsharded run's output, which CI diffs to
//! pin.
//!
//! ```text
//! usage: sqip-merge [--csv] [--pretty] [--out FILE] <shard.json>...
//!
//!   --csv     emit CSV (with header) instead of compact JSON
//!   --pretty  emit human-readable JSON
//!   --out     write to FILE instead of stdout
//! ```
//!
//! Exit codes: 0 on success, 1 on inconsistent or incomplete artifacts,
//! 2 on bad flags.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use sqip::{merge_shards, ShardResult};

struct Args {
    csv: bool,
    pretty: bool,
    out: Option<String>,
    inputs: Vec<String>,
}

fn parse(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut parsed = Args {
        csv: false,
        pretty: false,
        out: None,
        inputs: Vec::new(),
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--csv" => parsed.csv = true,
            "--pretty" => parsed.pretty = true,
            "--out" => {
                parsed.out = Some(it.next().ok_or("--out requires a file path")?);
            }
            "--help" | "-h" => {
                println!("usage: sqip-merge [--csv] [--pretty] [--out FILE] <shard.json>...");
                std::process::exit(0);
            }
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            _ => parsed.inputs.push(arg),
        }
    }
    if parsed.csv && parsed.pretty {
        return Err("--csv and --pretty are mutually exclusive".to_string());
    }
    if parsed.inputs.is_empty() {
        return Err("no shard artifacts given".to_string());
    }
    Ok(parsed)
}

fn run(args: &Args) -> Result<(), String> {
    let mut shards = Vec::with_capacity(args.inputs.len());
    for path in &args.inputs {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        shards.push(ShardResult::from_json(&text).map_err(|e| format!("{path}: {e}"))?);
    }
    let merged = merge_shards(shards).map_err(|e| e.to_string())?;
    let rendered = if args.csv {
        merged.to_csv()
    } else if args.pretty {
        let mut text = merged.to_json_pretty();
        text.push('\n');
        text
    } else {
        let mut text = merged.to_json();
        text.push('\n');
        text
    };
    match &args.out {
        Some(path) => std::fs::write(path, rendered).map_err(|e| format!("{path}: {e}"))?,
        None => print!("{rendered}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
