//! The composable experiment builder: cartesian sweeps of workloads ×
//! designs × config variants, executed in parallel with deterministic
//! results.

use std::collections::BTreeMap;
use std::sync::Arc;

use sqip_core::{Processor, SimConfig, SimObserver, SimStats, SqDesign};
use sqip_isa::Trace;
use sqip_workloads::{RegisteredWorkload, Suite, WorkloadRegistry, WorkloadSpec};

use sqip_core::ObserverAction;

use crate::cache::{CacheDir, CacheOutcome};
use crate::error::SqipError;
use crate::parallel::{default_threads, parallel_map};
use crate::results::{ResultSet, RunRecord};
use crate::shard::{ShardResult, ShardSpec};
use crate::sweep::{emit_cell_event, CancelToken, CellEventFn};

/// A config mutation shared across sweep cells.
pub type ConfigFn = Arc<dyn Fn(&mut SimConfig) + Send + Sync>;

/// A factory producing one observer per sweep cell (called on the worker
/// thread that executes the cell).
pub type ObserverFn = Arc<dyn Fn(&Run) -> Box<dyn SimObserver> + Send + Sync>;

/// The variant label used when an experiment declares no
/// [`Experiment::vary`] axis.
pub const BASE_VARIANT: &str = "base";

/// One point on the experiment's workload axis: a synthetic benchmark
/// model, a pre-built custom trace, or a streaming source resolved from
/// the [`WorkloadRegistry`].
#[derive(Clone)]
pub enum Workload {
    /// A synthetic Table 3 benchmark model (traced on demand, once per
    /// experiment, however many cells share it).
    Spec(WorkloadSpec),
    /// A pre-built golden trace under a display name.
    Trace {
        /// Display name used in records and labels.
        name: String,
        /// The shared trace.
        trace: Arc<Trace>,
    },
    /// A streaming workload: each cell opens a fresh record stream from
    /// the entry's factory and pulls it through the simulator in
    /// O(window) memory — nothing is materialized, so run length is
    /// unbounded.
    Source(RegisteredWorkload),
}

impl Workload {
    /// Wraps a pre-built trace as a workload.
    #[must_use]
    pub fn from_trace(name: impl Into<String>, trace: Trace) -> Workload {
        Workload::Trace {
            name: name.into(),
            trace: Arc::new(trace),
        }
    }

    /// Resolves `name` in the global [`WorkloadRegistry`] — a registered
    /// workload (Table 3 model, generator-catalogue entry, or anything
    /// registered at runtime) or a `mix:`/`chase:`/`stride:` generator
    /// name — as a streaming workload.
    ///
    /// # Errors
    ///
    /// [`SqipError::UnknownWorkload`] if the name resolves to nothing.
    pub fn from_registry(name: &str) -> Result<Workload, SqipError> {
        WorkloadRegistry::global()
            .resolve(name)
            .map(Workload::Source)
            .map_err(|e| SqipError::UnknownWorkload(e.to_string()))
    }

    /// The workload's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Workload::Spec(spec) => &spec.name,
            Workload::Trace { name, .. } => name,
            Workload::Source(reg) => reg.name(),
        }
    }

    /// The suite grouping, when the workload models a Table 3 row.
    #[must_use]
    pub fn suite(&self) -> Option<Suite> {
        match self {
            Workload::Spec(spec) => Some(spec.suite),
            Workload::Trace { .. } => None,
            Workload::Source(reg) => reg.suite(),
        }
    }

    /// Whether cells stream this workload per run instead of sharing a
    /// materialized trace.
    #[must_use]
    pub fn is_streaming(&self) -> bool {
        matches!(self, Workload::Source(_))
    }

    /// Builds (or shares) the golden trace, for workloads that
    /// materialize; `None` for streaming workloads.
    pub(crate) fn trace(&self) -> Option<Result<Arc<Trace>, SqipError>> {
        match self {
            Workload::Spec(spec) => {
                Some(
                    spec.trace()
                        .map(Arc::new)
                        .map_err(|source| SqipError::Workload {
                            name: spec.name.clone(),
                            source,
                        }),
                )
            }
            Workload::Trace { trace, .. } => Some(Ok(Arc::clone(trace))),
            Workload::Source(_) => None,
        }
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Workload::Spec(spec) => f.debug_tuple("Spec").field(&spec.name).finish(),
            Workload::Trace { name, trace } => f
                .debug_struct("Trace")
                .field("name", name)
                .field("len", &trace.len())
                .finish(),
            Workload::Source(reg) => f.debug_tuple("Source").field(&reg.name()).finish(),
        }
    }
}

impl From<WorkloadSpec> for Workload {
    fn from(spec: WorkloadSpec) -> Workload {
        Workload::Spec(spec)
    }
}

impl From<&WorkloadSpec> for Workload {
    fn from(spec: &WorkloadSpec) -> Workload {
        Workload::Spec(spec.clone())
    }
}

impl From<RegisteredWorkload> for Workload {
    fn from(reg: RegisteredWorkload) -> Workload {
        Workload::Source(reg)
    }
}

/// A named configuration variant (one point on the `vary` axis).
#[derive(Clone)]
struct Variant {
    name: String,
    mutate: Option<ConfigFn>,
}

/// One fully-resolved sweep cell: a workload under a concrete
/// configuration.
#[derive(Clone)]
pub struct Run {
    /// The workload to simulate.
    pub workload: Workload,
    /// The store-queue design under test.
    pub design: SqDesign,
    /// The variant label.
    pub variant: String,
    /// The concrete, validated configuration.
    pub config: SimConfig,
}

impl Run {
    /// The `workload/design/variant` cell label used in errors and logs.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}/{}/{}", self.workload.name(), self.design, self.variant)
    }

    /// Packages finished statistics as this cell's [`RunRecord`].
    pub(crate) fn record(&self, stats: SimStats) -> RunRecord {
        RunRecord {
            workload: self.workload.name().to_string(),
            suite: self.workload.suite(),
            design: self.design,
            variant: self.variant.clone(),
            stats,
        }
    }

    /// Executes this cell: against the shared materialized trace when one
    /// is given, or by opening and streaming the workload's source.
    ///
    /// A `token` makes the run cooperative: without an observer it is
    /// checked at every [`Processor::step`] boundary; with one, at each
    /// observer interval (the exact-boundary [`Processor::run_observed`]
    /// loop drives the run). Either way a cancelled cell reports
    /// [`SqipError::Cancelled`].
    fn execute(
        &self,
        trace: Option<&Trace>,
        observer: Option<&ObserverFn>,
        token: Option<&CancelToken>,
    ) -> Result<SimStats, SqipError> {
        let sim = |source| SqipError::Sim {
            cell: self.label(),
            source,
        };
        if token.is_some_and(CancelToken::is_cancelled) {
            return Err(SqipError::Cancelled { cell: self.label() });
        }
        let processor = match (&self.workload, trace) {
            // Streaming workloads always open their own source — even if
            // a same-named materialized trace exists, it is not theirs.
            (Workload::Source(reg), _) => {
                let source = reg.open().map_err(|source| SqipError::Workload {
                    name: reg.name().to_string(),
                    source,
                })?;
                Processor::try_from_source(self.config.clone(), source).map_err(&sim)?
            }
            (_, Some(trace)) => Processor::try_new(self.config.clone(), trace).map_err(&sim)?,
            (workload, None) => {
                // Unreachable through the public paths (the sweep always
                // materializes non-streaming workloads), kept total for
                // robustness.
                let trace = workload.trace().expect("non-streaming workload")?;
                return self.execute(Some(&trace), observer, token);
            }
        };
        match (observer, token) {
            (None, None) => processor.try_run().map_err(&sim),
            (None, Some(token)) => {
                let mut p = processor;
                loop {
                    if token.is_cancelled() {
                        return Err(SqipError::Cancelled { cell: self.label() });
                    }
                    match p.step().map_err(&sim)? {
                        sqip_core::StepOutcome::Running => {}
                        sqip_core::StepOutcome::Done => return Ok(p.stats().clone()),
                    }
                }
            }
            (Some(factory), token) => {
                let mut obs = factory(self);
                let stats = match token {
                    None => processor.run_observed(obs.as_mut()).map_err(&sim)?,
                    Some(token) => {
                        let mut cancelling = CancellingObserver {
                            inner: obs.as_mut(),
                            token,
                        };
                        let stats = processor.run_observed(&mut cancelling).map_err(&sim)?;
                        if token.is_cancelled() {
                            return Err(SqipError::Cancelled { cell: self.label() });
                        }
                        stats
                    }
                };
                Ok(stats)
            }
        }
    }

    /// Builds the trace (or opens the stream) and executes this cell
    /// standalone (outside an [`Experiment`] sweep).
    ///
    /// # Errors
    ///
    /// Propagates workload-tracing and simulation errors.
    pub fn execute_standalone(&self) -> Result<SimStats, SqipError> {
        self.execute_controlled(None, None)
    }

    /// [`Run::execute_standalone`] with an optional observer factory and
    /// cancellation token (the sweep engine's single-cell-group path).
    pub(crate) fn execute_controlled(
        &self,
        observer: Option<&ObserverFn>,
        token: Option<&CancelToken>,
    ) -> Result<SimStats, SqipError> {
        match self.workload.trace() {
            Some(trace) => self.execute(Some(trace?.as_ref()), observer, token),
            None => self.execute(None, observer, token),
        }
    }
}

/// Wraps a cell's observer so a [`CancelToken`] can abort the exact-
/// boundary [`Processor::run_observed`] loop at its next interval.
struct CancellingObserver<'a> {
    inner: &'a mut dyn SimObserver,
    token: &'a CancelToken,
}

impl SimObserver for CancellingObserver<'_> {
    fn interval(&self) -> u64 {
        self.inner.interval()
    }

    fn on_start(&mut self, config: &SimConfig, trace_len: Option<usize>) {
        self.inner.on_start(config, trace_len);
    }

    fn on_interval(&mut self, cycle: u64, stats: &SimStats) -> ObserverAction {
        if self.token.is_cancelled() {
            return ObserverAction::Abort;
        }
        self.inner.on_interval(cycle, stats)
    }

    fn on_finish(&mut self, stats: &SimStats) {
        self.inner.on_finish(stats);
    }
}

impl std::fmt::Debug for Run {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Run")
            .field("cell", &self.label())
            .finish_non_exhaustive()
    }
}

/// A declarative simulation sweep.
///
/// An experiment is the cartesian product of three axes:
///
/// * **workloads** — Table 3 benchmark models or custom traces,
/// * **designs** — the [`SqDesign`]s under test,
/// * **variants** — named configuration mutations ([`Experiment::vary`]);
///   with no variants declared there is a single implicit
///   [`BASE_VARIANT`].
///
/// [`Experiment::run`] traces each workload once, executes every cell (in
/// parallel across worker threads), and collects a [`ResultSet`] whose
/// record order — and contents, since the simulator is deterministic — is
/// independent of thread count.
///
/// # Example
///
/// ```
/// use sqip::{Experiment, SqDesign};
///
/// let results = Experiment::new()
///     .workload(sqip::by_name("gzip").unwrap().with_iterations(200))
///     .designs([SqDesign::IdealOracle, SqDesign::Indexed3FwdDly])
///     .run()?;
/// assert_eq!(results.len(), 2);
/// let rel = results
///     .relative_runtime("gzip", "base", SqDesign::Indexed3FwdDly, SqDesign::IdealOracle)
///     .unwrap();
/// assert!(rel >= 0.95);
/// # Ok::<(), sqip::SqipError>(())
/// ```
#[derive(Clone, Default)]
pub struct Experiment {
    workloads: Vec<Workload>,
    designs: Vec<SqDesign>,
    variants: Vec<Variant>,
    base: Vec<ConfigFn>,
    threads: Option<usize>,
    observer: Option<ObserverFn>,
}

impl Experiment {
    /// An empty experiment.
    #[must_use]
    pub fn new() -> Experiment {
        Experiment::default()
    }

    /// Adds one workload.
    #[must_use]
    pub fn workload(mut self, workload: impl Into<Workload>) -> Experiment {
        self.workloads.push(workload.into());
        self
    }

    /// Adds many workloads.
    #[must_use]
    pub fn workloads<I>(mut self, workloads: I) -> Experiment
    where
        I: IntoIterator,
        I::Item: Into<Workload>,
    {
        self.workloads.extend(workloads.into_iter().map(Into::into));
        self
    }

    /// Adds one design.
    #[must_use]
    pub fn design(mut self, design: SqDesign) -> Experiment {
        self.designs.push(design);
        self
    }

    /// Adds many designs.
    #[must_use]
    pub fn designs(mut self, designs: impl IntoIterator<Item = SqDesign>) -> Experiment {
        self.designs.extend(designs);
        self
    }

    /// Applies a configuration mutation to *every* cell (machine-wide
    /// knobs shared by the whole sweep). Applied before variant mutations,
    /// in call order.
    #[must_use]
    pub fn configure(mut self, f: impl Fn(&mut SimConfig) + Send + Sync + 'static) -> Experiment {
        self.base.push(Arc::new(f));
        self
    }

    /// Adds a named configuration variant: one value on the sweep's
    /// variant axis (e.g. an FSP capacity in a Figure 5 sweep). Each call
    /// adds one variant; cells are produced for every (workload, design,
    /// variant) combination.
    #[must_use]
    pub fn vary(
        mut self,
        name: impl Into<String>,
        f: impl Fn(&mut SimConfig) + Send + Sync + 'static,
    ) -> Experiment {
        self.variants.push(Variant {
            name: name.into(),
            mutate: Some(Arc::new(f)),
        });
        self
    }

    /// Caps the worker-thread count (default: one per available core).
    /// `1` forces a serial run; results are identical either way.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Experiment {
        self.threads = Some(threads.max(1));
        self
    }

    /// Installs an observer factory: each cell gets one observer built by
    /// `factory` (on the executing worker thread), receiving progress
    /// callbacks and the ability to abort its run early.
    #[must_use]
    pub fn observe(
        mut self,
        factory: impl Fn(&Run) -> Box<dyn SimObserver> + Send + Sync + 'static,
    ) -> Experiment {
        self.observer = Some(Arc::new(factory));
        self
    }

    /// Resolves the cartesian product into concrete, validated sweep
    /// cells, in deterministic order (workloads × designs × variants).
    ///
    /// # Errors
    ///
    /// [`SqipError::Config`] if the experiment has no workloads or no
    /// designs; [`SqipError::Sim`] if a cell's configuration fails
    /// validation.
    pub fn cells(&self) -> Result<Vec<Run>, SqipError> {
        if self.workloads.is_empty() {
            return Err(SqipError::Config("experiment has no workloads".into()));
        }
        if self.designs.is_empty() {
            return Err(SqipError::Config("experiment has no designs".into()));
        }
        // Traces are shared per workload *name* during execution, so two
        // distinct workloads under one name would silently simulate the
        // same trace; reject the ambiguity up front.
        for (i, w) in self.workloads.iter().enumerate() {
            if self.workloads[..i].iter().any(|p| p.name() == w.name()) {
                return Err(SqipError::Config(format!(
                    "duplicate workload name `{}`",
                    w.name()
                )));
            }
        }
        let base_variant = [Variant {
            name: BASE_VARIANT.to_string(),
            mutate: None,
        }];
        let variants: &[Variant] = if self.variants.is_empty() {
            &base_variant
        } else {
            &self.variants
        };
        let mut cells =
            Vec::with_capacity(self.workloads.len() * self.designs.len() * variants.len());
        for workload in &self.workloads {
            for &design in &self.designs {
                for variant in variants {
                    let mut config = SimConfig::with_design(design);
                    for f in &self.base {
                        f(&mut config);
                    }
                    if let Some(mutate) = &variant.mutate {
                        mutate(&mut config);
                    }
                    let run = Run {
                        workload: workload.clone(),
                        design,
                        variant: variant.name.clone(),
                        config,
                    };
                    run.config.try_validate().map_err(|source| SqipError::Sim {
                        cell: run.label(),
                        source,
                    })?;
                    cells.push(run);
                }
            }
        }
        Ok(cells)
    }

    /// Executes the sweep and collects the results in cell order.
    ///
    /// Cells are grouped by workload and each group's record stream is
    /// pulled **once**, driving all of the group's processors in
    /// lock-step off the shared pass (see [`crate::SweepEngine`]); groups
    /// are distributed over worker threads by a work-stealing queue.
    /// Because the simulator is deterministic and results are collected
    /// by cell index, the returned [`ResultSet`] is bit-identical for any
    /// thread count — and bit-identical to the per-cell path
    /// ([`Experiment::run_per_cell`]), pinned by proptest.
    ///
    /// Experiments with an observer also run shared-pass: observers are
    /// driven from the lock-step scheduler, with `on_interval` fired at
    /// the first step boundary at or past each interval (see
    /// [`crate::SweepEngine::run_with_telemetry`]; use
    /// [`Experiment::run_per_cell`] for exact-boundary sampling).
    ///
    /// # Errors
    ///
    /// The first workload or cell failure, in cell order.
    pub fn run(&self) -> Result<ResultSet, SqipError> {
        crate::sweep::SweepEngine::new().run(self)
    }

    /// Executes the sweep serially on the calling thread, one independent
    /// pass per cell. Exists so tests and debugging sessions can pin the
    /// execution mode explicitly; results are identical to
    /// [`Experiment::run`].
    ///
    /// # Errors
    ///
    /// See [`Experiment::run`].
    pub fn run_serial(&self) -> Result<ResultSet, SqipError> {
        self.run_per_cell_on(1)
    }

    /// Executes every cell independently (its own stream, its own oracle
    /// pass) across the configured worker threads — the pre-sweep-engine
    /// behaviour, kept as the shared-pass path's differential baseline.
    ///
    /// # Errors
    ///
    /// See [`Experiment::run`].
    pub fn run_per_cell(&self) -> Result<ResultSet, SqipError> {
        self.run_per_cell_on(self.threads.unwrap_or_else(default_threads))
    }

    /// The observer factory, if one was installed.
    pub(crate) fn observer_fn(&self) -> Option<&ObserverFn> {
        self.observer.as_ref()
    }

    /// The experiment's own thread-count setting, if one was configured.
    pub(crate) fn threads_setting(&self) -> Option<usize> {
        self.threads
    }

    pub(crate) fn run_per_cell_on(&self, threads: usize) -> Result<ResultSet, SqipError> {
        self.run_per_cell_inner(threads, None, None)
    }

    pub(crate) fn run_per_cell_inner(
        &self,
        threads: usize,
        token: Option<&CancelToken>,
        events: Option<&CellEventFn>,
    ) -> Result<ResultSet, SqipError> {
        let cells = self.cells()?;
        let traces = trace_shared(&cells, threads)?;

        // Execute every cell against the shared traces (or its stream).
        let observer = self.observer.as_ref();
        let outcomes = parallel_map(&cells, threads, |index, cell| {
            let trace = traces.get(cell.workload.key()).map(Arc::as_ref);
            let outcome = cell.execute(trace, observer, token);
            emit_cell_event(events, cell, index, &outcome);
            outcome
        });

        let mut records = Vec::with_capacity(cells.len());
        for (cell, outcome) in cells.iter().zip(outcomes) {
            records.push(cell.record(outcome?));
        }
        Ok(ResultSet::new(records))
    }

    /// Runs the sweep through a content-addressed result cache: cells
    /// whose results are already cached are answered without simulating,
    /// the rest execute (per-cell, across the configured threads) and are
    /// persisted for the next run.
    ///
    /// The returned [`ResultSet`] is bit-identical to [`Experiment::run`]
    /// — cached or not — because the simulator is deterministic and
    /// [`RunRecord`]s round-trip losslessly through the cache's JSON (see
    /// [`CacheDir`] for the worked example). Observers are not consulted
    /// for cached cells, so experiments with an observer should use
    /// [`Experiment::run`] instead.
    ///
    /// # Errors
    ///
    /// The first workload, cell, or cache-write failure, in cell order.
    pub fn run_cached(&self, cache: &CacheDir) -> Result<(ResultSet, CacheOutcome), SqipError> {
        let cells = self.cells()?;
        let threads = self.threads.unwrap_or_else(default_threads);
        let mut slots: Vec<Option<RunRecord>> = cells.iter().map(|c| cache.load(c)).collect();
        let misses: Vec<(usize, &Run)> = slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.is_none())
            .map(|(i, _)| (i, &cells[i]))
            .collect();
        let outcome = CacheOutcome {
            executed: misses.len(),
            cached: cells.len() - misses.len(),
        };
        let traces = trace_shared(misses.iter().map(|&(_, c)| c), threads)?;
        let stats = parallel_map(&misses, threads, |_, &(_, cell)| {
            let trace = traces.get(cell.workload.key()).map(Arc::as_ref);
            cell.execute(trace, None, None)
        });
        for (&(index, cell), stats) in misses.iter().zip(stats) {
            let record = cell.record(stats?);
            cache.store(cell, &record)?;
            slots[index] = Some(record);
        }
        let records = slots
            .into_iter()
            .map(|slot| slot.expect("every cell was cached or executed"))
            .collect();
        Ok((ResultSet::new(records), outcome))
    }

    /// Runs only the cells owned by `shard` (see [`ShardSpec::owns`]),
    /// producing the artifact [`merge_shards`](crate::merge_shards) (or
    /// the `sqip-merge` binary) reassembles into the full sweep.
    ///
    /// Ownership is decided per cell from its label digest, so the `n`
    /// shards of a split partition the sweep exactly, whatever machines
    /// or thread counts run them, and the merged results are
    /// byte-identical to an unsharded [`Experiment::run`].
    ///
    /// # Errors
    ///
    /// The first workload or owned-cell failure, in cell order.
    pub fn run_shard(&self, shard: ShardSpec) -> Result<ShardResult, SqipError> {
        let cells = self.cells()?;
        let threads = self.threads.unwrap_or_else(default_threads);
        let owned: Vec<(usize, &Run)> = cells
            .iter()
            .enumerate()
            .filter(|(_, cell)| shard.owns(&cell.label()))
            .collect();
        let traces = trace_shared(owned.iter().map(|&(_, c)| c), threads)?;
        let stats = parallel_map(&owned, threads, |_, &(_, cell)| {
            let trace = traces.get(cell.workload.key()).map(Arc::as_ref);
            cell.execute(trace, None, None)
        });
        let mut indices = Vec::with_capacity(owned.len());
        let mut records = Vec::with_capacity(owned.len());
        for (&(index, cell), stats) in owned.iter().zip(stats) {
            indices.push(index);
            records.push(cell.record(stats?));
        }
        Ok(ShardResult {
            shard: shard.index,
            of: shard.of,
            total_cells: cells.len(),
            indices,
            records,
        })
    }
}

/// Traces each distinct materializing workload among `cells` once, in
/// parallel. Streaming workloads skip this: every cell opens its own
/// source, so nothing trace-shaped is ever held for them. The map is
/// keyed by the workload's interned identity, so per-cell dispatch is a
/// pointer-stable probe with no `String` clones.
fn trace_shared<'a>(
    cells: impl IntoIterator<Item = &'a Run>,
    threads: usize,
) -> Result<BTreeMap<&'static str, Arc<Trace>>, SqipError> {
    let mut unique: Vec<(&'static str, &Workload)> = Vec::new();
    for cell in cells {
        let key = cell.workload.key();
        if !cell.workload.is_streaming() && !unique.iter().any(|&(k, _)| std::ptr::eq(k, key)) {
            unique.push((key, &cell.workload));
        }
    }
    parallel_map(&unique, threads, |_, (key, w)| {
        w.trace()
            .expect("only materializing workloads are pre-traced")
            .map(|t| (*key, t))
    })
    .into_iter()
    .collect()
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("workloads", &self.workloads.len())
            .field("designs", &self.designs)
            .field(
                "variants",
                &self
                    .variants
                    .iter()
                    .map(|v| v.name.as_str())
                    .collect::<Vec<_>>(),
            )
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}
