//! `sqip` — the experiment-driver facade for the store-queue index
//! prediction reproduction (Sha, Martin & Roth, MICRO-38 2005).
//!
//! Everything the paper's evaluation does — Figure 4's design comparison,
//! Table 3's prediction diagnostics, Figure 5's sensitivity sweeps, the
//! ablations — is a *sweep*: some workloads × some store-queue designs ×
//! some configuration variants, each cell an independent deterministic
//! simulation. This crate expresses that directly:
//!
//! * [`Experiment`] — a builder for cartesian sweeps, executed in
//!   parallel with results that are bit-identical to a serial run;
//! * [`ResultSet`] / [`RunRecord`] — structured results with grouping,
//!   [`geomean`] aggregation, relative-runtime helpers, and JSON / CSV
//!   serialization (round-trippable via [`ResultSet::from_json`]);
//! * [`SqipError`] — the unified error type for the whole pipeline
//!   (workload tracing, configuration, simulation, import/export);
//! * re-exports of the simulator core (including the resumable
//!   [`Processor::step`] API and [`SimObserver`] hooks) and the workload
//!   roster, so most drivers need only this crate.
//!
//! # Quick start
//!
//! ```
//! use sqip::{Experiment, SqDesign};
//!
//! // Figure 4 in miniature: two designs over two shrunk workloads,
//! // relative to the ideal-oracle baseline.
//! let results = Experiment::new()
//!     .workloads(["gzip", "mesa.t"].map(|n| sqip::by_name(n).unwrap().with_iterations(150)))
//!     .designs([SqDesign::IdealOracle, SqDesign::Associative3, SqDesign::Indexed3FwdDly])
//!     .run()?;
//!
//! for name in results.workload_names() {
//!     let rel = results
//!         .relative_runtime(name, "base", SqDesign::Indexed3FwdDly, SqDesign::IdealOracle)
//!         .unwrap();
//!     assert!(rel > 0.9, "{name}: {rel}");
//! }
//!
//! // Results serialize for downstream tooling and round-trip losslessly.
//! let json = results.to_json();
//! assert_eq!(sqip::ResultSet::from_json(&json)?, results);
//! # Ok::<(), sqip::SqipError>(())
//! ```
//!
//! # Custom store-queue designs
//!
//! The design axis is open: register a new design by name in the
//! [`DesignRegistry`] (either a capability combination of the builtin
//! machinery, as below, or a from-scratch [`ForwardingPolicy`]
//! implementation) and sweep it like any builtin — the [`SqDesign`]
//! handle it returns works in [`Experiment::designs`], JSON results and
//! the figure bins' `--design` flags alike.
//!
//! ```
//! use sqip::{by_name, DesignCaps, DesignRegistry, Experiment, SqDesign};
//!
//! // The paper's indexed scheme with delay prediction, at a (hypothetical)
//! // 2-cycle store queue.
//! let fast_indexed = DesignRegistry::global()
//!     .register_builtin("indexed-2-fwd+dly", DesignCaps::indexed(2).with_delay())?;
//!
//! let results = Experiment::new()
//!     .workload(by_name("gzip").unwrap().with_iterations(100))
//!     .designs([SqDesign::Indexed3FwdDly, fast_indexed])
//!     .run()?;
//! let faster = results.relative_runtime(
//!     "gzip", sqip::BASE_VARIANT, fast_indexed, SqDesign::Indexed3FwdDly,
//! ).unwrap();
//! assert!(faster <= 1.0, "a faster SQ is no slower: {faster}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod error;
mod experiment;
mod parallel;
mod results;
mod shard;
mod spec;
mod sweep;

pub use cache::{CacheDir, CacheOutcome};
pub use error::SqipError;
pub use experiment::{ConfigFn, Experiment, ObserverFn, Run, Workload, BASE_VARIANT};
pub use results::{geomean, ResultSet, RunRecord};
pub use shard::{merge_shards, ShardResult, ShardSpec};
pub use spec::{ExperimentSpec, VariantSpec, KNOBS, SPEC_VERSION};
pub use sweep::{
    CancelToken, CellEvent, CellEventFn, GroupTelemetry, SweepEngine, SweepMode, SweepTelemetry,
};

// The simulator core: configs, stats, the resumable processor, its
// observation hooks, and the open design-policy API.
pub use sqip_core::{
    engine::SchedCounters, oracle_tap, BuiltinPolicy, DesignCaps, DesignRegistry, Engine,
    ForwardingPolicy, LoadCommitInfo, LoadRename, ObserverAction, OracleBuilder, OracleFeed,
    OracleFwd, OracleHint, OracleInfo, OracleTap, OrderingMode, ParseDesignError, PipelineView,
    Processor, RegistryError, SimConfig, SimError, SimObserver, SimStats, SqDesign, SqProbe,
    StepOutcome,
};
// The checkpoint container: [`Processor::checkpoint`]/[`Processor::restore`]
// speak this format, and the result cache addresses entries by [`Fnv`].
pub use sqip_snapshot::{Fnv, SnapError, SnapReader, SnapWriter, Snapshot};
// The streaming input axis: the trace-source trait and its built-in
// producers (materialized-trace cursor, streaming program interpreter,
// on-disk trace record/replay).
pub use sqip_isa::{
    record_trace, ProgramSource, TeeCursor, TeePoll, TraceCursor, TraceReader, TraceSource,
    TraceTee, TraceWriter,
};
// The workload roster and its open registry.
pub use sqip_workloads::{
    all_workloads, by_name, generator, mediabench, specfp, specint, RegisteredWorkload, Suite,
    WorkloadRegistry, WorkloadRegistryError, WorkloadSpec, FIGURE5_WORKLOADS,
};

/// Runs one workload under one SQ design with the paper's configuration.
///
/// # Errors
///
/// Propagates workload-tracing and simulation errors.
pub fn simulate(spec: &WorkloadSpec, design: SqDesign) -> Result<SimStats, SqipError> {
    simulate_with(spec, SimConfig::with_design(design))
}

/// Runs one workload under an arbitrary configuration.
///
/// # Errors
///
/// Propagates workload-tracing and simulation errors.
pub fn simulate_with(spec: &WorkloadSpec, config: SimConfig) -> Result<SimStats, SqipError> {
    let trace = spec.trace().map_err(|source| SqipError::Workload {
        name: spec.name.to_string(),
        source,
    })?;
    let label = format!("{}/{}", spec.name, config.design);
    Processor::try_new(config, &trace)
        .and_then(Processor::try_run)
        .map_err(|source| SqipError::Sim {
            cell: label,
            source,
        })
}

/// Shrinks a workload for quick runs (same mix, fewer iterations).
///
/// Equivalent to [`WorkloadSpec::with_iterations`]; kept as a free
/// function for harness ergonomics.
#[must_use]
pub fn shrink(spec: WorkloadSpec, iterations: u32) -> WorkloadSpec {
    spec.with_iterations(iterations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_runs_a_shrunk_workload() {
        let spec = shrink(by_name("gzip").unwrap(), 50);
        let stats = simulate(&spec, SqDesign::Indexed3FwdDly).unwrap();
        assert!(stats.committed > 0);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn simulate_with_reports_config_errors_per_cell() {
        let spec = shrink(by_name("gzip").unwrap(), 50);
        let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
        cfg.ordering = OrderingMode::LqCam; // invalid for indexed designs
        let err = simulate_with(&spec, cfg).unwrap_err();
        assert!(matches!(err, SqipError::Sim { .. }), "{err}");
    }
}
