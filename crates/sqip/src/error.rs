//! The unified experiment-driver error type.

use sqip_core::SimError;
use sqip_isa::IsaError;

/// Everything that can go wrong while building, running, or exporting an
/// experiment.
///
/// This is the facade's unified error: workload generation failures
/// ([`IsaError`]), simulation failures ([`SimError`]) tagged with the
/// sweep cell that produced them, experiment-shape mistakes, and
/// import/export problems all flow through it, so drivers handle one type.
#[derive(Debug)]
pub enum SqipError {
    /// A workload failed to build or trace.
    Workload {
        /// The workload's name.
        name: String,
        /// The underlying ISA/trace error.
        source: IsaError,
    },
    /// A sweep cell failed to configure or simulate.
    Sim {
        /// The cell's `workload/design/variant` label.
        cell: String,
        /// The underlying simulation error.
        source: SimError,
    },
    /// The experiment itself is malformed (no workloads, no designs, ...).
    Config(String),
    /// A workload name resolved to nothing: not in the
    /// [`WorkloadRegistry`](sqip_workloads::WorkloadRegistry) and not a
    /// generator-grammar name.
    UnknownWorkload(String),
    /// A design name resolved to nothing in the
    /// [`DesignRegistry`](sqip_core::DesignRegistry).
    UnknownDesign(String),
    /// The sweep was cancelled through its
    /// [`CancelToken`](crate::CancelToken) before this cell finished.
    Cancelled {
        /// The cell's `workload/design/variant` label.
        cell: String,
    },
    /// A serialized result set failed to parse.
    Parse(serde::Error),
    /// An export could not be written.
    Io(std::io::Error),
}

impl std::fmt::Display for SqipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqipError::Workload { name, source } => {
                write!(f, "workload `{name}` failed to trace: {source}")
            }
            SqipError::Sim { cell, source } => write!(f, "cell `{cell}` failed: {source}"),
            SqipError::Config(msg) => write!(f, "malformed experiment: {msg}"),
            SqipError::UnknownWorkload(msg) => f.write_str(msg),
            SqipError::UnknownDesign(msg) => f.write_str(msg),
            SqipError::Cancelled { cell } => write!(f, "cell `{cell}` cancelled"),
            SqipError::Parse(e) => write!(f, "result set parse error: {e}"),
            SqipError::Io(e) => write!(f, "export failed: {e}"),
        }
    }
}

impl std::error::Error for SqipError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqipError::Workload { source, .. } => Some(source),
            SqipError::Sim { source, .. } => Some(source),
            SqipError::Parse(e) => Some(e),
            SqipError::Io(e) => Some(e),
            SqipError::Config(_)
            | SqipError::UnknownWorkload(_)
            | SqipError::UnknownDesign(_)
            | SqipError::Cancelled { .. } => None,
        }
    }
}

impl From<serde::Error> for SqipError {
    fn from(e: serde::Error) -> SqipError {
        SqipError::Parse(e)
    }
}

impl From<std::io::Error> for SqipError {
    fn from(e: std::io::Error) -> SqipError {
        SqipError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_tags_the_failing_cell() {
        let e = SqipError::Sim {
            cell: "gzip/indexed-3-fwd+dly/base".to_string(),
            source: SimError::InvalidConfig("bad knob".to_string()),
        };
        let text = e.to_string();
        assert!(text.contains("gzip/indexed-3-fwd+dly/base"));
        assert!(text.contains("bad knob"));
    }

    #[test]
    fn sources_are_chained() {
        use std::error::Error;
        let e = SqipError::Workload {
            name: "x".into(),
            source: IsaError::EmptyProgram,
        };
        assert!(e.source().is_some());
    }
}
