//! A tiny deterministic fork-join executor.
//!
//! The build environment has no rayon, so sweeps fan out over scoped
//! `std::thread`s pulling cell indices from a shared atomic counter.
//! Results land in a pre-sized slot table indexed by input position, so
//! the output order is a pure function of the input order — never of
//! thread count or scheduling. Combined with the simulator's determinism,
//! this is what makes parallel sweeps bit-identical to serial ones.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item, using up to `threads` worker threads, and
/// returns the results in input order.
///
/// `threads <= 1` runs inline on the caller's thread (the serial path is
/// the same code minus the spawn, so parallel and serial runs produce the
/// results in the same order by construction).
pub(crate) fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(items.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled by a worker")
        })
        .collect()
}

/// Default worker count: one per available core.
pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Applies `f` to every item using up to `threads` workers pulling from a
/// **work-stealing queue**, returning results in input order.
///
/// Where [`parallel_map`] hands out items round-robin from one shared
/// counter (fine for many small uniform cells), sweep *groups* are few
/// and lopsided — one `mix:…:50m` group can outweigh ten SPEC-model
/// groups. Each worker is seeded with a deque of items (dealt
/// round-robin by index) and pops from its own back; an idle worker
/// steals from the *front* of the busiest remaining deque, so big groups
/// migrate to free cores instead of serializing behind whichever worker
/// happened to draw them.
///
/// Output order is a pure function of input order (slot table indexed by
/// input position), so results are bit-identical for any thread count —
/// the same guarantee `parallel_map` gives.
pub(crate) fn work_steal_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(items.len());
    // Deques hold item indices; stealing moves indices, never results.
    let deques: Vec<Mutex<std::collections::VecDeque<usize>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                (0..items.len())
                    .filter(|i| i % workers == w)
                    .collect::<std::collections::VecDeque<usize>>(),
            )
        })
        .collect();
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                // Own work first (back of own deque)…
                let mine = deques[w].lock().expect("deque poisoned").pop_back();
                let i = match mine {
                    Some(i) => i,
                    None => {
                        // …then steal from the front of the fullest deque,
                        // retrying across victims (a racing thief may drain
                        // the chosen one) until every deque is empty.
                        let mut stolen = None;
                        let mut victims: Vec<usize> = (0..workers).filter(|&v| v != w).collect();
                        victims.sort_by_key(|&v| {
                            std::cmp::Reverse(deques[v].lock().expect("deque poisoned").len())
                        });
                        for v in victims {
                            if let Some(i) = deques[v].lock().expect("deque poisoned").pop_front() {
                                stolen = Some(i);
                                break;
                            }
                        }
                        match stolen {
                            Some(i) => i,
                            None => break, // every deque is empty: done
                        }
                    }
                };
                let result = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_thread_count() {
        let items: Vec<u64> = (0..57).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map(&items, threads, |_, &x| x * x);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let items = ["a", "b", "c"];
        let got = parallel_map(&items, 2, |i, &s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn empty_input_is_fine() {
        let got: Vec<u32> = parallel_map(&[] as &[u8], 4, |_, _| unreachable!());
        assert!(got.is_empty());
    }
}
