//! The versioned JSON wire schema for experiments.
//!
//! An [`ExperimentSpec`] is the declarative, serializable face of
//! [`Experiment`]: workloads and designs by registry *name*, and variants
//! as named sets of documented numeric knobs instead of opaque closures.
//! It is what `sqipd` accepts over the wire, what batch files hold on
//! disk, and the one place the JSON surface is versioned
//! ([`SPEC_VERSION`]).
//!
//! Parsing is strict — unknown fields, unknown knobs, and unsupported
//! versions are errors, never silently ignored — because a spec travels
//! between processes that may disagree about the schema, and a dropped
//! field would silently change what gets simulated.
//!
//! ```
//! use sqip::ExperimentSpec;
//!
//! let spec = ExperimentSpec::from_json(
//!     r#"{
//!         "version": 1,
//!         "workloads": ["mix:0xfeed:20k", "gzip"],
//!         "designs": ["ideal-oracle", "indexed-3-fwd+dly"],
//!         "variants": [{"name": "small-fsp", "set": {"fsp_entries": 512}}]
//!     }"#,
//! )?;
//! let experiment = spec.to_experiment()?;
//! assert_eq!(experiment.cells()?.len(), 2 * 2 * 1);
//! # Ok::<(), sqip::SqipError>(())
//! ```

use serde::{Deserialize, Serialize, Value};
use sqip_core::{SimConfig, SqDesign};

use crate::error::SqipError;
use crate::experiment::{Experiment, Workload};

/// The wire-schema version this build speaks.
///
/// A spec with any other `version` is rejected by
/// [`ExperimentSpec::to_experiment`] — bump this when the schema changes
/// shape incompatibly.
pub const SPEC_VERSION: u32 = 1;

/// The configuration knobs a [`VariantSpec`] may set, with the
/// [`SimConfig`] field each maps to.
///
/// All knobs take unsigned integer values. `sq_size` also sets
/// `ddp.max_distance` (the simulator requires the two to be equal: delay
/// distances are stored in ⌈log2(SQ size)⌉ bits).
pub const KNOBS: &[(&str, &str)] = &[
    ("rob_size", "reorder-buffer entries"),
    ("iq_size", "issue-queue entries"),
    ("lq_size", "load-queue entries"),
    (
        "sq_size",
        "store-queue entries (also sets ddp.max_distance)",
    ),
    ("fetch_width", "instructions fetched per cycle"),
    ("rename_width", "instructions renamed per cycle"),
    ("commit_width", "instructions committed per cycle"),
    ("reexec_ports", "re-execution data-cache ports"),
    ("front_latency", "fetch-to-rename cycles"),
    ("issue_to_exec", "issue-selection-to-execute cycles"),
    ("post_exec_depth", "completion-to-commit pipeline depth"),
    ("fsp_entries", "forwarding-store-predictor entries"),
    ("fsp_ways", "forwarding-store-predictor associativity"),
    ("ddp_entries", "delay-distance-predictor entries"),
    ("sat_entries", "store-alias-table entries"),
    ("ssbf_entries", "store-sequence Bloom-filter entries"),
    ("spct_entries", "store-PC-table entries"),
    ("ssn_bits", "hardware store-sequence-number width in bits"),
];

/// Applies one knob to a configuration. Errors name the unknown knob and
/// list the known ones.
fn apply_knob(cfg: &mut SimConfig, knob: &str, value: u64) -> Result<(), String> {
    let val = usize::try_from(value).map_err(|_| format!("knob `{knob}`: {value} out of range"))?;
    match knob {
        "rob_size" => cfg.rob_size = val,
        "iq_size" => cfg.iq_size = val,
        "lq_size" => cfg.lq_size = val,
        "sq_size" => {
            cfg.sq_size = val;
            cfg.ddp.max_distance = value;
        }
        "fetch_width" => cfg.fetch_width = val,
        "rename_width" => cfg.rename_width = val,
        "commit_width" => cfg.commit_width = val,
        "reexec_ports" => cfg.reexec_ports = val,
        "front_latency" => cfg.front_latency = value,
        "issue_to_exec" => cfg.issue_to_exec = value,
        "post_exec_depth" => cfg.post_exec_depth = value,
        "fsp_entries" => cfg.fsp.entries = val,
        "fsp_ways" => cfg.fsp.ways = val,
        "ddp_entries" => cfg.ddp.entries = val,
        "sat_entries" => cfg.sat_entries = val,
        "ssbf_entries" => cfg.ssbf_entries = val,
        "spct_entries" => cfg.spct_entries = val,
        "ssn_bits" => {
            cfg.ssn_bits =
                u32::try_from(value).map_err(|_| format!("knob `{knob}`: {value} out of range"))?;
        }
        _ => {
            let known: Vec<&str> = KNOBS.iter().map(|(name, _)| *name).collect();
            return Err(format!(
                "unknown knob `{knob}` (known: {})",
                known.join(", ")
            ));
        }
    }
    Ok(())
}

/// One named configuration variant: the declarative form of
/// [`Experiment::vary`], as a set of [`KNOBS`] assignments applied on top
/// of the design's base configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariantSpec {
    /// The variant label (the `variant` column of result rows).
    pub name: String,
    /// `(knob, value)` assignments, applied in order.
    pub set: Vec<(String, u64)>,
}

impl Serialize for VariantSpec {
    fn serialize(&self) -> Value {
        let set = self
            .set
            .iter()
            .map(|(k, v)| (k.clone(), Value::U64(*v)))
            .collect();
        Value::Object(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("set".to_string(), Value::Object(set)),
        ])
    }
}

impl Deserialize for VariantSpec {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        let Value::Object(fields) = value else {
            return Err(serde::Error::custom("variant: expected an object"));
        };
        for (key, _) in fields {
            if key != "name" && key != "set" {
                return Err(serde::Error::custom(format!(
                    "unknown field `{key}` in variant (known: name, set)"
                )));
            }
        }
        let name: String = serde::field(value, "name")?;
        let set = match value.get("set") {
            None => Vec::new(),
            Some(Value::Object(entries)) => entries
                .iter()
                .map(|(k, v)| u64::deserialize(v).map(|v| (k.clone(), v)))
                .collect::<Result<_, _>>()
                .map_err(|e| serde::Error::custom(format!("variant `{name}`: {e}")))?,
            Some(_) => {
                return Err(serde::Error::custom(format!(
                    "variant `{name}`: `set` must be an object of knob: value pairs"
                )));
            }
        };
        Ok(VariantSpec { name, set })
    }
}

/// A complete, serializable experiment description: the declarative
/// counterpart of [`Experiment`] and the job payload `sqipd` accepts.
///
/// Workloads are registry names (Table 3 models, catalogue entries, or
/// `mix:`/`chase:`/`stride:` generator-grammar names); designs are
/// [`DesignRegistry`](sqip_core::DesignRegistry) names (including
/// designs registered at runtime); variants are declarative knob sets
/// ([`KNOBS`]). See the module docs for the JSON shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentSpec {
    /// Schema version; must equal [`SPEC_VERSION`].
    pub version: u32,
    /// Workload names, resolved via [`Workload::from_registry`].
    pub workloads: Vec<String>,
    /// Design names, resolved via the design registry.
    pub designs: Vec<String>,
    /// Configuration variants; empty means the single implicit
    /// [`BASE_VARIANT`](crate::BASE_VARIANT).
    pub variants: Vec<VariantSpec>,
}

impl ExperimentSpec {
    /// A current-version spec over the given workload and design names,
    /// with no variants.
    pub fn new<W, D>(workloads: W, designs: D) -> ExperimentSpec
    where
        W: IntoIterator,
        W::Item: Into<String>,
        D: IntoIterator,
        D::Item: Into<String>,
    {
        ExperimentSpec {
            version: SPEC_VERSION,
            workloads: workloads.into_iter().map(Into::into).collect(),
            designs: designs.into_iter().map(Into::into).collect(),
            variants: Vec::new(),
        }
    }

    /// Adds a variant.
    #[must_use]
    pub fn variant(mut self, name: impl Into<String>, set: Vec<(String, u64)>) -> ExperimentSpec {
        self.variants.push(VariantSpec {
            name: name.into(),
            set,
        });
        self
    }

    /// Serializes to compact JSON (the canonical form: fields in schema
    /// order, `variants` always present — so
    /// `from_json(s).to_json() == s` for canonical input).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("specs contain no floats")
    }

    /// Serializes to pretty-printed JSON.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("specs contain no floats")
    }

    /// Parses a spec from JSON. Unknown fields are rejected; names and
    /// the version are *not* resolved here — that is
    /// [`ExperimentSpec::to_experiment`]'s job, so a parse error always
    /// means malformed JSON, not an unknown workload.
    ///
    /// # Errors
    ///
    /// [`SqipError::Parse`] on malformed JSON, a shape mismatch, or an
    /// unknown field.
    pub fn from_json(text: &str) -> Result<ExperimentSpec, SqipError> {
        Ok(serde_json::from_str(text)?)
    }

    /// Resolves every name against the live registries and builds the
    /// runnable [`Experiment`].
    ///
    /// # Errors
    ///
    /// [`SqipError::Config`] for an unsupported version, an empty axis,
    /// or an unknown knob; [`SqipError::UnknownWorkload`] /
    /// [`SqipError::UnknownDesign`] for names that resolve to nothing.
    pub fn to_experiment(&self) -> Result<Experiment, SqipError> {
        if self.version != SPEC_VERSION {
            return Err(SqipError::Config(format!(
                "unsupported spec version {} (this build speaks {SPEC_VERSION})",
                self.version
            )));
        }
        let mut experiment = Experiment::new();
        for name in &self.workloads {
            experiment = experiment.workload(Workload::from_registry(name)?);
        }
        for name in &self.designs {
            let design: SqDesign = name
                .parse()
                .map_err(|e| SqipError::UnknownDesign(format!("{e}")))?;
            experiment = experiment.design(design);
        }
        for variant in &self.variants {
            // Validate the knob set now, on a scratch configuration, so
            // unknown knobs surface as errors here instead of being
            // swallowed inside the variant closure (which cannot fail).
            let mut scratch = SimConfig::default();
            for (knob, value) in &variant.set {
                apply_knob(&mut scratch, knob, *value)
                    .map_err(|e| SqipError::Config(format!("variant `{}`: {e}", variant.name)))?;
            }
            let set = variant.set.clone();
            experiment = experiment.vary(variant.name.clone(), move |cfg| {
                for (knob, value) in &set {
                    // Pre-validated above; value-range checks depend only
                    // on the value, so this cannot fail here.
                    let _ = apply_knob(cfg, knob, *value);
                }
            });
        }
        Ok(experiment)
    }
}

impl Serialize for ExperimentSpec {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("version".to_string(), Value::U64(u64::from(self.version))),
            ("workloads".to_string(), self.workloads.serialize()),
            ("designs".to_string(), self.designs.serialize()),
            ("variants".to_string(), self.variants.serialize()),
        ])
    }
}

impl Deserialize for ExperimentSpec {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        let Value::Object(fields) = value else {
            return Err(serde::Error::custom("experiment spec: expected an object"));
        };
        const KNOWN: [&str; 4] = ["version", "workloads", "designs", "variants"];
        for (key, _) in fields {
            if !KNOWN.contains(&key.as_str()) {
                return Err(serde::Error::custom(format!(
                    "unknown field `{key}` in experiment spec (known: {})",
                    KNOWN.join(", ")
                )));
            }
        }
        Ok(ExperimentSpec {
            version: serde::field(value, "version")?,
            workloads: serde::field(value, "workloads")?,
            designs: serde::field(value, "designs")?,
            variants: match value.get("variants") {
                None => Vec::new(),
                Some(v) => Vec::<VariantSpec>::deserialize(v)?,
            },
        })
    }
}
