//! Forwarding microscope: reproduce the paper's §3.3 motivating example,
//! `X[i] = A * X[i-2]`, and watch each mechanism engage.
//!
//! Not-most-recent forwarding is the one pattern SQ index prediction
//! fundamentally cannot handle: the Store Alias Table can only name the
//! *youngest* instance of a store, but the load needs the one before it.
//! This example runs the recurrence under four designs and shows how the
//! raw indexed SQ flushes, and how the delay index predictor converts
//! those flushes into bounded delays.
//!
//! The custom program enters the sweep as a [`Workload::from_trace`] cell,
//! so hand-built traces and Table 3 models drive through the same API.
//!
//! ```text
//! cargo run --release -p sqip --example forwarding_microscope
//! ```

#![forbid(unsafe_code)]

use sqip::{Experiment, SqDesign, Workload};
use sqip_isa::{trace_program, ProgramBuilder, Reg};
use sqip_types::DataSize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // X[i] = 3 * X[i-2] over a sliding window, the paper's pathology.
    let mut b = ProgramBuilder::new();
    let (ctr, ptr, x, y) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
    b.load_imm(ctr, 3_000);
    b.load_imm(ptr, 0x1000);
    b.load_imm(x, 1);
    b.store(DataSize::Quad, x, ptr, 0); // seed X[0]
    b.store(DataSize::Quad, x, ptr, 8); // seed X[1]
    let top = b.label("top");
    b.load(DataSize::Quad, y, ptr, 0); // X[i-2]
    b.mul_imm(y, y, 3);
    b.store(DataSize::Quad, y, ptr, 16); // X[i]
    b.add_imm(ptr, ptr, 8);
    b.add_imm(ctr, ctr, -1);
    b.branch_nz(ctr, top);
    b.halt();
    let trace = trace_program(&b.build()?, 1_000_000)?;

    println!("X[i] = 3*X[i-2], {} dynamic instructions\n", trace.len());

    let results = Experiment::new()
        .workload(Workload::from_trace("nmr-recurrence", trace))
        .designs([
            SqDesign::IdealOracle,
            SqDesign::Associative3,
            SqDesign::Indexed3Fwd,
            SqDesign::Indexed3FwdDly,
        ])
        .run()?;

    println!(
        "{:<22} {:>9} {:>7} {:>10} {:>9} {:>9}",
        "design", "cycles", "IPC", "misfwd/1k", "%delayed", "avg delay"
    );
    for record in &results {
        let s = &record.stats;
        println!(
            "{:<22} {:>9} {:>7.2} {:>10.1} {:>9.1} {:>9.1}",
            record.design.label(),
            s.cycles,
            s.ipc(),
            s.mis_forwards_per_1000(),
            s.pct_loads_delayed(),
            s.avg_delay_cycles()
        );
    }
    println!(
        "\nThe associative SQ forwards the recurrence natively; the raw\n\
         indexed SQ (indexed-3-fwd) repeatedly mis-forwards and flushes;\n\
         adding the delay predictor (indexed-3-fwd+dly) converts flushes\n\
         into scheduling delays, as in the paper's §3.3."
    );
    Ok(())
}
