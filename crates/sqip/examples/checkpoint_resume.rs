//! Checkpoint a streamed run mid-flight, restore it from the bytes on
//! disk, and verify the stitched run is **bit-identical** to never
//! having stopped. CI's `shard-resume` job runs this as the
//! checkpoint/resume smoke.
//!
//! ```text
//! cargo run --release -p sqip --example checkpoint_resume [SNAPSHOT_FILE]
//! ```

#![forbid(unsafe_code)]

use sqip::{by_name, Processor, SimConfig, SqDesign, StepOutcome};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = by_name("gzip").expect("a Table 3 row");
    let cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);

    // The reference: one uninterrupted run over the streamed workload.
    let straight = Processor::from_source(cfg.clone(), spec.source()?).try_run()?;

    // The interrupted run: step partway, then freeze the whole machine
    // (predictors, queues, memory image, event wheel) into a file.
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "checkpoint.sqsn".to_string());
    let mut partial = Processor::from_source(cfg, spec.source()?);
    for _ in 0..5_000 {
        if partial.step()? == StepOutcome::Done {
            break;
        }
    }
    let at = partial.stats().cycles;
    let mut snapshot = Vec::new();
    partial.checkpoint(&mut snapshot)?;
    std::fs::write(&path, &snapshot)?;
    drop(partial);
    println!(
        "checkpointed at cycle {at}: {} bytes -> {path}",
        snapshot.len()
    );

    // Resume in a fresh processor, over a fresh instance of the same
    // streamed source — as a new process would after a crash.
    let bytes = std::fs::read(&path)?;
    let mut resumed = Processor::restore(&mut bytes.as_slice(), spec.source()?)?;
    while resumed.step()? == StepOutcome::Running {}
    let stitched = resumed.stats().clone();

    println!(
        "straight: {} cycles, IPC {:.3}; resumed: {} cycles, IPC {:.3}",
        straight.cycles,
        straight.ipc(),
        stitched.cycles,
        stitched.ipc()
    );
    if stitched != straight {
        return Err("resumed run diverged from the uninterrupted run".into());
    }
    println!("resume is bit-identical to running straight through");
    Ok(())
}
