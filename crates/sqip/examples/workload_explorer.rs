//! Workload explorer: print the kernel mix and measured memory-dependence
//! character of any of the 47 Table 3 workload models.
//!
//! ```text
//! cargo run --release -p sqip --example workload_explorer [-- vortex mesa.t ...]
//! ```

#![forbid(unsafe_code)]

use sqip::{all_workloads, by_name, OracleInfo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let specs = if args.is_empty() {
        vec![
            by_name("adpcm.d").unwrap(),
            by_name("gzip").unwrap(),
            by_name("vortex").unwrap(),
            by_name("mesa.t").unwrap(),
            by_name("mcf").unwrap(),
        ]
    } else {
        args.iter()
            .map(|n| by_name(n).ok_or_else(|| format!("unknown workload `{n}`")))
            .collect::<Result<Vec<_>, _>>()?
    };

    println!("{} workloads defined in total\n", all_workloads().len());
    for spec in specs {
        let trace = spec.trace()?;
        let oracle = OracleInfo::analyze(&trace);
        println!("== {} ({}) ==", spec.name, spec.suite);
        println!(
            "  kernel mix: fwd={} narrow={} partial={} alias={} nmr={} (lag {}) far={} plain_ld={} chase={} x{} static copies",
            spec.fwd_sites,
            spec.narrow_sites,
            spec.partial_sites,
            spec.alias_sites,
            spec.nmr_sites,
            spec.nmr_lag,
            spec.far_sites,
            spec.plain_loads,
            spec.chase_loads,
            spec.replicate,
        );
        println!(
            "  dynamic: {} insts, {} loads, {} stores",
            trace.len(),
            trace.dynamic_loads(),
            trace.dynamic_stores()
        );
        println!(
            "  forwarding rate (64-entry window): {:.1}%  (target {:.1}%)",
            100.0 * oracle.forwarding_rate(&trace, 64),
            100.0 * spec.target_forwarding_rate(),
        );
        println!();
    }
    Ok(())
}
