//! Quickstart: declare a small experiment, run it in parallel, and read
//! the results — then export them as JSON for downstream tooling.
//!
//! ```text
//! cargo run --release -p sqip --example quickstart
//! ```

#![forbid(unsafe_code)]

use sqip::{by_name, Experiment, SqDesign};

fn main() -> Result<(), sqip::SqipError> {
    // A sweep is workloads × designs (× optional config variants). This
    // one compares the paper's speculative indexed store queue against
    // the idealised associative baseline on two workload models.
    let results = Experiment::new()
        .workloads(["gzip", "mesa.t"].map(|n| by_name(n).expect("a Table 3 row")))
        .designs([SqDesign::IdealOracle, SqDesign::Indexed3FwdDly])
        .run()?;

    for record in &results {
        let s = &record.stats;
        println!(
            "{:<28} cycles {:>9}  IPC {:>5.2}  fwd {:>6}/{:<6} misfwd/1k {:>5.2}",
            record.label(),
            s.cycles,
            s.ipc(),
            s.loads_forwarded,
            s.loads,
            s.mis_forwards_per_1000(),
        );
    }

    // Relative execution time, the paper's headline metric.
    for name in results.workload_names() {
        let rel = results
            .relative_runtime(
                name,
                sqip::BASE_VARIANT,
                SqDesign::Indexed3FwdDly,
                SqDesign::IdealOracle,
            )
            .expect("both designs ran");
        println!("{name}: indexed-3-fwd+dly runs at {rel:.3}x the oracle runtime");
    }

    // Results are plain data: serialize them, ship them, reload them.
    let json = results.to_json_pretty();
    println!(
        "\nJSON export ({} bytes), first lines:\n{}",
        json.len(),
        json.lines().take(12).collect::<Vec<_>>().join("\n")
    );
    Ok(())
}
