//! Design-space walk: sweep store-queue size and predictor geometry on one
//! workload and print how the paper's design point (64-entry SQ, 4K-entry
//! 2-way FSP/DDP) sits in the space. Also prints the Table 2 hardware
//! latencies for each SQ size, connecting the IPC study to the circuit
//! study.
//!
//! Both sweeps are `Experiment`s: the SQ-size walk varies `sq_size` (and
//! the DDP distance bound tied to it) across two designs, the capacity
//! walk varies the FSP table size.
//!
//! ```text
//! cargo run --release -p sqip --example design_space
//! ```

#![forbid(unsafe_code)]

use sqip::{by_name, Experiment, SqDesign};
use sqip_cacti::{SqGeometry, TechParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = by_name("gzip").expect("gzip is a Table 3 workload");
    let tech = TechParams::default();

    let sq_sizes = [16usize, 32, 64, 128];
    let sizes_sweep = sq_sizes
        .into_iter()
        .fold(
            Experiment::new()
                .workload(spec.clone())
                .designs([SqDesign::Associative3, SqDesign::Indexed3FwdDly]),
            |e, sq| {
                e.vary(format!("sq-{sq}"), move |cfg| {
                    cfg.sq_size = sq;
                    cfg.ddp.max_distance = sq as u64;
                })
            },
        )
        .run()?;

    println!(
        "{:>8} | {:>12} {:>12} | {:>9} {:>9}",
        "SQ size", "assoc ns(cy)", "index ns(cy)", "IPC assoc", "IPC index"
    );
    for sq in sq_sizes {
        let a = SqGeometry::associative(sq, 2);
        let i = SqGeometry::indexed(sq, 2);
        let variant = format!("sq-{sq}");
        let ipc = |design| {
            sizes_sweep
                .find("gzip", design, &variant)
                .expect("sweep cell ran")
                .stats
                .ipc()
        };
        println!(
            "{:>8} | {:>7.2} ({:>2}) {:>7.2} ({:>2}) | {:>9.2} {:>9.2}",
            sq,
            tech.sq_latency_ns(a),
            tech.sq_cycles(a),
            tech.sq_latency_ns(i),
            tech.sq_cycles(i),
            ipc(SqDesign::Associative3),
            ipc(SqDesign::Indexed3FwdDly),
        );
    }

    println!("\nFSP capacity sweep (indexed-3-fwd+dly):");
    let capacities = [512usize, 1024, 4096];
    let capacity_sweep = capacities
        .into_iter()
        .fold(
            Experiment::new()
                .workload(spec)
                .design(SqDesign::Indexed3FwdDly),
            |e, entries| e.vary(format!("{entries}"), move |cfg| cfg.fsp.entries = entries),
        )
        .run()?;
    for entries in capacities {
        let stats = &capacity_sweep
            .find("gzip", SqDesign::Indexed3FwdDly, &format!("{entries}"))
            .expect("sweep cell ran")
            .stats;
        println!(
            "  {entries:>5}-entry FSP: IPC {:.2}, misfwd/1k {:.2}",
            stats.ipc(),
            stats.mis_forwards_per_1000()
        );
    }

    // The design axis is open: any name in the DesignRegistry sweeps like
    // a builtin. `indexed-5-fwd+dly` is the registry's pre-loaded
    // extension (the paper's indexed scheme at a 5-cycle SQ).
    println!("\nSQ latency walk on the indexed design (registry names):");
    let slow_indexed: SqDesign = "indexed-5-fwd+dly".parse()?;
    let latency_walk = Experiment::new()
        .workload(by_name("gzip").unwrap())
        .designs([SqDesign::Indexed3FwdDly, slow_indexed])
        .run()?;
    for record in &latency_walk {
        println!(
            "  {:>18}: IPC {:.2}, {:.1}% loads forwarded",
            record.design,
            record.stats.ipc(),
            record.stats.pct_loads_forwarding()
        );
    }
    Ok(())
}
