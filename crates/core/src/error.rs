//! The unified simulation error type.

/// Everything that can go wrong while configuring or running a simulation.
///
/// The legacy entry points ([`crate::Processor::run`],
/// [`crate::SimConfig::validate`]) panic on these conditions; the
/// `Result`-based API ([`crate::Processor::try_run`],
/// [`crate::Processor::step`], [`crate::SimConfig::try_validate`]) returns
/// them instead so experiment drivers can report failures per sweep cell
/// rather than aborting a whole campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configuration violates a cross-structure invariant.
    InvalidConfig(String),
    /// The pipeline stopped committing — a simulator bug, not a program
    /// property. Carries the machine state needed to debug it.
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Instructions committed before the stall.
        committed: u64,
        /// Human-readable dump of the ROB head and front-end state.
        detail: String,
    },
    /// The trace source failed mid-stream: an I/O error or corrupt
    /// on-disk trace, or a streaming interpreter fault (non-halting
    /// program, PC out of range).
    TraceSource {
        /// Records the source delivered before failing.
        pulled: u64,
        /// The underlying [`sqip_isa::IsaError`], rendered.
        detail: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => f.write_str(msg),
            SimError::Deadlock {
                cycle,
                committed,
                detail,
            } => write!(
                f,
                "pipeline deadlock at cycle {cycle} (committed {committed}): {detail}"
            ),
            SimError::TraceSource { pulled, detail } => {
                write!(f, "trace source failed after {pulled} records: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = SimError::Deadlock {
            cycle: 99,
            committed: 3,
            detail: "head stuck".to_string(),
        };
        let text = e.to_string();
        assert!(text.contains("deadlock"));
        assert!(text.contains("99"));
        assert!(text.contains("head stuck"));
        assert_eq!(SimError::InvalidConfig("bad".into()).to_string(), "bad");
    }
}
