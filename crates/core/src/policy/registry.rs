//! The global design registry: name → capabilities + policy factory.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

use crate::config::{SimConfig, SqDesign};
use crate::policy::{BuiltinPolicy, DesignCaps, ForwardingPolicy};

/// A shareable policy constructor: one fresh policy per simulation run.
type PolicyFactory = Arc<dyn Fn(&SimConfig) -> Box<dyn ForwardingPolicy> + Send + Sync>;

struct Entry {
    design: SqDesign,
    caps: DesignCaps,
    factory: PolicyFactory,
    /// `Some` iff registered through [`DesignRegistry::register_builtin`]
    /// — lets the engines dispatch the builtin machinery statically.
    builtin_caps: Option<DesignCaps>,
}

/// A failure registering or resolving a design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// A design with this name is already registered.
    Duplicate(String),
    /// The name is a reserved legacy alias of a builtin design: name
    /// resolution (`FromStr`, JSON, `--design`) rewrites it to the
    /// builtin, so a design registered under it would be unreachable.
    ReservedAlias(String),
    /// No design with this name is registered.
    Unknown(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Duplicate(name) => {
                write!(f, "design `{name}` is already registered")
            }
            RegistryError::ReservedAlias(name) => {
                write!(
                    f,
                    "design name `{name}` is reserved as a legacy alias of a builtin design"
                )
            }
            RegistryError::Unknown(name) => {
                write!(f, "unknown store-queue design `{name}`")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// The open roster of store-queue designs.
///
/// Every [`SqDesign`] name resolves here to a [`DesignCaps`] descriptor
/// and a [`ForwardingPolicy`] factory. The [`DesignRegistry::global`]
/// instance is pre-populated with the paper's seven builtin designs plus
/// the `indexed-5-fwd+dly` extension (all registered through the same
/// public [`DesignRegistry::register_builtin`] API any caller can use),
/// and accepts custom registrations at any time.
pub struct DesignRegistry {
    inner: RwLock<Inner>,
}

#[derive(Default)]
struct Inner {
    entries: BTreeMap<&'static str, Entry>,
    /// Registration order, for stable `names()` listings.
    order: Vec<&'static str>,
}

impl DesignRegistry {
    /// An empty registry (no builtins). Most callers want
    /// [`DesignRegistry::global`]; isolated registries exist for tests of
    /// the registry itself.
    #[must_use]
    pub fn empty() -> DesignRegistry {
        DesignRegistry {
            inner: RwLock::new(Inner::default()),
        }
    }

    /// The process-wide registry every [`SqDesign`] resolves through,
    /// pre-populated with the builtin designs.
    pub fn global() -> &'static DesignRegistry {
        static GLOBAL: OnceLock<DesignRegistry> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let registry = DesignRegistry::empty();
            for (name, caps) in BUILTIN_DESIGNS {
                registry
                    .register_builtin(name, caps)
                    .expect("builtin design names are unique");
            }
            // The first design the closed enum could not express: the
            // paper's indexed scheme at a 5-cycle SQ — added through the
            // exact same public API a downstream crate would use.
            registry
                .register_builtin("indexed-5-fwd+dly", DesignCaps::indexed(5).with_delay())
                .expect("extension design name is unique");
            registry
        })
    }

    /// Registers a design under `name` with an arbitrary policy factory.
    /// Returns the (copyable) [`SqDesign`] handle naming it.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Duplicate`] if the name is taken;
    /// [`RegistryError::ReservedAlias`] if it is a legacy spelling of a
    /// builtin (those resolve to the builtin, so the new design would be
    /// unreachable by name).
    pub fn register(
        &self,
        name: &str,
        caps: DesignCaps,
        factory: impl Fn(&SimConfig) -> Box<dyn ForwardingPolicy> + Send + Sync + 'static,
    ) -> Result<SqDesign, RegistryError> {
        self.register_inner(name, caps, factory, None)
    }

    fn register_inner(
        &self,
        name: &str,
        caps: DesignCaps,
        factory: impl Fn(&SimConfig) -> Box<dyn ForwardingPolicy> + Send + Sync + 'static,
        builtin_caps: Option<DesignCaps>,
    ) -> Result<SqDesign, RegistryError> {
        if crate::config::LEGACY_ALIASES
            .iter()
            .any(|(alias, _)| *alias == name)
        {
            return Err(RegistryError::ReservedAlias(name.to_string()));
        }
        let mut inner = self.inner.write().expect("registry lock poisoned");
        if inner.entries.contains_key(name) {
            return Err(RegistryError::Duplicate(name.to_string()));
        }
        // Design names are interned so `SqDesign` stays `Copy`; the
        // registry is append-only and small, so the leak is bounded.
        let interned: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let design = SqDesign::from_static(interned);
        inner.entries.insert(
            interned,
            Entry {
                design,
                caps,
                factory: Arc::new(factory),
                builtin_caps,
            },
        );
        inner.order.push(interned);
        Ok(design)
    }

    /// Registers a design backed by the paper's [`BuiltinPolicy`]
    /// machinery with the given capability combination — the one-liner
    /// path for "Figure 4-style" design variants.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Duplicate`] if the name is taken;
    /// [`RegistryError::ReservedAlias`] if it is a legacy spelling of a
    /// builtin.
    pub fn register_builtin(
        &self,
        name: &str,
        caps: DesignCaps,
    ) -> Result<SqDesign, RegistryError> {
        // Registered in one lock acquisition, so a concurrent resolve can
        // never observe the entry without its builtin marker (which would
        // silently fall back to dynamic dispatch).
        self.register_inner(
            name,
            caps,
            move |cfg| Box::new(BuiltinPolicy::new(caps, cfg)),
            Some(caps),
        )
    }

    /// Resolves a design name.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<SqDesign> {
        let inner = self.inner.read().expect("registry lock poisoned");
        inner.entries.get(name).map(|e| e.design)
    }

    /// The capabilities registered for `design`.
    #[must_use]
    pub fn caps(&self, design: SqDesign) -> Option<DesignCaps> {
        let inner = self.inner.read().expect("registry lock poisoned");
        inner.entries.get(design.name()).map(|e| e.caps)
    }

    /// The capability descriptor of a design registered through
    /// [`DesignRegistry::register_builtin`]; `None` for custom policies.
    /// Engines use this to recover static dispatch onto the builtin
    /// machinery.
    pub(crate) fn builtin_caps(&self, design: SqDesign) -> Option<DesignCaps> {
        let inner = self.inner.read().expect("registry lock poisoned");
        inner
            .entries
            .get(design.name())
            .and_then(|e| e.builtin_caps)
    }

    /// Builds a fresh policy instance for one simulation run.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Unknown`] if the design is not registered.
    pub fn instantiate(
        &self,
        design: SqDesign,
        cfg: &SimConfig,
    ) -> Result<Box<dyn ForwardingPolicy>, RegistryError> {
        let factory = {
            let inner = self.inner.read().expect("registry lock poisoned");
            inner
                .entries
                .get(design.name())
                .map(|e| Arc::clone(&e.factory))
                .ok_or_else(|| RegistryError::Unknown(design.name().to_string()))?
        };
        Ok(factory(cfg))
    }

    /// All registered design names, in registration order (builtins
    /// first).
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        let inner = self.inner.read().expect("registry lock poisoned");
        inner.order.clone()
    }
}

impl std::fmt::Debug for DesignRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DesignRegistry")
            .field("designs", &self.names())
            .finish()
    }
}

/// The paper's seven designs, in Figure 4's left-to-right order.
const BUILTIN_DESIGNS: [(&str, DesignCaps); 7] = [
    (
        "ideal-oracle",
        DesignCaps {
            oracle: true,
            indexed: false,
            delay: false,
            original_store_sets: false,
            fwd_latency_pred: false,
            sq_latency: 3,
        },
    ),
    (
        "associative-3-storesets",
        DesignCaps {
            oracle: false,
            indexed: false,
            delay: false,
            original_store_sets: true,
            fwd_latency_pred: false,
            sq_latency: 3,
        },
    ),
    (
        "associative-3",
        DesignCaps {
            oracle: false,
            indexed: false,
            delay: false,
            original_store_sets: false,
            fwd_latency_pred: false,
            sq_latency: 3,
        },
    ),
    (
        "associative-5-replay",
        DesignCaps {
            oracle: false,
            indexed: false,
            delay: false,
            original_store_sets: false,
            fwd_latency_pred: false,
            sq_latency: 5,
        },
    ),
    (
        "associative-5-fwdpred",
        DesignCaps {
            oracle: false,
            indexed: false,
            delay: false,
            original_store_sets: false,
            fwd_latency_pred: true,
            sq_latency: 5,
        },
    ),
    (
        "indexed-3-fwd",
        DesignCaps {
            oracle: false,
            indexed: true,
            delay: false,
            original_store_sets: false,
            fwd_latency_pred: false,
            sq_latency: 3,
        },
    ),
    (
        "indexed-3-fwd+dly",
        DesignCaps {
            oracle: false,
            indexed: true,
            delay: true,
            original_store_sets: false,
            fwd_latency_pred: false,
            sq_latency: 3,
        },
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_knows_all_builtins_plus_the_extension() {
        let names = DesignRegistry::global().names();
        for (name, _) in BUILTIN_DESIGNS {
            assert!(names.contains(&name), "missing builtin `{name}`");
        }
        assert!(names.contains(&"indexed-5-fwd+dly"));
    }

    #[test]
    fn extension_design_caps_are_the_indexed_scheme_at_five_cycles() {
        let d = DesignRegistry::global()
            .lookup("indexed-5-fwd+dly")
            .expect("extension registered");
        assert!(d.is_indexed());
        assert!(d.uses_delay());
        assert_eq!(d.sq_latency(), 5);
        assert!(!d.predicts_forward_latency());
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let r = DesignRegistry::empty();
        let caps = DesignCaps::associative(3);
        r.register_builtin("dup", caps).unwrap();
        assert_eq!(
            r.register_builtin("dup", caps).unwrap_err(),
            RegistryError::Duplicate("dup".to_string())
        );
    }

    #[test]
    fn legacy_alias_names_are_reserved() {
        // Name resolution rewrites legacy spellings to the builtins, so a
        // design registered under one could never be reached by name.
        let r = DesignRegistry::empty();
        assert_eq!(
            r.register_builtin("IdealOracle", DesignCaps::associative(3))
                .unwrap_err(),
            RegistryError::ReservedAlias("IdealOracle".to_string())
        );
        assert!(matches!(
            DesignRegistry::global().register_builtin("Indexed3FwdDly", DesignCaps::indexed(3)),
            Err(RegistryError::ReservedAlias(_))
        ));
    }

    #[test]
    fn instantiate_unknown_design_errors() {
        let r = DesignRegistry::empty();
        let d = DesignRegistry::global().lookup("associative-3").unwrap();
        let cfg = SimConfig::with_design(d);
        assert!(matches!(
            r.instantiate(d, &cfg),
            Err(RegistryError::Unknown(_))
        ));
    }

    #[test]
    fn registered_policies_report_their_caps() {
        let r = DesignRegistry::empty();
        let caps = DesignCaps::indexed(4).with_delay();
        let d = r.register_builtin("custom-idx-4", caps).unwrap();
        assert_eq!(r.caps(d), Some(caps));
        let cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
        let policy = r.instantiate(d, &cfg).unwrap();
        assert_eq!(policy.caps(), caps);
    }
}
