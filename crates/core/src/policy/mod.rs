//! The open design-policy API: store-queue designs as pluggable objects.
//!
//! The paper's whole evaluation is a comparison of store-queue *designs*;
//! this module makes that axis open. A design is a [`ForwardingPolicy`]
//! object owning its predictor state (FSP/SAT/DDP/SSBF/SPCT/Store Sets)
//! and its decisions at the five pipeline touch-points:
//!
//! 1. **rename** — dependence / forwarding-index prediction
//!    ([`ForwardingPolicy::rename_load`], [`ForwardingPolicy::rename_store`]);
//! 2. **schedule** — load latency speculation
//!    ([`ForwardingPolicy::wakeup_latency`]);
//! 3. **execute** — how a load probes the store queue (associative search
//!    vs speculative indexed read, [`ForwardingPolicy::probe_sq`]);
//! 4. **commit / verify** — the SVW filter and predictor training
//!    ([`ForwardingPolicy::svw_newest`], [`ForwardingPolicy::train_load_commit`],
//!    [`ForwardingPolicy::store_committed`]);
//! 5. **flush repair** — rolling predictor state back after a squash
//!    ([`ForwardingPolicy::on_flush`], [`ForwardingPolicy::on_ssn_wrap`]).
//!
//! The pipeline ([`Processor`](crate::Processor)) never branches on a
//! design name: it calls the policy and applies the returned decisions.
//! All seven designs of the paper's Figure 4 are [`BuiltinPolicy`]
//! instances differing only in their [`DesignCaps`]; new designs register
//! by name in the [`DesignRegistry`] and immediately work everywhere a
//! [`SqDesign`](crate::SqDesign) does — `Experiment` sweeps, JSON results,
//! figure bins, CLI flags.
//!
//! # Implementing a custom policy
//!
//! A policy only has to answer the probe/verify hooks; everything else
//! defaults to "no prediction". The policy below serialises every load
//! behind all older stores (so loads always read committed memory and
//! nothing is ever speculative — the classic maximally-conservative
//! baseline):
//!
//! ```
//! use sqip_core::{
//!     DesignCaps, DesignRegistry, ForwardingPolicy, LoadRename, OracleHint,
//!     PipelineView, Processor, SimConfig, SqProbe,
//! };
//! use sqip_queues::StoreQueue;
//! use sqip_types::{AddrSpan, DataSize, Pc, Ssn};
//!
//! #[derive(Debug)]
//! struct SerializeLoads;
//!
//! impl ForwardingPolicy for SerializeLoads {
//!     fn caps(&self) -> DesignCaps {
//!         DesignCaps::associative(3)
//!     }
//!     fn rename_load(
//!         &mut self,
//!         _pc: Pc,
//!         _path: u64,
//!         _oracle: Option<OracleHint>,
//!         view: &PipelineView<'_>,
//!     ) -> LoadRename {
//!         let mut decision = LoadRename::none();
//!         if view.ssn_ren > view.ssn_cmt {
//!             // Wait until every older store has committed.
//!             decision.commit_gate = Some(view.ssn_ren);
//!         }
//!         decision
//!     }
//!     fn probe_sq(
//!         &self,
//!         _sq: &StoreQueue,
//!         _prev_store_ssn: Ssn,
//!         _ssn_fwd: Ssn,
//!         _ssn_cmt: Ssn,
//!         _span: AddrSpan,
//!         _size: DataSize,
//!     ) -> SqProbe {
//!         SqProbe::Miss // loads always read committed memory
//!     }
//!     fn svw_newest(&self, _span: AddrSpan) -> Ssn {
//!         Ssn::NONE // nothing is speculative, nothing to re-execute
//!     }
//!     fn store_committed(&mut self, _pc: Pc, _span: AddrSpan, _ssn: Ssn) {}
//! }
//!
//! let design = DesignRegistry::global()
//!     .register("serialize-loads", SerializeLoads.caps(), |_| {
//!         Box::new(SerializeLoads)
//!     })
//!     .unwrap();
//!
//! // The custom design now runs through the ordinary front door.
//! use sqip_isa::{trace_program, ProgramBuilder, Reg};
//! use sqip_types::DataSize as Sz;
//! let mut b = ProgramBuilder::new();
//! let (v, t) = (Reg::new(1), Reg::new(2));
//! b.load_imm(v, 7);
//! b.store(Sz::Quad, v, Reg::ZERO, 0x100);
//! b.load(Sz::Quad, t, Reg::ZERO, 0x100);
//! b.halt();
//! let trace = trace_program(&b.build()?, 100)?;
//! let stats = Processor::new(SimConfig::with_design(design), &trace).run();
//! assert_eq!(stats.committed, trace.len() as u64);
//! assert_eq!(stats.mis_forwards, 0, "fully serialised loads never misspeculate");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod builtin;
mod registry;

pub use builtin::BuiltinPolicy;
pub use registry::{DesignRegistry, RegistryError};

use sqip_queues::StoreQueue;
use sqip_types::{AddrSpan, DataSize, Pc, Seq, Ssn};

/// Static capabilities of a store-queue design: what the surrounding
/// machine needs to know about a policy without running it.
///
/// Builtin designs are fully described by their capabilities (that is what
/// made the old closed enum possible); custom [`ForwardingPolicy`]
/// implementations may go beyond them, but must still report honest values
/// here — in particular [`DesignCaps::indexed`], which configuration
/// validation uses to reject the (unsound) LQ-CAM ordering mode for
/// indexed designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignCaps {
    /// Load scheduling is oracle: the pipeline feeds the policy golden
    /// forwarding information ([`OracleHint`]) at rename.
    pub oracle: bool,
    /// Loads access the SQ by predicted index instead of associatively.
    pub indexed: bool,
    /// The delay index predictor (DDP) is active.
    pub delay: bool,
    /// Scheduling uses the original SSIT/LFST Store Sets predictor
    /// instead of the paper's FSP/SAT reformulation.
    pub original_store_sets: bool,
    /// Dependents of predicted-forwarding loads are scheduled at SQ
    /// latency (the "forwarding prediction" latency hybrid of §4.2).
    pub fwd_latency_pred: bool,
    /// SQ access latency in cycles for forwarded loads.
    pub sq_latency: u64,
}

impl DesignCaps {
    /// A plain associative design with the given SQ latency and the
    /// reformulated Store Sets (FSP/SAT) scheduler.
    #[must_use]
    pub fn associative(sq_latency: u64) -> DesignCaps {
        DesignCaps {
            oracle: false,
            indexed: false,
            delay: false,
            original_store_sets: false,
            fwd_latency_pred: false,
            sq_latency,
        }
    }

    /// A speculatively-indexed design with the given SQ latency and
    /// forwarding index prediction.
    #[must_use]
    pub fn indexed(sq_latency: u64) -> DesignCaps {
        DesignCaps {
            indexed: true,
            ..DesignCaps::associative(sq_latency)
        }
    }

    /// Adds delay index prediction (the DDP).
    #[must_use]
    pub fn with_delay(mut self) -> DesignCaps {
        self.delay = true;
        self
    }

    /// Switches scheduling to oracle (golden forwarding information).
    #[must_use]
    pub fn with_oracle(mut self) -> DesignCaps {
        self.oracle = true;
        self
    }

    /// Switches scheduling to the original SSIT/LFST Store Sets.
    #[must_use]
    pub fn with_original_store_sets(mut self) -> DesignCaps {
        self.original_store_sets = true;
        self
    }

    /// Adds the forwarding-latency scheduling hybrid (§4.2).
    #[must_use]
    pub fn with_fwd_latency_pred(mut self) -> DesignCaps {
        self.fwd_latency_pred = true;
        self
    }
}

sqip_snapshot::snapshot_struct!(DesignCaps {
    oracle,
    indexed,
    delay,
    original_store_sets,
    fwd_latency_pred,
    sq_latency,
});

/// The slice of pipeline state a policy may consult when deciding.
#[derive(Debug)]
pub struct PipelineView<'a> {
    /// SSN of the youngest renamed store (the rename-time counter).
    pub ssn_ren: Ssn,
    /// SSN of the youngest committed store (the high-water mark).
    pub ssn_cmt: Ssn,
    /// The store queue (read-only: occupancy / execution state probes).
    pub sq: &'a StoreQueue,
}

/// Golden forwarding information the pipeline hands an oracle policy at
/// load rename (only when [`DesignCaps::oracle`] is set).
#[derive(Debug, Clone, Copy)]
pub struct OracleHint {
    /// The SSN of the architectural producing store, if it is in flight.
    pub store_ssn: Option<Ssn>,
    /// Whether that store fully covers the load's bytes.
    pub covers: bool,
}

/// A policy's rename-time decisions for one load.
///
/// The pipeline copies the prediction fields into the load's in-flight
/// state and arms one scheduling gate per `Some` gate field.
#[derive(Debug, Clone, Copy)]
pub struct LoadRename {
    /// FSP-predicted (partial) store PC the load expects to forward from.
    pub pred_store_pc: Option<u64>,
    /// Predicted forwarding SSN (the indexed-SQ read index).
    pub ssn_fwd: Ssn,
    /// Delay SSN: the load may not execute until this store has committed.
    pub ssn_dly: Ssn,
    /// Store whose execution the load's issue chases (it replays if it
    /// reaches execute first).
    pub wait_exec_ssn: Option<Ssn>,
    /// Whether the delay gate below is a DDP-imposed delay (for the
    /// delayed-loads statistics).
    pub delay_gated: bool,
    /// Gate the load until this store *executes*.
    pub exec_gate: Option<Ssn>,
    /// Gate the load until this store *commits*.
    pub commit_gate: Option<Ssn>,
}

impl LoadRename {
    /// No prediction: the load schedules and executes unconstrained.
    #[must_use]
    pub fn none() -> LoadRename {
        LoadRename {
            pred_store_pc: None,
            ssn_fwd: Ssn::NONE,
            ssn_dly: Ssn::NONE,
            wait_exec_ssn: None,
            delay_gated: false,
            exec_gate: None,
            commit_gate: None,
        }
    }
}

impl Default for LoadRename {
    fn default() -> LoadRename {
        LoadRename::none()
    }
}

/// Outcome of a policy's store-queue probe for an executing load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqProbe {
    /// Forward `value` from store `ssn` at `latency` cycles.
    Forward {
        /// The forwarding store (also becomes the load's SVW field).
        ssn: Ssn,
        /// The forwarded value.
        value: u64,
        /// SQ access latency for this load.
        latency: u64,
    },
    /// A store partially covers the load; no single entry can supply the
    /// value. The load stalls until that store commits, then retries.
    Partial {
        /// The partially-overlapping store.
        ssn: Ssn,
    },
    /// Nothing to forward: the load uses the data-cache value.
    Miss,
}

/// Everything a policy sees about a committing load when it trains.
#[derive(Debug, Clone, Copy)]
pub struct LoadCommitInfo {
    /// The load's static PC.
    pub pc: Pc,
    /// The load's address span.
    pub span: AddrSpan,
    /// Whether the load mis-forwarded and triggered a flush this commit.
    pub flushed: bool,
    /// The rename-time FSP prediction (partial store PC), if any.
    pub pred_store_pc: Option<u64>,
    /// The rename-time predicted forwarding SSN.
    pub ssn_fwd: Ssn,
    /// SSN of the youngest store older than the load in program order
    /// (equals `SSNcmt` at the load's commit).
    pub prev_store_ssn: Ssn,
    /// Whether the DDP delay gate was armed for this load.
    pub was_delayed: bool,
    /// Fetch-time branch-path history (for path-qualified FSP training).
    pub path: u64,
}

/// A store-queue design: predictor state plus decisions at the five
/// pipeline touch-points (see the [module docs](self)).
///
/// Policies must be [`Send`] (experiment sweeps execute cells on worker
/// threads) and [`Debug`] (the processor is debug-printable).
///
/// Methods with default implementations are optional; the required core
/// is [`ForwardingPolicy::caps`], the execute-time probe and the
/// commit-time verify hooks.
pub trait ForwardingPolicy: Send + std::fmt::Debug {
    /// The design's static capabilities.
    fn caps(&self) -> DesignCaps;

    /// **Rename (store):** observes a renaming store and optionally
    /// returns a store SSN whose *execution* must gate this store's issue
    /// (in-set serialisation under original Store Sets).
    fn rename_store(&mut self, pc: Pc, ssn: Ssn, seq: Seq, view: &PipelineView<'_>) -> Option<Ssn> {
        let _ = (pc, ssn, seq, view);
        None
    }

    /// **Rename (load):** predicts the load's forwarding behaviour and
    /// scheduling gates. `oracle` carries golden forwarding information
    /// iff [`DesignCaps::oracle`] is set.
    fn rename_load(
        &mut self,
        pc: Pc,
        path: u64,
        oracle: Option<OracleHint>,
        view: &PipelineView<'_>,
    ) -> LoadRename {
        let _ = (pc, path, oracle, view);
        LoadRename::none()
    }

    /// **Schedule:** the load latency the scheduler assumes when waking
    /// dependents. `predicts_forward` is whether the load carries a
    /// forwarding prediction; the default assumes a cache hit (dependents
    /// of forwarded loads replay if the SQ is slower).
    fn wakeup_latency(&self, predicts_forward: bool, cache_latency: u64) -> u64 {
        let _ = predicts_forward;
        cache_latency
    }

    /// **Execute:** how a load probes the store queue — associative
    /// search, speculative indexed read, or anything else expressible
    /// over the [`StoreQueue`] API.
    fn probe_sq(
        &self,
        sq: &StoreQueue,
        prev_store_ssn: Ssn,
        ssn_fwd: Ssn,
        ssn_cmt: Ssn,
        span: AddrSpan,
        size: DataSize,
    ) -> SqProbe;

    /// **Execute:** a store executed (address and data now known).
    fn store_executed(&mut self, pc: Pc, ssn: Ssn) {
        let _ = (pc, ssn);
    }

    /// **Execute:** under the LQ-CAM ordering mode, an executing store
    /// caught a younger already-executed load (an ordering violation);
    /// train the scheduler.
    fn cam_violation(&mut self, load_pc: Pc, store_pc: Pc) {
        let _ = (load_pc, store_pc);
    }

    /// **Commit/verify:** the SVW filter — the SSN of the youngest
    /// committed store that wrote any byte of `span` (the SSBF read).
    /// A committing load re-executes iff this exceeds its SVW field.
    fn svw_newest(&self, span: AddrSpan) -> Ssn;

    /// **Commit/verify:** trains the predictors on a committing load.
    fn train_load_commit(&mut self, load: &LoadCommitInfo) {
        let _ = load;
    }

    /// **Commit/verify:** a store committed; update the verification
    /// structures (SSBF/SPCT in the builtin designs).
    fn store_committed(&mut self, pc: Pc, span: AddrSpan, ssn: Ssn);

    /// **Commit:** an instruction retired (predictor log pruning).
    fn on_retire(&mut self, seq: Seq) {
        let _ = seq;
    }

    /// **Flush repair:** instructions at or younger than `from` were
    /// squashed; roll speculative predictor state back.
    fn on_flush(&mut self, from: Seq) {
        let _ = from;
    }

    /// **Flush repair:** the hardware SSN space wrapped; the pipeline has
    /// drained and every SSN-holding structure must clear.
    fn on_ssn_wrap(&mut self) {}
}

/// The engines' policy handle: **statically dispatched** to the builtin
/// machinery when the design was registered through
/// [`DesignRegistry::register_builtin`] (every figure-sweep design — the
/// hot path, where the per-memory-op virtual calls and their lost
/// inlining are measurable), and dynamically to the registered factory's
/// [`ForwardingPolicy`] otherwise. The two arms behave identically; the
/// enum only recovers the concrete type the registry's `Box<dyn>` erases.
pub(crate) enum PolicyHost {
    /// A builtin-capability design, dispatched without a vtable.
    Builtin(Box<BuiltinPolicy>),
    /// A custom registered policy, dispatched through the trait object.
    Custom(Box<dyn ForwardingPolicy>),
}

macro_rules! host_dispatch {
    ($self:ident, $p:ident => $call:expr) => {
        match $self {
            PolicyHost::Builtin($p) => $call,
            PolicyHost::Custom($p) => $call,
        }
    };
}

impl PolicyHost {
    /// Builds the policy for `cfg.design`, recovering static dispatch for
    /// builtin-capability designs.
    ///
    /// # Panics
    ///
    /// Panics if the design is unregistered (callers validate the
    /// configuration first, which resolves the design).
    pub(crate) fn instantiate(cfg: &crate::config::SimConfig) -> PolicyHost {
        let registry = DesignRegistry::global();
        if let Some(caps) = registry.builtin_caps(cfg.design) {
            PolicyHost::Builtin(Box::new(BuiltinPolicy::new(caps, cfg)))
        } else {
            PolicyHost::Custom(
                registry
                    .instantiate(cfg.design, cfg)
                    .expect("design resolved during config validation"),
            )
        }
    }

    #[inline]
    pub(crate) fn caps(&self) -> DesignCaps {
        host_dispatch!(self, p => p.caps())
    }

    /// Serialises the policy's predictor state into a checkpoint.
    ///
    /// Only builtin designs are checkpointable: a custom
    /// [`ForwardingPolicy`] is an opaque trait object whose state the
    /// snapshot layer cannot see.
    pub(crate) fn save_snapshot(
        &self,
        w: &mut sqip_snapshot::SnapWriter,
    ) -> Result<(), sqip_snapshot::SnapError> {
        match self {
            PolicyHost::Builtin(p) => {
                use sqip_snapshot::Snapshot as _;
                p.save(w)
            }
            PolicyHost::Custom(p) => Err(sqip_snapshot::SnapError::Unsupported(format!(
                "custom forwarding policies cannot be checkpointed: {p:?}"
            ))),
        }
    }

    /// Restores a checkpointed builtin policy for `cfg.design`.
    pub(crate) fn load_snapshot(
        r: &mut sqip_snapshot::SnapReader,
        cfg: &crate::config::SimConfig,
    ) -> Result<PolicyHost, sqip_snapshot::SnapError> {
        if DesignRegistry::global().builtin_caps(cfg.design).is_none() {
            return Err(sqip_snapshot::SnapError::Unsupported(format!(
                "design {} is not a builtin-capability design; custom \
                 policies cannot be restored from a checkpoint",
                cfg.design
            )));
        }
        use sqip_snapshot::Snapshot as _;
        Ok(PolicyHost::Builtin(Box::new(BuiltinPolicy::load(r)?)))
    }

    #[inline]
    pub(crate) fn rename_store(
        &mut self,
        pc: Pc,
        ssn: Ssn,
        seq: Seq,
        view: &PipelineView<'_>,
    ) -> Option<Ssn> {
        host_dispatch!(self, p => p.rename_store(pc, ssn, seq, view))
    }

    #[inline]
    pub(crate) fn rename_load(
        &mut self,
        pc: Pc,
        path: u64,
        oracle: Option<OracleHint>,
        view: &PipelineView<'_>,
    ) -> LoadRename {
        host_dispatch!(self, p => p.rename_load(pc, path, oracle, view))
    }

    #[inline]
    pub(crate) fn wakeup_latency(&self, predicts_forward: bool, cache_latency: u64) -> u64 {
        host_dispatch!(self, p => p.wakeup_latency(predicts_forward, cache_latency))
    }

    #[inline]
    pub(crate) fn probe_sq(
        &self,
        sq: &StoreQueue,
        prev_store_ssn: Ssn,
        ssn_fwd: Ssn,
        ssn_cmt: Ssn,
        span: AddrSpan,
        size: DataSize,
    ) -> SqProbe {
        host_dispatch!(self, p => p.probe_sq(sq, prev_store_ssn, ssn_fwd, ssn_cmt, span, size))
    }

    #[inline]
    pub(crate) fn store_executed(&mut self, pc: Pc, ssn: Ssn) {
        host_dispatch!(self, p => p.store_executed(pc, ssn));
    }

    #[inline]
    pub(crate) fn cam_violation(&mut self, load_pc: Pc, store_pc: Pc) {
        host_dispatch!(self, p => p.cam_violation(load_pc, store_pc));
    }

    #[inline]
    pub(crate) fn svw_newest(&self, span: AddrSpan) -> Ssn {
        host_dispatch!(self, p => p.svw_newest(span))
    }

    #[inline]
    pub(crate) fn train_load_commit(&mut self, load: &LoadCommitInfo) {
        host_dispatch!(self, p => p.train_load_commit(load));
    }

    #[inline]
    pub(crate) fn store_committed(&mut self, pc: Pc, span: AddrSpan, ssn: Ssn) {
        host_dispatch!(self, p => p.store_committed(pc, span, ssn));
    }

    #[inline]
    pub(crate) fn on_retire(&mut self, seq: Seq) {
        host_dispatch!(self, p => p.on_retire(seq));
    }

    #[inline]
    pub(crate) fn on_flush(&mut self, from: Seq) {
        host_dispatch!(self, p => p.on_flush(from));
    }

    #[inline]
    pub(crate) fn on_ssn_wrap(&mut self) {
        host_dispatch!(self, p => p.on_ssn_wrap());
    }
}
