//! The table-driven builtin policy behind all seven Figure 4 designs
//! (and any capability combination a user registers).

use sqip_predictors::{Ddp, Fsp, Sat, Spct, Ssbf, StoreSets};
use sqip_queues::{SqSearch, StoreQueue};
use sqip_types::{AddrSpan, DataSize, Pc, Seq, Ssn};

use crate::config::SimConfig;
use crate::policy::{
    DesignCaps, ForwardingPolicy, LoadCommitInfo, LoadRename, OracleHint, PipelineView, SqProbe,
};

/// The paper's design family as one parameterised [`ForwardingPolicy`]:
/// a [`DesignCaps`] descriptor plus the full predictor bank
/// (FSP/SAT/DDP/SSBF/SPCT/Store Sets), each structure sized from the
/// [`SimConfig`].
///
/// Every builtin design — and any new capability combination, such as the
/// registry's `indexed-5-fwd+dly` — is an instance of this type; the old
/// closed-enum capability branches live here now, keyed off `caps`.
#[derive(Debug)]
pub struct BuiltinPolicy {
    caps: DesignCaps,
    sq_size: usize,
    fsp: Fsp,
    sat: Sat,
    ddp: Ddp,
    ssbf: Ssbf,
    spct: Spct,
    store_sets: StoreSets,
}

impl BuiltinPolicy {
    /// Builds the predictor bank for one run, sized from `cfg`.
    #[must_use]
    pub fn new(caps: DesignCaps, cfg: &SimConfig) -> BuiltinPolicy {
        BuiltinPolicy {
            caps,
            sq_size: cfg.sq_size,
            fsp: Fsp::new(cfg.fsp),
            sat: Sat::new(cfg.sat_entries),
            ddp: Ddp::new(cfg.ddp),
            ssbf: Ssbf::new(cfg.ssbf_entries),
            spct: Spct::new(cfg.spct_entries),
            store_sets: StoreSets::new(cfg.store_sets),
        }
    }

    /// Pseudo-PC naming a store in the original Store Sets tables: derived
    /// from the partial store PC so that SPCT-based violation training and
    /// rename-time lookups agree.
    fn store_pseudo_pc(&self, pc: Pc) -> Pc {
        Pc::from_index(self.fsp.partial_store_pc(pc) as usize)
    }
}

impl ForwardingPolicy for BuiltinPolicy {
    fn caps(&self) -> DesignCaps {
        self.caps
    }

    fn rename_store(&mut self, pc: Pc, ssn: Ssn, seq: Seq, view: &PipelineView<'_>) -> Option<Ssn> {
        self.sat.update(self.fsp.partial_store_pc(pc), ssn, seq);
        if self.caps.original_store_sets {
            // In-set store serialisation: this store becomes the set's
            // last-fetched store and orders behind its predecessor.
            // Stores are named by the same partial-PC pseudo-PC used in
            // violation training (the SPCT stores partial PCs).
            let pseudo = self.store_pseudo_pc(pc);
            let pred = self.store_sets.rename_store(pseudo, ssn);
            if pred.is_in_flight(view.ssn_cmt) && !view.sq.is_executed(pred) {
                return Some(pred);
            }
        }
        None
    }

    fn rename_load(
        &mut self,
        pc: Pc,
        path: u64,
        oracle: Option<OracleHint>,
        view: &PipelineView<'_>,
    ) -> LoadRename {
        let mut out = LoadRename::none();

        if self.caps.oracle {
            if let Some(hint) = oracle {
                if let Some(ssn) = hint.store_ssn {
                    if hint.covers {
                        out.wait_exec_ssn = Some(ssn);
                        if !view.sq.is_executed(ssn) {
                            out.exec_gate = Some(ssn);
                        }
                    } else if ssn > view.ssn_cmt {
                        // Partial coverage: wait for the store to commit.
                        out.commit_gate = Some(ssn);
                    }
                }
            }
            return out;
        }

        if self.caps.original_store_sets {
            // Original Store Sets: the load waits for the last fetched
            // store of its set to execute.
            let ssn = self.store_sets.rename_load(pc);
            if ssn.is_in_flight(view.ssn_cmt) {
                out.ssn_fwd = ssn;
                out.wait_exec_ssn = Some(ssn);
                if !view.sq.is_executed(ssn) {
                    out.exec_gate = Some(ssn);
                }
            }
            return out;
        }

        // Forwarding index prediction: FSP at decode, SAT at rename, keep
        // the youngest in-flight SSN.
        let mut best: Option<(u64, Ssn)> = None;
        for store_pc in self.fsp.predict_with_path(pc, path) {
            let ssn = self.sat.lookup(store_pc);
            if ssn.is_in_flight(view.ssn_cmt) && best.is_none_or(|(_, b)| ssn > b) {
                best = Some((store_pc, ssn));
            }
        }
        if let Some((store_pc, ssn)) = best {
            out.pred_store_pc = Some(store_pc);
            out.ssn_fwd = ssn;
            out.wait_exec_ssn = Some(ssn);
            if !view.sq.is_executed(ssn) {
                out.exec_gate = Some(ssn);
            }
        }

        // Delay index prediction: SSNdly = SSNren − Ddly; the load waits
        // until that store commits.
        if self.caps.delay {
            if let Some(d) = self.ddp.predict(pc) {
                let ssn_dly = view.ssn_ren.minus(d);
                out.ssn_dly = ssn_dly;
                if ssn_dly > view.ssn_cmt {
                    out.delay_gated = true;
                    out.commit_gate = Some(ssn_dly);
                }
            }
        }
        out
    }

    fn wakeup_latency(&self, predicts_forward: bool, cache_latency: u64) -> u64 {
        if self.caps.fwd_latency_pred && predicts_forward {
            // Forward-predicted loads schedule dependents at SQ latency;
            // everything else at cache latency.
            self.caps.sq_latency
        } else {
            // All other designs optimistically assume a cache hit;
            // mismatches replay dependents.
            cache_latency
        }
    }

    fn probe_sq(
        &self,
        sq: &StoreQueue,
        prev_store_ssn: Ssn,
        ssn_fwd: Ssn,
        ssn_cmt: Ssn,
        span: AddrSpan,
        size: DataSize,
    ) -> SqProbe {
        if self.caps.indexed {
            // Speculative indexed access: read the single predicted entry.
            match ssn_fwd
                .is_in_flight(ssn_cmt)
                .then(|| sq.indexed_read(ssn_fwd, span, size))
                .flatten()
            {
                Some(value) => SqProbe::Forward {
                    ssn: ssn_fwd,
                    value,
                    latency: self.caps.sq_latency,
                },
                None => SqProbe::Miss,
            }
        } else {
            // Conventional fully-associative search.
            match sq.search(prev_store_ssn, span, size) {
                SqSearch::Forward { ssn, value } => SqProbe::Forward {
                    ssn,
                    value,
                    latency: self.caps.sq_latency,
                },
                SqSearch::Partial { ssn } => SqProbe::Partial { ssn },
                SqSearch::Miss => SqProbe::Miss,
            }
        }
    }

    fn store_executed(&mut self, pc: Pc, ssn: Ssn) {
        if self.caps.original_store_sets {
            let pseudo = self.store_pseudo_pc(pc);
            self.store_sets.store_executed(pseudo, ssn);
        }
    }

    fn cam_violation(&mut self, load_pc: Pc, store_pc: Pc) {
        if self.caps.original_store_sets {
            let pseudo = self.store_pseudo_pc(store_pc);
            self.store_sets.violation(load_pc, pseudo);
        } else if !self.caps.oracle {
            self.fsp.learn(load_pc, self.fsp.partial_store_pc(store_pc));
        }
    }

    fn svw_newest(&self, span: AddrSpan) -> Ssn {
        self.ssbf.newest(span)
    }

    /// FSP/DDP training at load commit, per Table 1 and §3.2–3.3.
    fn train_load_commit(&mut self, load: &LoadCommitInfo) {
        if self.caps.oracle {
            return;
        }
        if self.caps.original_store_sets {
            // Original Store Sets trains on violations: merge the load and
            // the producing store (recovered via the SPCT as a pseudo-PC,
            // exactly the Table 1 row-1 `SSIT[ld.PC, SPCT[ld.A]]` action).
            if load.flushed {
                if let Some(partial) = load
                    .span
                    .byte_addrs()
                    .find_map(|b| self.spct.lookup_byte(b))
                {
                    self.store_sets
                        .violation(load.pc, Pc::from_index(partial as usize));
                }
            }
            return;
        }

        let newest = self.ssbf.newest(load.span);
        // Distance in dynamic stores from the load's rename point back to
        // the actual producer (SSNcmt at load commit == prev_store_ssn).
        // Ssn::NONE yields a huge distance, i.e. "no forwarding possible".
        let dist = load.prev_store_ssn.distance_from(newest);
        let forwarding_possible = newest.is_some() && dist < self.sq_size as u64;

        // Delay training (§3.3 / Table 1): every wrong forwarding
        // prediction (SSNfwd != SSBF[A]) raises the delay counter; correct
        // predictions lower it. The *distance* fields are only trained when
        // the event carries corroborated evidence — the load flushed, was
        // forcibly delayed, or named the right PC but the wrong dynamic
        // instance (the not-most-recent signature). Wrong predictions
        // whose cache value was right anyway keep the counter trained but
        // leave the distance at max (an effective no-delay), so aliasing
        // noise in the 2K-entry SSBF cannot manufacture real delays.
        if self.caps.delay {
            let wrong = load.ssn_fwd != newest;
            if !wrong {
                self.ddp.unlearn(load.pc);
            } else {
                let pc_right_instance_wrong =
                    forwarding_possible && load.pred_store_pc.is_some() && {
                        let actual = load
                            .span
                            .byte_addrs()
                            .find(|b| self.ssbf.newest(b.span(DataSize::Byte)) == newest)
                            .and_then(|b| self.spct.lookup_byte(b));
                        load.pred_store_pc == actual
                    };
                let evidence = load.flushed || load.was_delayed || pc_right_instance_wrong;
                self.ddp.learn(load.pc, evidence.then_some(dist));
            }
        }

        if !forwarding_possible {
            // The load and the most recent store to its address are too far
            // apart for forwarding (or there is none): unlearn (§3.2).
            if let Some(pc) = load.pred_store_pc {
                self.fsp.weaken_with_path(load.pc, pc, load.path);
            }
            return;
        }

        // Recover the actual producing store's PC from the SPCT (probing
        // the byte whose SSBF entry is newest).
        let actual_pc = load
            .span
            .byte_addrs()
            .find(|b| self.ssbf.newest(b.span(DataSize::Byte)) == newest)
            .and_then(|b| self.spct.lookup_byte(b));

        let instance_correct = load.ssn_fwd == newest;
        let pc_correct = load.pred_store_pc.is_some() && load.pred_store_pc == actual_pc;

        if instance_correct && pc_correct {
            // Correct forwarding prediction: reinforce (§3.2 "we learn
            // store-load dependences on correct forwarding").
            self.fsp.strengthen_with_path(
                load.pc,
                load.pred_store_pc.expect("pc_correct implies prediction"),
                load.path,
            );
        } else if pc_correct {
            let pc = load.pred_store_pc.expect("pc_correct implies prediction");
            if self.caps.indexed {
                // Right store PC, wrong dynamic instance (not-most-recent
                // forwarding): an indexed SQ cannot exploit this entry —
                // "there is no point in delaying the load on a store
                // instance on which it is known not to depend" — unlearn.
                self.fsp.weaken_with_path(load.pc, pc, load.path);
            } else {
                // For an associative SQ the FSP is only a scheduler, and
                // gating on the most recent instance transitively orders
                // the load behind the true (older) producer, which the
                // search then finds: the dependence is useful — reinforce.
                self.fsp.strengthen_with_path(load.pc, pc, load.path);
            }
        } else if load.flushed {
            // "... and on mis-forwardings in which we fail to predict not
            // only the forwarding index, but also the forwarding store PC"
            // — new dependences are created only by actual mis-forwardings,
            // so lossy-SSBF aliasing cannot plant spurious dependences.
            if let Some(actual) = actual_pc {
                self.fsp.learn_with_path(load.pc, actual, load.path);
            }
        }
    }

    fn store_committed(&mut self, pc: Pc, span: AddrSpan, ssn: Ssn) {
        self.ssbf.update(span, ssn);
        self.spct.update(span, self.fsp.partial_store_pc(pc));
    }

    fn on_retire(&mut self, seq: Seq) {
        self.sat.prune_log(seq);
    }

    fn on_flush(&mut self, from: Seq) {
        self.sat.rollback_younger(from);
        self.store_sets.clear_lfst();
    }

    fn on_ssn_wrap(&mut self) {
        self.ssbf.clear();
        self.spct.clear();
        self.sat.clear();
    }
}

sqip_snapshot::snapshot_struct!(BuiltinPolicy {
    caps,
    sq_size,
    fsp,
    sat,
    ddp,
    ssbf,
    spct,
    store_sets,
});
