//! The shared oracle pass: compute each record's [`OracleFwd`] **once**
//! per workload stream, however many design cells consume it.
//!
//! In a per-cell run every [`Processor`](crate::Processor) ingests the
//! record stream into its own [`OracleBuilder`] (and its own last-writer
//! page table). Under a shared-pass sweep the stream is teed
//! ([`sqip_isa::TraceTee`]) and the dependence analysis would be repeated
//! per consumer — identical inputs, identical outputs. [`oracle_tap`]
//! hoists it: the tap wraps the *upstream* source (before the tee),
//! renumbers and analyses each record as it is pulled, and publishes the
//! per-record oracle info in a bounded ring the consumers' [`OracleFeed`]
//! handles read instead of ingesting.
//!
//! The feed ring is sized past the tee window, so an entry lives at least
//! as long as the teed record it describes; consumers read a record's
//! info exactly when they pull the record.

use std::cell::RefCell;
use std::rc::Rc;

use sqip_isa::{IsaError, TraceRecord, TraceSource};
use sqip_types::Seq;

use crate::oracle::{OracleBuilder, OracleFwd};

struct FwdBuf {
    ring: Vec<Option<OracleFwd>>,
    mask: u64,
    /// Records analysed so far (== the tap's pull frontier).
    pushed: u64,
}

/// A [`TraceSource`] adapter that renumbers records in pull order, runs
/// the incremental oracle over them, and publishes each record's
/// [`OracleFwd`] for [`OracleFeed`] readers. Built by [`oracle_tap`];
/// place it *upstream* of a [`sqip_isa::TraceTee`].
pub struct OracleTap<'s> {
    source: Box<dyn TraceSource + 's>,
    oracle: OracleBuilder,
    buf: Rc<RefCell<FwdBuf>>,
}

/// A consumer-side handle onto a shared oracle pass: answers "what is
/// record `seq`'s forwarding info" from the tap's ring, within the
/// sliding window the tee guarantees.
#[derive(Clone)]
pub struct OracleFeed {
    buf: Rc<RefCell<FwdBuf>>,
}

/// Builds a shared oracle pass over `source` for consumers that stay
/// within `window` records of each other (use the tee ring capacity; the
/// feed ring is sized with slack past it).
///
/// # Example
///
/// ```
/// use sqip_core::{oracle_tap, OracleFwd};
/// use sqip_isa::{ProgramBuilder, ProgramSource, Reg, TraceSource, TraceTee};
/// use sqip_types::{DataSize, Seq};
///
/// let mut b = ProgramBuilder::new();
/// b.load_imm(Reg::new(1), 7);
/// b.store(DataSize::Quad, Reg::new(1), Reg::ZERO, 0x100);
/// b.load(DataSize::Quad, Reg::new(2), Reg::ZERO, 0x100);
/// b.halt();
///
/// let (tap, feed) = oracle_tap(ProgramSource::new(b.build()?, 100), 64);
/// let (_tee, mut cursors) = TraceTee::new(tap, 1, 64);
/// let mut cursor = cursors.pop().unwrap();
/// let mut fwds = 0;
/// while let Some(rec) = cursor.next_record()? {
///     if feed.fwd(rec.seq).is_some() {
///         fwds += 1;
///     }
/// }
/// assert_eq!(fwds, 1, "the load's producer was analysed once, upstream");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn oracle_tap<'s>(source: impl TraceSource + 's, window: usize) -> (OracleTap<'s>, OracleFeed) {
    // Twice the consumer window: an entry is overwritten only once the
    // pull frontier is a full ring past it, which the tee's own bound
    // keeps strictly ahead of the slowest consumer.
    let cap = (window.max(1) * 2).next_power_of_two();
    let buf = Rc::new(RefCell::new(FwdBuf {
        ring: vec![None; cap],
        mask: cap as u64 - 1,
        pushed: 0,
    }));
    let feed = OracleFeed {
        buf: Rc::clone(&buf),
    };
    (
        OracleTap {
            source: Box::new(source),
            oracle: OracleBuilder::new(),
            buf,
        },
        feed,
    )
}

impl TraceSource for OracleTap<'_> {
    fn next_record(&mut self) -> Result<Option<TraceRecord>, IsaError> {
        let Some(mut rec) = self.source.next_record()? else {
            return Ok(None);
        };
        let mut buf = self.buf.borrow_mut();
        // Renumber in pull order — the numbering every consumer applies —
        // so the oracle's store sequence numbers match what consumers see.
        rec.seq = Seq(buf.pushed);
        let fwd = self.oracle.ingest(&rec);
        let slot = (buf.pushed & buf.mask) as usize;
        buf.ring[slot] = fwd;
        buf.pushed += 1;
        Ok(Some(rec))
    }

    /// Block pull: one upstream block pull and one feed-ring borrow
    /// amortised over the whole span; renumbering and analysis are
    /// record-by-record identical to the scalar path.
    fn next_block(&mut self, out: &mut [TraceRecord]) -> Result<usize, IsaError> {
        let n = self.source.next_block(out)?;
        if n == 0 {
            return Ok(0);
        }
        let mut buf = self.buf.borrow_mut();
        let buf = &mut *buf;
        for rec in &mut out[..n] {
            rec.seq = Seq(buf.pushed);
            let fwd = self.oracle.ingest(rec);
            buf.ring[(buf.pushed & buf.mask) as usize] = fwd;
            buf.pushed += 1;
        }
        Ok(n)
    }

    fn len_hint(&self) -> Option<u64> {
        self.source.len_hint()
    }
}

impl std::fmt::Debug for OracleTap<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OracleTap")
            .field("analysed", &self.buf.borrow().pushed)
            .finish()
    }
}

impl OracleFeed {
    /// The forwarding info of record `seq`, as computed by the shared
    /// pass when the record was first pulled from the upstream source.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `seq` is within the feed window (not yet
    /// analysed, or already overwritten) — a scheduler bug, since the tee
    /// hands a consumer a record only while its info is live.
    #[must_use]
    pub fn fwd(&self, seq: Seq) -> Option<OracleFwd> {
        let buf = self.buf.borrow();
        debug_assert!(
            seq.0 < buf.pushed && seq.0 + buf.mask + 1 >= buf.pushed,
            "record {} outside the shared oracle window (analysed {})",
            seq.0,
            buf.pushed
        );
        buf.ring[(seq.0 & buf.mask) as usize]
    }

    /// Records analysed by the shared pass so far.
    #[must_use]
    pub fn analysed(&self) -> u64 {
        self.buf.borrow().pushed
    }
}

impl std::fmt::Debug for OracleFeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OracleFeed")
            .field("analysed", &self.analysed())
            .finish()
    }
}

/// How a simulation core obtains per-record oracle info: by running its
/// own incremental [`OracleBuilder`] over the records it pulls (per-cell
/// runs), or by reading a shared pass's [`OracleFeed`] (sweep groups).
pub(crate) enum Analysis {
    /// Per-cell: ingest each pulled record into an owned oracle.
    Own(OracleBuilder),
    /// Shared pass: the record was analysed upstream; read the feed.
    Shared(OracleFeed),
}

impl Analysis {
    /// The oracle info for a just-pulled record (already renumbered to
    /// its consumer-side sequence number).
    #[inline]
    pub(crate) fn fwd_for(&mut self, rec: &TraceRecord) -> Option<OracleFwd> {
        match self {
            Analysis::Own(oracle) => oracle.ingest(rec),
            Analysis::Shared(feed) => feed.fwd(rec.seq),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::OracleInfo;
    use sqip_isa::{trace_program, ProgramBuilder, Reg, TraceTee};
    use sqip_types::DataSize;

    #[test]
    fn shared_pass_matches_the_batch_oracle() {
        let mut b = ProgramBuilder::new();
        let (v, t, ctr) = (Reg::new(1), Reg::new(2), Reg::new(3));
        b.load_imm(v, 7);
        b.load_imm(ctr, 12);
        let top = b.label("top");
        b.store(DataSize::Quad, v, Reg::ZERO, 0x100);
        b.store(DataSize::Word, v, Reg::ZERO, 0x104);
        b.load(DataSize::Quad, t, Reg::ZERO, 0x100);
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        let program = b.build().unwrap();
        let trace = trace_program(&program, 10_000).unwrap();
        let golden = OracleInfo::analyze(&trace);

        let (tap, feed) = oracle_tap(trace.stream(), 32);
        let (_tee, mut cursors) = TraceTee::new(tap, 2, 32);
        let mut b_cur = cursors.pop().unwrap();
        let mut a_cur = cursors.pop().unwrap();
        // Interleaved consumption; both consumers read identical info.
        loop {
            let ra = a_cur.next_record().unwrap();
            let rb = b_cur.next_record().unwrap();
            assert_eq!(ra, rb);
            let Some(rec) = ra else { break };
            assert_eq!(feed.fwd(rec.seq), golden.fwd(rec.seq), "seq {}", rec.seq.0);
        }
    }
}
