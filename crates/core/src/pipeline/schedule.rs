//! Scheduling: issue selection, the event queue (wakeups, replays) and
//! load-latency speculation (the policy's scheduling touch-point).

use std::cmp::Reverse;

use sqip_isa::{OpClass, TraceRecord};
use sqip_types::Seq;

use crate::dyninst::InstState;
use crate::pipeline::{EvKind, Processor, NOT_READY};

impl Processor<'_> {
    pub(crate) fn issue_stage(&mut self) {
        let mix = self.cfg.issue;
        let (mut total, mut int, mut fp, mut br, mut ld, mut st) =
            (mix.total, mix.int, mix.fp, mix.branch, mix.load, mix.store);
        let mut issued = Vec::new();

        for &seq in &self.ready_q {
            if total == 0 {
                break;
            }
            let class = self.window.rec(Seq(seq)).op.class();
            let port = match class {
                OpClass::IntAlu | OpClass::IntMul | OpClass::None => &mut int,
                OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => &mut fp,
                OpClass::Branch => &mut br,
                OpClass::Load => &mut ld,
                OpClass::Store => &mut st,
            };
            if *port == 0 {
                continue; // port conflict: skip, stay ready
            }
            *port -= 1;
            total -= 1;
            issued.push(seq);
        }

        for seq in issued {
            self.ready_q.remove(&seq);
            self.iq_count -= 1;
            let (inc, my_ssn) = {
                let inst = self.insts.get_mut(&seq).expect("ready inst in flight");
                debug_assert_eq!(inst.state, InstState::Ready);
                inst.state = InstState::Issued;
                (inst.incarnation, inst.my_ssn)
            };
            let exec_at = self.cycle + self.cfg.issue_to_exec;
            self.events.push(Reverse((exec_at, EvKind::Exec, seq, inc)));
            if my_ssn.is_some() {
                // Speculatively wake forwarding-gated loads behind this
                // store so their SQ read chases its SQ write.
                self.events
                    .push(Reverse((self.cycle + 1, EvKind::StoreWake, my_ssn.0, inc)));
            }

            // Wakeup broadcast for register consumers, timed so a
            // back-to-back dependent executes exactly when the value is
            // predicted to be ready.
            let rec = *self.window.rec(Seq(seq));
            if rec.dst.is_some() {
                let pred_latency = self.predicted_latency(&rec, seq);
                let broadcast_at = (exec_at + pred_latency)
                    .saturating_sub(self.cfg.issue_to_exec)
                    .max(self.cycle + 1);
                self.vals.set_wake_time(seq, broadcast_at);
                self.events
                    .push(Reverse((broadcast_at, EvKind::Broadcast, seq, inc)));
            }
        }
    }

    /// The latency the scheduler assumes for this instruction's value —
    /// loads defer to the policy's latency-speculation touch-point.
    pub(crate) fn predicted_latency(&self, rec: &TraceRecord, seq: u64) -> u64 {
        let l = self.cfg.latencies;
        match rec.op.class() {
            OpClass::IntAlu | OpClass::None => l.int_alu,
            OpClass::IntMul => l.int_mul,
            OpClass::FpAdd => l.fp_add,
            OpClass::FpMul => l.fp_mul,
            OpClass::FpDiv => l.fp_div,
            OpClass::Branch => l.branch,
            OpClass::Store => 1,
            OpClass::Load => {
                let cache = self.cfg.hierarchy.l1.hit_latency;
                let predicts_forward = self.insts[&seq].ssn_fwd.is_some();
                self.policy.wakeup_latency(predicts_forward, cache)
            }
        }
    }

    // ================================================================
    // Events (execute, wakeup)
    // ================================================================

    pub(crate) fn process_events(&mut self) {
        while let Some(&Reverse((at, kind, seq, inc))) = self.events.peek() {
            if at > self.cycle {
                break;
            }
            self.events.pop();
            // Drop events addressed to squashed incarnations. Broadcasts
            // are exempt: a producer may legitimately commit before its
            // re-broadcast fires, and its registered consumers must still
            // wake (wake_one itself guards against squashed consumers).
            let alive = self.insts.get(&seq).is_some_and(|i| i.incarnation == inc);
            match kind {
                EvKind::Broadcast => self.do_broadcast(seq),
                EvKind::Wake => {
                    if alive {
                        self.wake_one(seq, false);
                    }
                }
                EvKind::StoreWake => {
                    // `seq` carries the store's SSN, not a sequence number.
                    if let Some(waiters) = self.wake_on_store_exec.remove(&seq) {
                        for w in waiters {
                            self.wake_one(w, false);
                        }
                    }
                }
                EvKind::Exec => {
                    if alive {
                        self.do_execute(Seq(seq));
                    }
                }
            }
        }
    }

    fn do_broadcast(&mut self, producer: u64) {
        let Some(consumers) = self.wake_on_value.remove(&producer) else {
            return;
        };
        for c in consumers {
            self.wake_one(c, false);
        }
    }

    pub(crate) fn wake_one(&mut self, seq: u64, is_delay_gate: bool) {
        let Some(inst) = self.insts.get_mut(&seq) else {
            return;
        };
        if inst.state != InstState::Waiting {
            return;
        }
        if inst.release_gate(self.cycle, is_delay_gate) {
            inst.state = InstState::Ready;
            self.ready_q.insert(seq);
        }
    }

    pub(crate) fn replay(&mut self, seq: Seq, unready: &[u64]) {
        self.stats.replays += 1;
        let now = self.cycle;
        let issue_to_exec = self.cfg.issue_to_exec;
        let mut wakes = Vec::new();
        {
            let inst = self
                .insts
                .get_mut(&seq.0)
                .expect("replaying inst in flight");
            inst.state = InstState::Waiting;
            inst.replays += 1;
            inst.gates = unready.len() as u32;
        }
        for &p in unready {
            let vr = self.vals.value_ready(p);
            if vr == NOT_READY {
                // Producer hasn't executed; it will re-broadcast.
                self.wake_on_value.entry(p).or_default().push(seq.0);
            } else {
                wakes.push(vr.saturating_sub(issue_to_exec).max(now + 1));
            }
        }
        self.iq_count += 1;
        let inc = self.insts[&seq.0].incarnation;
        for at in wakes {
            self.events.push(Reverse((at, EvKind::Wake, seq.0, inc)));
        }
    }
}
