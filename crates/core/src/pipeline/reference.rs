//! The **reference engine**: the straightforward per-cycle stepper the
//! event-driven engine (`super::event`) was derived from, frozen here as
//! the differential-testing baseline.
//!
//! Every stage below is a verbatim copy of the pre-event-engine pipeline:
//! in-flight instructions live in a `HashMap`, the ready set is a
//! `BTreeSet` scanned each cycle, wakeups and latencies sit in a
//! `BinaryHeap`, and [`RefCore::step`] advances exactly one cycle per
//! call whether or not any stage has work. It is deliberately *not*
//! optimised — its value is that it is simple enough to audit, and that
//! the event engine must reproduce its [`SimStats`](crate::SimStats)
//! bit-for-bit (pinned by the differential proptests in
//! `crates/core/tests/props.rs` and the golden fixture in
//! `crates/sqip/tests/golden_designs.rs`).
//!
//! Select it with [`Engine::Reference`](crate::Engine); the `perf` bin
//! (`crates/bench`) reports the two engines' relative throughput.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};

use sqip_isa::{IsaError, Op, OpClass, TraceRecord, TraceSource};
use sqip_mem::{Hierarchy, MemImage};
use sqip_predictors::BranchPredictor;
use sqip_queues::{LoadQueue, StoreQueue, Window};
use sqip_types::{Addr, DataSize, Seq, Ssn};

use crate::config::{OrderingMode, SimConfig};
use crate::dyninst::{DynInst, InstState, Operand};
use crate::error::SimError;
use crate::oracle::OracleBuilder;
use crate::pipeline::window::{RecordWindow, SeqRing};
use crate::pipeline::{EvKind, StepOutcome, NOT_READY, WATCHDOG_CYCLES};
use crate::policy::{DesignCaps, LoadCommitInfo, OracleHint, PipelineView, PolicyHost, SqProbe};
use crate::shared::Analysis;
use crate::stats::SimStats;

pub(crate) struct RefCore<'t> {
    pub(crate) cfg: SimConfig,
    /// The pull-based record stream driving the run.
    source: Box<dyn TraceSource + 't>,
    /// Records between the commit point and the fetch frontier, with
    /// their oracle info (computed once at ingest).
    pub(crate) window: RecordWindow,
    /// The dependence analysis feeding `window`: an owned incremental
    /// oracle, or a shared sweep pass's feed.
    analysis: Analysis,
    /// Exact total record count: the source's up-front hint, or measured
    /// at exhaustion.
    total_records: Option<u64>,
    /// Whether the source has returned `None`.
    source_done: bool,
    /// A source failure, held until [`RefCore::step`] surfaces it.
    source_error: Option<IsaError>,

    pub(crate) cycle: u64,
    pub(crate) incarnation: u64,
    pub(crate) last_commit_cycle: u64,

    // ---- front end ----
    pub(crate) fetch_idx: usize,
    pub(crate) fetch_stall_until: u64,
    /// Mispredicted branch whose resolution fetch is waiting for.
    pub(crate) pending_redirect: Option<Seq>,
    /// Fetched instructions awaiting rename: (seq, rename-eligible cycle,
    /// fetch-time path history snapshot).
    pub(crate) front_q: std::collections::VecDeque<(Seq, u64, u64)>,
    /// Branch-outcome path history at fetch (for path-qualified FSP).
    pub(crate) path_history: u64,

    // ---- rename ----
    pub(crate) ssn_ren: Ssn,
    pub(crate) rename_map: [Option<Seq>; sqip_isa::NUM_REGS],
    pub(crate) committed_regs: [u64; sqip_isa::NUM_REGS],
    /// Waiting for the ROB to drain before wrapping the SSN space.
    pub(crate) draining_for_wrap: bool,

    // ---- backend ----
    pub(crate) rob: Window<Seq>,
    pub(crate) insts: HashMap<u64, DynInst>,
    pub(crate) iq_count: usize,
    pub(crate) ready_q: BTreeSet<u64>,
    pub(crate) events: BinaryHeap<Reverse<(u64, EvKind, u64, u64)>>,
    /// Producer seq -> consumers waiting for its wakeup broadcast.
    pub(crate) wake_on_value: HashMap<u64, Vec<u64>>,
    /// Store SSN -> loads waiting for it to execute (forwarding dependence).
    /// Drained speculatively when the store issues (StoreWake).
    pub(crate) wake_on_store_exec: HashMap<u64, Vec<u64>>,
    /// Store SSN -> loads that already replayed once chasing this store;
    /// drained only when the store actually executes (no more speculative
    /// wakes, breaking replay cascades).
    pub(crate) wake_on_store_exec_strict: HashMap<u64, Vec<u64>>,
    /// Store SSN -> loads waiting for it to commit (delay / partial hit).
    pub(crate) wake_on_store_commit: BTreeMap<u64, Vec<u64>>,

    // ---- dense per-seq value state (survives commit; slots reset as
    // their sequence numbers re-enter rename) ----
    pub(crate) vals: SeqRing,

    // ---- memory system ----
    pub(crate) sq: StoreQueue,
    pub(crate) lq: LoadQueue,
    pub(crate) hierarchy: Hierarchy,
    pub(crate) commit_mem: MemImage,
    pub(crate) ssn_cmt: Ssn,

    // ---- design policy + design-independent branch prediction ----
    /// The store-queue design under test: predictor state + decisions at
    /// the five pipeline touch-points (statically dispatched for builtin
    /// designs).
    pub(crate) policy: PolicyHost,
    /// The policy's capabilities, cached at construction for hot paths.
    pub(crate) caps: DesignCaps,
    pub(crate) bp: BranchPredictor,

    pub(crate) stats: SimStats,
}

impl<'t> RefCore<'t> {
    pub(crate) fn new_unchecked(cfg: SimConfig, source: impl TraceSource + 't) -> RefCore<'t> {
        RefCore::with_analysis(cfg, source, Analysis::Own(OracleBuilder::new()))
    }

    pub(crate) fn with_analysis(
        cfg: SimConfig,
        source: impl TraceSource + 't,
        analysis: Analysis,
    ) -> RefCore<'t> {
        let policy = PolicyHost::instantiate(&cfg);
        let caps = policy.caps();
        RefCore {
            total_records: source.len_hint(),
            source: Box::new(source),
            window: RecordWindow::new(cfg.rob_size, cfg.fetch_width),
            analysis,
            source_done: false,
            source_error: None,
            cycle: 0,
            incarnation: 0,
            last_commit_cycle: 0,
            fetch_idx: 0,
            fetch_stall_until: 0,
            pending_redirect: None,
            front_q: std::collections::VecDeque::new(),
            path_history: 0,
            ssn_ren: Ssn::NONE,
            rename_map: [None; sqip_isa::NUM_REGS],
            committed_regs: [0; sqip_isa::NUM_REGS],
            draining_for_wrap: false,
            rob: Window::new(cfg.rob_size),
            insts: HashMap::new(),
            iq_count: 0,
            ready_q: BTreeSet::new(),
            events: BinaryHeap::new(),
            wake_on_value: HashMap::new(),
            wake_on_store_exec: HashMap::new(),
            wake_on_store_exec_strict: HashMap::new(),
            wake_on_store_commit: BTreeMap::new(),
            vals: SeqRing::new(cfg.rob_size, cfg.fetch_width),
            sq: StoreQueue::new(cfg.sq_size),
            lq: LoadQueue::new(cfg.lq_size),
            hierarchy: Hierarchy::new(cfg.hierarchy),
            commit_mem: MemImage::new(),
            ssn_cmt: Ssn::NONE,
            bp: BranchPredictor::new(cfg.branch),
            policy,
            caps,
            stats: SimStats::default(),
            cfg,
        }
    }

    /// Whether the whole record stream has committed. Until the source is
    /// exhausted (or declared an exact length up front) the total is
    /// unknown and this is `false`.
    #[must_use]
    pub(crate) fn total_records(&self) -> Option<u64> {
        self.total_records
    }

    pub(crate) fn is_done(&self) -> bool {
        self.total_records
            .is_some_and(|total| self.stats.committed >= total)
    }

    /// Records currently buffered between the commit point and the fetch
    /// frontier. Bounded by the machine's window (ROB + fetch-ahead), not
    /// by the input length — the memory-boundedness guarantee of the
    /// streaming input API, pinned by a regression test.
    #[must_use]
    pub(crate) fn buffered_records(&self) -> usize {
        self.window.len()
    }

    /// The current cycle number.
    #[must_use]
    pub(crate) fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The statistics accumulated so far. [`RefCore::step`] folds the
    /// cycle count and cache counters in after every cycle, so the view
    /// is consistent mid-run.
    #[must_use]
    pub(crate) fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The committed architectural value of register `r` (used by
    /// cross-design equivalence tests: every sound policy must retire the
    /// same architectural state).
    #[must_use]
    pub(crate) fn committed_reg(&self, r: sqip_isa::Reg) -> u64 {
        self.committed_regs[r.index()]
    }

    /// Reads the committed memory image — the architectural memory state
    /// built by retired stores.
    #[must_use]
    pub(crate) fn committed_mem(&self, addr: Addr, size: DataSize) -> u64 {
        self.commit_mem.read(addr, size)
    }

    /// Folds the hierarchy counters and cycle count into `stats` so the
    /// snapshot is consistent at any point of the run. Idempotent.
    pub(crate) fn sync_stats(&mut self) {
        self.stats.cycles = self.cycle;
        self.stats.l1 = self.hierarchy.l1_stats();
        self.stats.l2 = self.hierarchy.l2_stats();
        self.stats.tlb = self.hierarchy.tlb_stats();
    }

    /// Simulates one cycle.
    ///
    /// Returns [`StepOutcome::Done`] once the whole trace has committed
    /// (further calls are no-ops that keep returning `Done`).
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if no instruction has committed for an
    /// implausibly long time — a simulator bug, not a program property —
    /// and [`SimError::TraceSource`] if the trace source fails mid-stream
    /// (I/O error, corrupt trace file, interpreter fault).
    pub(crate) fn step(&mut self) -> Result<StepOutcome, SimError> {
        if self.is_done() {
            self.sync_stats();
            return Ok(StepOutcome::Done);
        }
        self.cycle += 1;
        self.commit_stage();
        self.process_events();
        self.issue_stage();
        self.rename_stage();
        self.fetch_stage();
        self.sync_stats();
        if let Some(source) = &self.source_error {
            return Err(SimError::TraceSource {
                pulled: self.window.end(),
                detail: source.to_string(),
            });
        }
        if self.is_done() {
            return Ok(StepOutcome::Done);
        }
        if self.cycle - self.last_commit_cycle >= WATCHDOG_CYCLES {
            return Err(self.deadlock_error());
        }
        Ok(StepOutcome::Running)
    }

    fn deadlock_error(&self) -> SimError {
        let head = self.rob.front().map(|&s| {
            let i = &self.insts[&s.0];
            format!(
                "head {} op={} state={:?} gates={} fwd={} dly={} wait_exec={:?} prev={} ssn_cmt={}",
                s.0,
                self.rec(s).op,
                i.state,
                i.gates,
                i.ssn_fwd,
                i.ssn_dly,
                i.wait_exec_ssn,
                i.prev_store_ssn,
                self.ssn_cmt
            )
        });
        SimError::Deadlock {
            cycle: self.cycle,
            committed: self.stats.committed,
            detail: format!(
                "fetch_idx {}, rob {}, iq {}, head {:?}",
                self.fetch_idx,
                self.rob.len(),
                self.iq_count,
                head
            ),
        }
    }

    pub(crate) fn rec(&self, seq: Seq) -> &TraceRecord {
        self.window.rec(seq)
    }

    /// The record at `fetch_idx`, pulling from the source as needed.
    /// Returns `None` when the stream is exhausted (or has failed — the
    /// error surfaces from [`RefCore::step`]).
    pub(crate) fn fetch_record(&mut self) -> Option<TraceRecord> {
        let seq = self.fetch_idx as u64;
        while seq >= self.window.end() {
            if self.source_done || self.source_error.is_some() {
                return None;
            }
            match self.source.next_record() {
                Ok(Some(mut rec)) => {
                    // Consumers own the numbering: records are sequential
                    // in pull order whatever the source put in `seq`.
                    rec.seq = Seq(self.window.end());
                    let fwd = self.analysis.fwd_for(&rec);
                    self.window.push(rec, fwd);
                }
                Ok(None) => {
                    self.source_done = true;
                    self.total_records = Some(self.window.end());
                    return None;
                }
                Err(e) => {
                    self.source_error = Some(e);
                    return None;
                }
            }
        }
        Some(*self.window.rec(Seq(seq)))
    }
}

impl RefCore<'_> {
    // ================================================================
    // Fetch
    // ================================================================

    pub(crate) fn fetch_stage(&mut self) {
        if self.cycle < self.fetch_stall_until || self.pending_redirect.is_some() {
            return;
        }
        let mut budget = self.cfg.fetch_width;
        let mut taken_seen = false;
        let front_cap = self.cfg.fetch_width * 4;
        while budget > 0 && self.front_q.len() < front_cap {
            // Pulls from the trace source on first fetch; squash re-fetches
            // replay out of the in-flight record window.
            let Some(rec) = self.fetch_record() else {
                break; // stream exhausted (or failed; step() surfaces it)
            };
            let seq = Seq(self.fetch_idx as u64);
            let mispredicted = self.predict_branch(&rec);
            self.front_q
                .push_back((seq, self.cycle + self.cfg.front_latency, self.path_history));
            if rec.op.is_conditional() {
                self.path_history = (self.path_history << 1) | u64::from(rec.taken);
            }
            self.fetch_idx += 1;
            budget -= 1;
            if mispredicted {
                self.pending_redirect = Some(seq);
                break;
            }
            if rec.taken {
                if taken_seen {
                    break; // at most one taken branch per fetch cycle
                }
                taken_seen = true;
            }
        }
    }

    /// Consults the branch predictor for a fetched record; returns whether
    /// fetch must stall for resolution (misprediction).
    ///
    /// Tables and history are trained here, at fetch, rather than at
    /// execute: with oracle-path fetch the outcome is already known, and
    /// fetch-time training makes predictor accuracy a pure function of the
    /// fetch sequence instead of execution timing, so store-queue designs
    /// are compared under identical front-end behaviour.
    fn predict_branch(&mut self, rec: &TraceRecord) -> bool {
        match rec.op {
            Op::BranchZ | Op::BranchNZ => {
                let pred = self.bp.predict_conditional(rec.pc);
                let mis = pred.taken != rec.taken; // direct targets resolve at decode
                self.stats.branch_mispredicts += u64::from(mis);
                self.bp.update(rec.pc, true, rec.taken, rec.next_pc);
                mis
            }
            Op::Call => {
                let _ = self.bp.predict_unconditional(rec.pc, true);
                false
            }
            Op::Jump => false,
            Op::Ret => {
                let pred = self.bp.predict_return(rec.pc);
                let mis = pred.target != Some(rec.next_pc);
                self.stats.return_mispredicts += u64::from(mis);
                mis
            }
            _ => false,
        }
    }

    // ================================================================
    // Rename
    // ================================================================

    pub(crate) fn rename_stage(&mut self) {
        for _ in 0..self.cfg.rename_width {
            let Some(&(seq, ready_at, path)) = self.front_q.front() else {
                break;
            };
            if ready_at > self.cycle || self.rob.is_full() || self.iq_count >= self.cfg.iq_size {
                break;
            }
            let rec = *self.rec(seq);
            if rec.is_load() && self.lq.is_full() {
                break;
            }
            if rec.is_store() {
                if self.sq.is_full() {
                    break;
                }
                // SSN wrap-around: drain the pipeline, then clear every
                // SSN-holding structure (§3.1).
                if self.ssn_ren.next().low_bits(self.cfg.ssn_bits) == 0 || self.draining_for_wrap {
                    if !self.rob.is_empty() {
                        self.draining_for_wrap = true;
                        break;
                    }
                    self.draining_for_wrap = false;
                    self.policy.on_ssn_wrap();
                    self.stats.ssn_wraps += 1;
                }
            }
            self.front_q.pop_front();
            self.rename_one(seq, &rec, path);
        }
    }

    fn rename_one(&mut self, seq: Seq, rec: &TraceRecord, path: u64) {
        // Claim the sequence number's value-ring slot: clears leftovers
        // both from a squashed incarnation of this seq and from the slot's
        // previous (long-retired) tenant.
        self.vals.reset(seq.0);
        let mut inst = DynInst::new(seq, self.incarnation, self.ssn_ren);
        inst.nondelay_ready = self.cycle;
        inst.path = path;

        // Resolve source operands against the rename map.
        let mut gates = 0u32;
        for (i, src) in rec.srcs.iter().enumerate() {
            inst.srcs[i] = match src {
                None => Operand::None,
                Some(r) => match self.rename_map[r.index()] {
                    Some(p) => {
                        if self.vals.wake_time(p.0) > self.cycle {
                            gates += 1;
                            self.wake_on_value.entry(p.0).or_default().push(seq.0);
                        }
                        Operand::InFlight(p)
                    }
                    None => Operand::Value(self.committed_regs[r.index()]),
                },
            };
        }

        if rec.is_store() {
            self.ssn_ren = self.ssn_ren.next();
            inst.my_ssn = self.ssn_ren;
            self.sq
                .allocate(inst.my_ssn, rec.pc)
                .expect("SQ fullness checked before rename");
            // Policy touch-point: store rename (SAT update, in-set
            // serialisation under original Store Sets).
            let view = PipelineView {
                ssn_ren: self.ssn_ren,
                ssn_cmt: self.ssn_cmt,
                sq: &self.sq,
            };
            if let Some(pred) = self.policy.rename_store(rec.pc, inst.my_ssn, seq, &view) {
                if pred.is_in_flight(self.ssn_cmt) && !self.sq.is_executed(pred) {
                    gates += 1;
                    self.wake_on_store_exec
                        .entry(pred.0)
                        .or_default()
                        .push(seq.0);
                }
            }
        }

        if rec.is_load() {
            self.lq
                .allocate(seq, rec.pc)
                .expect("LQ fullness checked before rename");
            gates += self.attach_load_predictions(&mut inst, rec);
        }

        if let Some(d) = rec.dst {
            self.rename_map[d.index()] = Some(seq);
        }

        inst.gates = gates;
        inst.state = if gates == 0 {
            InstState::Ready
        } else {
            InstState::Waiting
        };
        if gates == 0 {
            self.ready_q.insert(seq.0);
        }
        self.iq_count += 1;
        self.rob
            .push_back(seq)
            .expect("ROB fullness checked before rename");
        self.insts.insert(seq.0, inst);
    }

    /// Policy touch-point: load rename. Feeds the policy (plus golden
    /// forwarding information for oracle designs), copies its decisions
    /// into the in-flight state and arms the scheduling gates it asked
    /// for. Returns the number of gates added.
    fn attach_load_predictions(&mut self, inst: &mut DynInst, rec: &TraceRecord) -> u32 {
        let hint = if self.caps.oracle {
            self.window.fwd(inst.seq).map(|f| OracleHint {
                store_ssn: self.insts.get(&f.store_seq.0).map(|s| s.my_ssn),
                covers: f.covers,
            })
        } else {
            None
        };
        let view = PipelineView {
            ssn_ren: self.ssn_ren,
            ssn_cmt: self.ssn_cmt,
            sq: &self.sq,
        };
        let decision = self.policy.rename_load(rec.pc, inst.path, hint, &view);

        inst.pred_store_pc = decision.pred_store_pc;
        inst.ssn_fwd = decision.ssn_fwd;
        inst.ssn_dly = decision.ssn_dly;
        inst.wait_exec_ssn = decision.wait_exec_ssn;
        inst.delay_gated = decision.delay_gated;

        // Arm the gates, dropping any that could never release (already
        // executed / already committed) so no policy can deadlock a load.
        let mut gates = 0;
        if let Some(ssn) = decision.exec_gate {
            if ssn.is_in_flight(self.ssn_cmt) && !self.sq.is_executed(ssn) {
                gates += 1;
                self.wake_on_store_exec
                    .entry(ssn.0)
                    .or_default()
                    .push(inst.seq.0);
            }
        }
        if let Some(ssn) = decision.commit_gate {
            if ssn > self.ssn_cmt {
                gates += 1;
                self.wake_on_store_commit
                    .entry(ssn.0)
                    .or_default()
                    .push(inst.seq.0);
            }
        }
        gates
    }
}

impl RefCore<'_> {
    pub(crate) fn issue_stage(&mut self) {
        let mix = self.cfg.issue;
        let (mut total, mut int, mut fp, mut br, mut ld, mut st) =
            (mix.total, mix.int, mix.fp, mix.branch, mix.load, mix.store);
        let mut issued = Vec::new();

        for &seq in &self.ready_q {
            if total == 0 {
                break;
            }
            let class = self.window.rec(Seq(seq)).op.class();
            let port = match class {
                OpClass::IntAlu | OpClass::IntMul | OpClass::None => &mut int,
                OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => &mut fp,
                OpClass::Branch => &mut br,
                OpClass::Load => &mut ld,
                OpClass::Store => &mut st,
            };
            if *port == 0 {
                continue; // port conflict: skip, stay ready
            }
            *port -= 1;
            total -= 1;
            issued.push(seq);
        }

        for seq in issued {
            self.ready_q.remove(&seq);
            self.iq_count -= 1;
            let (inc, my_ssn) = {
                let inst = self.insts.get_mut(&seq).expect("ready inst in flight");
                debug_assert_eq!(inst.state, InstState::Ready);
                inst.state = InstState::Issued;
                (inst.incarnation, inst.my_ssn)
            };
            let exec_at = self.cycle + self.cfg.issue_to_exec;
            self.events.push(Reverse((exec_at, EvKind::Exec, seq, inc)));
            if my_ssn.is_some() {
                // Speculatively wake forwarding-gated loads behind this
                // store so their SQ read chases its SQ write.
                self.events
                    .push(Reverse((self.cycle + 1, EvKind::StoreWake, my_ssn.0, inc)));
            }

            // Wakeup broadcast for register consumers, timed so a
            // back-to-back dependent executes exactly when the value is
            // predicted to be ready.
            let rec = *self.window.rec(Seq(seq));
            if rec.dst.is_some() {
                let pred_latency = self.predicted_latency(&rec, seq);
                let broadcast_at = (exec_at + pred_latency)
                    .saturating_sub(self.cfg.issue_to_exec)
                    .max(self.cycle + 1);
                self.vals.set_wake_time(seq, broadcast_at);
                self.events
                    .push(Reverse((broadcast_at, EvKind::Broadcast, seq, inc)));
            }
        }
    }

    /// The latency the scheduler assumes for this instruction's value —
    /// loads defer to the policy's latency-speculation touch-point.
    pub(crate) fn predicted_latency(&self, rec: &TraceRecord, seq: u64) -> u64 {
        let l = self.cfg.latencies;
        match rec.op.class() {
            OpClass::IntAlu | OpClass::None => l.int_alu,
            OpClass::IntMul => l.int_mul,
            OpClass::FpAdd => l.fp_add,
            OpClass::FpMul => l.fp_mul,
            OpClass::FpDiv => l.fp_div,
            OpClass::Branch => l.branch,
            OpClass::Store => 1,
            OpClass::Load => {
                let cache = self.cfg.hierarchy.l1.hit_latency;
                let predicts_forward = self.insts[&seq].ssn_fwd.is_some();
                self.policy.wakeup_latency(predicts_forward, cache)
            }
        }
    }

    // ================================================================
    // Events (execute, wakeup)
    // ================================================================

    pub(crate) fn process_events(&mut self) {
        while let Some(&Reverse((at, kind, seq, inc))) = self.events.peek() {
            if at > self.cycle {
                break;
            }
            self.events.pop();
            // Drop events addressed to squashed incarnations. Broadcasts
            // are exempt: a producer may legitimately commit before its
            // re-broadcast fires, and its registered consumers must still
            // wake (wake_one itself guards against squashed consumers).
            let alive = self.insts.get(&seq).is_some_and(|i| i.incarnation == inc);
            match kind {
                EvKind::Broadcast => self.do_broadcast(seq),
                EvKind::Wake => {
                    if alive {
                        self.wake_one(seq, false);
                    }
                }
                EvKind::StoreWake => {
                    // `seq` carries the store's SSN, not a sequence number.
                    if let Some(waiters) = self.wake_on_store_exec.remove(&seq) {
                        for w in waiters {
                            self.wake_one(w, false);
                        }
                    }
                }
                EvKind::Exec => {
                    if alive {
                        self.do_execute(Seq(seq));
                    }
                }
            }
        }
    }

    fn do_broadcast(&mut self, producer: u64) {
        let Some(consumers) = self.wake_on_value.remove(&producer) else {
            return;
        };
        for c in consumers {
            self.wake_one(c, false);
        }
    }

    pub(crate) fn wake_one(&mut self, seq: u64, is_delay_gate: bool) {
        let Some(inst) = self.insts.get_mut(&seq) else {
            return;
        };
        if inst.state != InstState::Waiting {
            return;
        }
        if inst.release_gate(self.cycle, is_delay_gate) {
            inst.state = InstState::Ready;
            self.ready_q.insert(seq);
        }
    }

    pub(crate) fn replay(&mut self, seq: Seq, unready: &[u64]) {
        self.stats.replays += 1;
        let now = self.cycle;
        let issue_to_exec = self.cfg.issue_to_exec;
        let mut wakes = Vec::new();
        {
            let inst = self
                .insts
                .get_mut(&seq.0)
                .expect("replaying inst in flight");
            inst.state = InstState::Waiting;
            inst.replays += 1;
            inst.gates = unready.len() as u32;
        }
        for &p in unready {
            let vr = self.vals.value_ready(p);
            if vr == NOT_READY {
                // Producer hasn't executed; it will re-broadcast.
                self.wake_on_value.entry(p).or_default().push(seq.0);
            } else {
                wakes.push(vr.saturating_sub(issue_to_exec).max(now + 1));
            }
        }
        self.iq_count += 1;
        let inc = self.insts[&seq.0].incarnation;
        for at in wakes {
            self.events.push(Reverse((at, EvKind::Wake, seq.0, inc)));
        }
    }
}

impl RefCore<'_> {
    pub(crate) fn do_execute(&mut self, seq: Seq) {
        let rec = *self.rec(seq);

        // Selective replay: operands whose producers are not actually ready
        // (scheduler latency mis-speculation) force a replay.
        let mut unready: Vec<u64> = Vec::new();
        {
            let inst = &self.insts[&seq.0];
            for src in inst.srcs {
                if let Operand::InFlight(p) = src {
                    if self.vals.value_ready(p.0) > self.cycle {
                        unready.push(p.0);
                    }
                }
            }
        }
        if !unready.is_empty() {
            self.replay(seq, &unready);
            return;
        }

        let (s1, s2) = self.operand_values(seq);
        match rec.op.class() {
            OpClass::Load => self.execute_load(seq, &rec),
            OpClass::Store => self.execute_store(seq, &rec, s2),
            OpClass::Branch => self.execute_branch(seq, &rec),
            _ => {
                let value = rec.op.eval(s1, s2, rec.imm);
                let latency = self.predicted_latency(&rec, seq.0);
                self.complete(seq, value, latency);
            }
        }
    }

    fn operand_values(&self, seq: Seq) -> (u64, u64) {
        let inst = &self.insts[&seq.0];
        let get = |o: Operand| match o {
            Operand::None => 0,
            Operand::Value(v) => v,
            Operand::InFlight(p) => self.vals.spec_value(p.0),
        };
        (get(inst.srcs[0]), get(inst.srcs[1]))
    }

    /// Finishes execution: value known, completion scheduled.
    pub(crate) fn complete(&mut self, seq: Seq, value: u64, latency: u64) {
        let ready_at = self.cycle + latency;
        self.vals.set_spec_value(seq.0, value);
        self.vals.set_value_ready(seq.0, ready_at);
        let post = self.cfg.post_exec_depth;
        {
            let inst = self
                .insts
                .get_mut(&seq.0)
                .expect("completing inst in flight");
            inst.state = InstState::Done;
            inst.value = value;
            inst.complete_cycle = ready_at;
            inst.commit_eligible = ready_at + post;
        }
        // Consumers that replayed while this instruction was mid-flight
        // (its issue-time broadcast already fired) re-registered on the
        // wait list; a successful execution is the last broadcast they can
        // get. Time it so their execute lines up with value readiness.
        if self.wake_on_value.contains_key(&seq.0) {
            let inc = self.insts[&seq.0].incarnation;
            let at = ready_at
                .saturating_sub(self.cfg.issue_to_exec)
                .max(self.cycle + 1);
            self.events
                .push(Reverse((at, EvKind::Broadcast, seq.0, inc)));
        }
    }

    fn execute_store(&mut self, seq: Seq, rec: &TraceRecord, data_operand: u64) {
        let span = rec.mem_addr().span(rec.size);
        let data = rec.size.truncate(data_operand);
        let ssn = self.insts[&seq.0].my_ssn;
        self.sq.write(ssn, span, data);
        // Policy touch-point: store execution (LFST update under original
        // Store Sets).
        self.policy.store_executed(rec.pc, ssn);
        if self.cfg.ordering == OrderingMode::LqCam {
            // Conventional LQ search: any younger, already-executed load
            // overlapping this store's span read a stale value. Flush from
            // the oldest such load and train the schedulers.
            let victim = self
                .lq
                .iter()
                .find(|l| l.seq > seq && l.span.is_some_and(|ls| ls.overlaps(span)) && l.svw < ssn)
                .map(|l| (l.seq, l.pc));
            if let Some((lseq, lpc)) = victim {
                self.stats.mis_forwards += 1;
                self.policy.cam_violation(lpc, rec.pc);
                self.complete(seq, data, 1);
                self.squash_from(lseq);
                return;
            }
        }
        self.complete(seq, data, 1);
        // Wake loads waiting on this store's execution (forwarding gate).
        if let Some(waiters) = self.wake_on_store_exec.remove(&ssn.0) {
            for w in waiters {
                self.wake_one(w, false);
            }
        }
        if let Some(waiters) = self.wake_on_store_exec_strict.remove(&ssn.0) {
            for w in waiters {
                self.wake_one(w, false);
            }
        }
    }

    fn execute_branch(&mut self, seq: Seq, rec: &TraceRecord) {
        // (The predictor was trained at fetch; execution only resolves the
        // pending redirect.)
        // Link value for calls; 0 for other transfers.
        let value = if rec.op == Op::Call {
            rec.pc.next().0
        } else {
            0
        };
        self.complete(seq, value, self.cfg.latencies.branch);
        if self.pending_redirect == Some(seq) {
            self.pending_redirect = None;
            self.fetch_stall_until = self.cycle + 1;
        }
    }

    fn execute_load(&mut self, seq: Seq, rec: &TraceRecord) {
        let span = rec.mem_addr().span(rec.size);
        let (prev_store_ssn, ssn_fwd, wait_exec) = {
            let inst = &self.insts[&seq.0];
            (inst.prev_store_ssn, inst.ssn_fwd, inst.wait_exec_ssn)
        };

        // The load was scheduled chasing a store's execution; if that store
        // replayed, the load replays too (forwarding mis-schedule).
        if let Some(gate) = wait_exec {
            if gate.is_in_flight(self.ssn_cmt) && !self.sq.is_executed(gate) {
                self.stats.replays += 1;
                let inst = self.insts.get_mut(&seq.0).expect("load in flight");
                inst.state = InstState::Waiting;
                inst.gates = 1;
                inst.replays += 1;
                self.iq_count += 1;
                self.wake_on_store_exec_strict
                    .entry(gate.0)
                    .or_default()
                    .push(seq.0);
                return;
            }
        }

        // The data cache is accessed in parallel with the SQ in all designs.
        let cache_outcome = self.hierarchy.access(rec.mem_addr());
        let cache_value = self.commit_mem.read(rec.mem_addr(), rec.size);
        let older_unknown = self.sq.has_unexecuted_older(prev_store_ssn);

        // Policy touch-point: the SQ probe (associative search, indexed
        // read, or whatever the design does).
        let probe = self.policy.probe_sq(
            &self.sq,
            prev_store_ssn,
            ssn_fwd,
            self.ssn_cmt,
            span,
            rec.size,
        );
        let (value, latency, forwarded, svw) = match probe {
            SqProbe::Forward {
                ssn,
                value,
                latency,
            } => (value, latency, Some(ssn), ssn),
            SqProbe::Partial { ssn } => {
                // No single entry can supply the value: stall until the
                // store commits, then retry (reads the cache).
                self.stats.partial_stalls += 1;
                let inst = self.insts.get_mut(&seq.0).expect("load in flight");
                inst.state = InstState::Waiting;
                inst.gates = 1;
                inst.partial_stalled = true;
                self.iq_count += 1;
                if ssn > self.ssn_cmt {
                    self.wake_on_store_commit
                        .entry(ssn.0)
                        .or_default()
                        .push(seq.0);
                } else {
                    // Committed in the meantime: retry immediately.
                    let inc = self.insts[&seq.0].incarnation;
                    self.events
                        .push(Reverse((self.cycle + 1, EvKind::Wake, seq.0, inc)));
                }
                return;
            }
            SqProbe::Miss => (
                cache_value,
                cache_outcome.total_latency(),
                None,
                self.ssn_cmt,
            ),
        };

        self.lq
            .record_execution(seq, span, value, svw, older_unknown);
        {
            let inst = self.insts.get_mut(&seq.0).expect("load in flight");
            inst.forwarded_from = forwarded;
            inst.svw = svw;
            inst.older_unknown = older_unknown;
        }
        self.complete(seq, value, latency);
    }
}

impl RefCore<'_> {
    pub(crate) fn commit_stage(&mut self) {
        let mut reexec_budget = self.cfg.reexec_ports;
        for _ in 0..self.cfg.commit_width {
            let Some(&seq) = self.rob.front() else { break };
            let eligible = {
                let inst = &self.insts[&seq.0];
                inst.state == InstState::Done && inst.commit_eligible <= self.cycle
            };
            if !eligible {
                break;
            }
            let rec = *self.rec(seq);
            if rec.is_load() && !self.commit_load(seq, &rec, &mut reexec_budget) {
                break; // re-exec port stall or flush: stop committing
            }
            if rec.is_store() {
                self.commit_store(seq, &rec);
            }
            if rec.op.is_conditional() {
                self.stats.branches += 1;
            }
            self.retire(seq, &rec);
        }
    }

    /// Returns `false` if commit must stop (port stall — load stays; or a
    /// flush was triggered — load already retired inside).
    fn commit_load(&mut self, seq: Seq, rec: &TraceRecord, reexec_budget: &mut usize) -> bool {
        let span = rec.mem_addr().span(rec.size);
        let (svw, older_unknown, value, fwd) = {
            let inst = &self.insts[&seq.0];
            (
                inst.svw,
                inst.older_unknown,
                inst.value,
                inst.forwarded_from,
            )
        };
        self.stats.naive_reexec_candidates += u64::from(older_unknown);

        // SVW filter (policy touch-point): re-execute only if a store the
        // load is vulnerable to wrote its address. Under the conventional
        // LQ CAM, ordering was verified at store execution and no
        // re-execution happens at all.
        let needs_reexec =
            self.cfg.ordering == OrderingMode::SvwReexecution && self.policy.svw_newest(span) > svw;
        let mut flush = false;
        if needs_reexec {
            if *reexec_budget == 0 {
                self.stats.reexec_port_stalls += 1;
                return false;
            }
            *reexec_budget -= 1;
            self.stats.re_executions += 1;
            self.hierarchy.touch(rec.mem_addr());
            let correct = self.commit_mem.read(rec.mem_addr(), rec.size);
            debug_assert_eq!(
                correct, rec.result,
                "commit-time memory must match the golden trace"
            );
            if value != correct {
                // Mis-forwarding (or ordering violation): fix the load's
                // value from re-execution and flush everything younger.
                self.stats.mis_forwards += 1;
                let inst = self.insts.get_mut(&seq.0).expect("load in flight");
                inst.value = correct;
                self.vals.set_spec_value(seq.0, correct);
                flush = true;
            }
        }

        // Policy touch-point: commit-time training (FSP/DDP per Table 1
        // and §3.2–3.3, or original-Store-Sets violation merging).
        let info = {
            let inst = &self.insts[&seq.0];
            LoadCommitInfo {
                pc: rec.pc,
                span,
                flushed: flush,
                pred_store_pc: inst.pred_store_pc,
                ssn_fwd: inst.ssn_fwd,
                prev_store_ssn: inst.prev_store_ssn,
                was_delayed: inst.delay_gated,
                path: inst.path,
            }
        };
        self.policy.train_load_commit(&info);

        // Per-load statistics.
        self.stats.loads += 1;
        self.stats.loads_forwarded += u64::from(fwd.is_some());
        if let Some(f) = self.window.fwd(seq) {
            if f.store_dist < self.cfg.sq_size as u64 {
                self.stats.forwarding_relevant_loads += 1;
            }
        }
        let inst = &self.insts[&seq.0];
        let delay = inst.ddp_delay();
        if inst.delay_gated && delay > 0 {
            self.stats.loads_delayed += 1;
            self.stats.delay_cycles += delay;
        }

        let _ = self.lq.commit_head();
        if flush {
            self.retire(seq, rec);
            self.flush_younger(seq);
            return false;
        }
        true
    }

    fn commit_store(&mut self, seq: Seq, rec: &TraceRecord) {
        let entry = self.sq.commit_head();
        debug_assert_eq!(entry.ssn, self.insts[&seq.0].my_ssn);
        let span = rec.mem_addr().span(rec.size);
        debug_assert_eq!(
            entry.data, rec.result,
            "store data must be architecturally correct by commit"
        );
        self.commit_mem.write(rec.mem_addr(), rec.size, entry.data);
        self.hierarchy.touch(rec.mem_addr());
        // Policy touch-point: verification-structure update (SSBF/SPCT).
        self.policy.store_committed(rec.pc, span, entry.ssn);
        self.ssn_cmt = entry.ssn;
        self.stats.stores += 1;

        // Release delay-gated and partial-stalled loads waiting on stores
        // up to this SSN.
        let mut released = self.wake_on_store_commit.split_off(&(entry.ssn.0 + 1));
        std::mem::swap(&mut released, &mut self.wake_on_store_commit);
        for (_, waiters) in released {
            for w in waiters {
                self.wake_one(w, true);
            }
        }
    }

    fn retire(&mut self, seq: Seq, rec: &TraceRecord) {
        if let Some(d) = rec.dst {
            self.committed_regs[d.index()] = self.insts[&seq.0].value;
            if self.rename_map[d.index()] == Some(seq) {
                self.rename_map[d.index()] = None;
            }
        }
        let _ = self.rob.pop_front();
        self.insts.remove(&seq.0);
        self.policy.on_retire(seq);
        self.stats.committed += 1;
        self.last_commit_cycle = self.cycle;
        // Commit is in-order, so the retiring instruction is always the
        // record window's front: its record can never be re-fetched.
        self.window.pop_front();
    }

    /// Mid-window squash (LQ CAM violation): everything at or younger than
    /// `from` is squashed and refetched; older instructions stay in flight.
    pub(crate) fn squash_from(&mut self, from: Seq) {
        self.stats.flushes += 1;
        self.incarnation += 1;

        // (Value-ring slots of squashed instructions are not cleared here:
        // nothing reads a squashed slot before its re-rename resets it.)
        let squashed: Vec<u64> = self
            .insts
            .keys()
            .copied()
            .filter(|&s| s >= from.0)
            .collect();
        self.stats.squashed += squashed.len() as u64;
        for &s in &squashed {
            self.insts.remove(&s);
        }
        let keep = self.rob.iter().take_while(|&&s| s < from).count();
        self.rob.truncate(keep);
        self.ready_q.retain(|&s| s < from.0);
        self.iq_count = self
            .insts
            .values()
            .filter(|i| matches!(i.state, InstState::Waiting | InstState::Ready))
            .count();
        self.lq.squash_from(from);

        // SSNs roll back to the youngest surviving store.
        let keep_ssn = self
            .insts
            .values()
            .map(|i| i.my_ssn)
            .max()
            .unwrap_or(Ssn::NONE)
            .max(self.ssn_cmt);
        self.sq.squash_from(keep_ssn.next());
        self.ssn_ren = keep_ssn;
        // Policy touch-point: flush repair (SAT rollback, LFST clear).
        self.policy.on_flush(from);

        // Rebuild the rename map from the surviving window, oldest first.
        self.rename_map = [None; sqip_isa::NUM_REGS];
        let survivors: Vec<Seq> = self.rob.iter().copied().collect();
        for s in survivors {
            if let Some(d) = self.rec(s).dst {
                self.rename_map[d.index()] = Some(s);
            }
        }

        self.front_q.clear();
        if self.pending_redirect.is_some_and(|s| s >= from) {
            self.pending_redirect = None;
        }
        self.fetch_idx = from.0 as usize;
        self.fetch_stall_until = self.cycle + 1;
        self.draining_for_wrap = false;
    }

    /// Full pipeline flush: squash everything younger than the committing
    /// load and refetch from the next instruction.
    fn flush_younger(&mut self, from: Seq) {
        self.stats.flushes += 1;
        self.incarnation += 1;

        self.stats.squashed += self.insts.len() as u64;
        self.insts.clear();
        self.rob.clear();
        self.ready_q.clear();
        self.iq_count = 0;
        self.lq.clear();
        self.sq.clear();
        self.wake_on_value.clear();
        self.wake_on_store_exec.clear();
        self.wake_on_store_exec_strict.clear();
        self.wake_on_store_commit.clear();
        self.front_q.clear();
        self.rename_map = [None; sqip_isa::NUM_REGS];

        // All in-flight stores were squashed; the rename-time SSN counter
        // rolls back to the committed high-water mark, and the policy
        // undoes the squashed stores' speculative predictor writes.
        self.ssn_ren = self.ssn_cmt;
        self.policy.on_flush(from.next());
        self.draining_for_wrap = false;

        self.pending_redirect = None;
        self.fetch_idx = from.0 as usize + 1;
        self.fetch_stall_until = self.cycle + 1;
    }
}

impl RefCore<'_> {
    /// Records ever pulled from the trace source (the resume position).
    pub(crate) fn records_pulled(&self) -> u64 {
        self.window.end()
    }

    /// Serialises the engine state (everything except `cfg` and the
    /// source, which the checkpoint container carries separately).
    ///
    /// The unordered collections are serialised in sorted-key order so
    /// equal states snapshot to equal bytes.
    pub(crate) fn save_state(
        &self,
        w: &mut sqip_snapshot::SnapWriter,
    ) -> Result<(), sqip_snapshot::SnapError> {
        use sqip_snapshot::Snapshot as _;
        if let Some(e) = &self.source_error {
            return Err(sqip_snapshot::SnapError::Unsupported(format!(
                "cannot checkpoint with a pending trace-source error: {e}"
            )));
        }
        let Analysis::Own(oracle) = &self.analysis else {
            return Err(sqip_snapshot::SnapError::Unsupported(
                "shared-analysis processors cannot be checkpointed (the \
                 oracle feed belongs to the sweep pass)"
                    .into(),
            ));
        };
        self.window.save(w)?;
        oracle.save(w)?;
        self.total_records.save(w)?;
        self.source_done.save(w)?;
        self.cycle.save(w)?;
        self.incarnation.save(w)?;
        self.last_commit_cycle.save(w)?;
        self.fetch_idx.save(w)?;
        self.fetch_stall_until.save(w)?;
        self.pending_redirect.save(w)?;
        self.front_q.save(w)?;
        self.path_history.save(w)?;
        self.ssn_ren.save(w)?;
        self.rename_map.save(w)?;
        self.committed_regs.save(w)?;
        self.draining_for_wrap.save(w)?;
        self.rob.save(w)?;
        sorted_pairs(&self.insts).save(w)?;
        self.iq_count.save(w)?;
        self.ready_q.iter().copied().collect::<Vec<u64>>().save(w)?;
        let mut events: Vec<(u64, EvKind, u64, u64)> =
            self.events.iter().map(|Reverse(e)| *e).collect();
        events.sort_unstable();
        events.save(w)?;
        sorted_pairs(&self.wake_on_value).save(w)?;
        sorted_pairs(&self.wake_on_store_exec).save(w)?;
        sorted_pairs(&self.wake_on_store_exec_strict).save(w)?;
        self.wake_on_store_commit
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect::<Vec<(u64, Vec<u64>)>>()
            .save(w)?;
        self.vals.save(w)?;
        self.sq.save(w)?;
        self.lq.save(w)?;
        self.hierarchy.save(w)?;
        self.commit_mem.save(w)?;
        self.ssn_cmt.save(w)?;
        self.policy.save_snapshot(w)?;
        self.bp.save(w)?;
        self.stats.save(w)
    }

    /// Overwrites a freshly constructed engine with checkpointed state
    /// (the mirror of [`RefCore::save_state`]).
    pub(crate) fn load_state(
        &mut self,
        r: &mut sqip_snapshot::SnapReader,
    ) -> Result<(), sqip_snapshot::SnapError> {
        use sqip_snapshot::Snapshot as _;
        self.window = RecordWindow::load(r)?;
        self.analysis = Analysis::Own(OracleBuilder::load(r)?);
        self.total_records = Option::<u64>::load(r)?;
        self.source_done = bool::load(r)?;
        self.cycle = u64::load(r)?;
        self.incarnation = u64::load(r)?;
        self.last_commit_cycle = u64::load(r)?;
        self.fetch_idx = usize::load(r)?;
        self.fetch_stall_until = u64::load(r)?;
        self.pending_redirect = Option::<Seq>::load(r)?;
        self.front_q = std::collections::VecDeque::<(Seq, u64, u64)>::load(r)?;
        self.path_history = u64::load(r)?;
        self.ssn_ren = Ssn::load(r)?;
        self.rename_map = <[Option<Seq>; sqip_isa::NUM_REGS]>::load(r)?;
        self.committed_regs = <[u64; sqip_isa::NUM_REGS]>::load(r)?;
        self.draining_for_wrap = bool::load(r)?;
        self.rob = Window::<Seq>::load(r)?;
        self.insts = Vec::<(u64, DynInst)>::load(r)?.into_iter().collect();
        self.iq_count = usize::load(r)?;
        self.ready_q = Vec::<u64>::load(r)?.into_iter().collect();
        self.events = Vec::<(u64, EvKind, u64, u64)>::load(r)?
            .into_iter()
            .map(Reverse)
            .collect();
        self.wake_on_value = Vec::<(u64, Vec<u64>)>::load(r)?.into_iter().collect();
        self.wake_on_store_exec = Vec::<(u64, Vec<u64>)>::load(r)?.into_iter().collect();
        self.wake_on_store_exec_strict = Vec::<(u64, Vec<u64>)>::load(r)?.into_iter().collect();
        self.wake_on_store_commit = Vec::<(u64, Vec<u64>)>::load(r)?.into_iter().collect();
        self.vals = SeqRing::load(r)?;
        self.sq = StoreQueue::load(r)?;
        self.lq = LoadQueue::load(r)?;
        self.hierarchy = Hierarchy::load(r)?;
        self.commit_mem = MemImage::load(r)?;
        self.ssn_cmt = Ssn::load(r)?;
        self.policy = PolicyHost::load_snapshot(r, &self.cfg)?;
        self.caps = self.policy.caps();
        self.bp = BranchPredictor::load(r)?;
        self.stats = SimStats::load(r)?;
        Ok(())
    }
}

/// A `HashMap`'s contents as a key-sorted pair vector (deterministic
/// serialisation order regardless of hash-iteration order).
fn sorted_pairs<V: Clone>(map: &HashMap<u64, V>) -> Vec<(u64, V)> {
    let mut pairs: Vec<(u64, V)> = map.iter().map(|(k, v)| (*k, v.clone())).collect();
    pairs.sort_unstable_by_key(|(k, _)| *k);
    pairs
}
