//! Commit: the SVW check, filtered re-execution, predictor training and
//! flush repair (the policy's verify and repair touch-points).
//!
//! Squash repair differs from the reference engine only in *how* it
//! finds the squashed set: the reference filters its `HashMap` keys, the
//! event engine walks the ROB tail (the two are always the same set —
//! the slab's live keys are exactly the ROB contents).

use sqip_isa::TraceRecord;
use sqip_types::{Seq, Ssn};

use crate::config::OrderingMode;
use crate::dyninst::InstState;
use crate::pipeline::event::{EventCore, RenameStop};
use crate::policy::LoadCommitInfo;

impl EventCore<'_> {
    #[inline(never)] // per-cycle stage entry: keep a distinct frame for profiles/codegen audits
    pub(crate) fn commit_stage(&mut self) {
        let mut reexec_budget = self.cfg.reexec_ports;
        for _ in 0..self.cfg.commit_width {
            let Some(&seq) = self.rob.front() else { break };
            // One slab read answers eligibility and captures the retire
            // value for the non-memory fast path.
            let (eligible, value) = {
                let inst = self.insts.get(seq.0).expect("ROB head in flight");
                (
                    inst.state == InstState::Done && inst.commit_eligible <= self.cycle,
                    inst.value,
                )
            };
            if !eligible {
                break;
            }
            // Non-memory instructions need only two record fields; loads
            // and stores take the full copy in their own paths.
            let (op, dst) = {
                let r = self.rec(seq);
                (r.op, r.dst)
            };
            if op.is_load() {
                let rec = *self.rec(seq);
                if !self.commit_load(seq, &rec, &mut reexec_budget) {
                    break; // re-exec port stall or flush: stop committing
                }
            } else if op.is_store() {
                let rec = *self.rec(seq);
                self.commit_store(seq, &rec);
            }
            if op.is_conditional() {
                self.stats.branches += 1;
            }
            self.retire(seq, dst, value);
        }
    }

    /// Returns `false` if commit must stop (port stall — load stays; or a
    /// flush was triggered — load already retired inside).
    fn commit_load(&mut self, seq: Seq, rec: &TraceRecord, reexec_budget: &mut usize) -> bool {
        let span = rec.mem_addr().span(rec.size);
        // One slab read covers the SVW check, the training record, and
        // the per-load statistics below.
        let (svw, older_unknown, value, fwd, info, delay_gated, delay) = {
            let inst = self.insts.get(seq.0).expect("committing load in flight");
            (
                inst.svw,
                inst.older_unknown,
                inst.value,
                inst.forwarded_from,
                LoadCommitInfo {
                    pc: rec.pc,
                    span,
                    flushed: false, // patched below if the check flushes
                    pred_store_pc: inst.pred_store_pc,
                    ssn_fwd: inst.ssn_fwd,
                    prev_store_ssn: inst.prev_store_ssn,
                    was_delayed: inst.delay_gated,
                    path: inst.path,
                },
                inst.delay_gated,
                inst.ddp_delay(),
            )
        };
        self.stats.naive_reexec_candidates += u64::from(older_unknown);

        // SVW filter (policy touch-point): re-execute only if a store the
        // load is vulnerable to wrote its address. Under the conventional
        // LQ CAM, ordering was verified at store execution and no
        // re-execution happens at all.
        let needs_reexec =
            self.cfg.ordering == OrderingMode::SvwReexecution && self.policy.svw_newest(span) > svw;
        let mut flush = false;
        if needs_reexec {
            if *reexec_budget == 0 {
                self.stats.reexec_port_stalls += 1;
                return false;
            }
            *reexec_budget -= 1;
            self.stats.re_executions += 1;
            self.hierarchy.touch(rec.mem_addr());
            let correct = self.commit_mem.read(rec.mem_addr(), rec.size);
            debug_assert_eq!(
                correct, rec.result,
                "commit-time memory must match the golden trace"
            );
            if value != correct {
                // Mis-forwarding (or ordering violation): fix the load's
                // value from re-execution and flush everything younger.
                self.stats.mis_forwards += 1;
                let inst = self.insts.get_mut(seq.0).expect("load in flight");
                inst.value = correct;
                self.vals.set_spec_value(seq.0, correct);
                flush = true;
            }
        }

        // Policy touch-point: commit-time training (FSP/DDP per Table 1
        // and §3.2–3.3, or original-Store-Sets violation merging).
        let info = LoadCommitInfo {
            flushed: flush,
            ..info
        };
        self.policy.train_load_commit(&info);

        // Per-load statistics.
        self.stats.loads += 1;
        self.stats.loads_forwarded += u64::from(fwd.is_some());
        if let Some(f) = self.window.fwd(seq) {
            if f.store_dist < self.cfg.sq_size as u64 {
                self.stats.forwarding_relevant_loads += 1;
            }
        }
        if delay_gated && delay > 0 {
            self.stats.loads_delayed += 1;
            self.stats.delay_cycles += delay;
        }

        let _ = self.lq.commit_head();
        if flush {
            // The load's value was just corrected from re-execution.
            let corrected = self
                .insts
                .get(seq.0)
                .expect("committing load in flight")
                .value;
            self.retire(seq, rec.dst, corrected);
            self.flush_younger(seq);
            return false;
        }
        true
    }

    fn commit_store(&mut self, seq: Seq, rec: &TraceRecord) {
        let entry = self.sq.commit_head();
        debug_assert_eq!(
            entry.ssn,
            self.insts.get(seq.0).expect("committing store").my_ssn
        );
        let span = rec.mem_addr().span(rec.size);
        debug_assert_eq!(
            entry.data, rec.result,
            "store data must be architecturally correct by commit"
        );
        self.commit_mem.write(rec.mem_addr(), rec.size, entry.data);
        self.hierarchy.touch(rec.mem_addr());
        // Policy touch-point: verification-structure update (SSBF/SPCT).
        self.policy.store_committed(rec.pc, span, entry.ssn);
        self.ssn_cmt = entry.ssn;
        self.stats.stores += 1;

        // Release delay-gated and partial-stalled loads waiting on stores
        // up to this SSN. Commits are dense and in-order, so "up to" can
        // only mean this store's own slot (older slots drained at their
        // own commits) — an O(1) ring drain.
        if !self.wake_on_store_commit.is_empty() {
            self.wake_commit_waiters(entry.ssn.0);
        }
    }

    /// Drains `wake_on_store_commit[ssn]`, releasing each waiter's delay
    /// gate.
    fn wake_commit_waiters(&mut self, ssn: u64) {
        let mut scratch = std::mem::take(&mut self.wake_scratch);
        debug_assert!(scratch.is_empty());
        self.wake_on_store_commit.remove_into(ssn, &mut scratch);
        for w in scratch.drain(..) {
            self.wake_one(w, true);
        }
        self.wake_scratch = scratch;
    }

    /// Retires the ROB head. `value` is the instruction's committed
    /// result, captured by the caller's slab read (post-re-execution for
    /// a flushing load).
    fn retire(&mut self, seq: Seq, dst: Option<sqip_isa::Reg>, value: u64) {
        if let Some(d) = dst {
            self.committed_regs[d.index()] = value;
            if self.rename_map[d.index()] == Some(seq) {
                self.rename_map[d.index()] = None;
            }
        }
        let _ = self.rob.pop_front();
        self.insts.remove(seq.0);
        self.policy.on_retire(seq);
        self.stats.committed += 1;
        self.last_commit_cycle = self.cycle;
        // Commit is in-order, so the retiring instruction is always the
        // record window's front: its record can never be re-fetched.
        self.window.pop_front();
    }

    /// Mid-window squash (LQ CAM violation): everything at or younger than
    /// `from` is squashed and refetched; older instructions stay in flight.
    pub(crate) fn squash_from(&mut self, from: Seq) {
        self.stats.flushes += 1;
        self.incarnation += 1;

        // (Value-ring slots of squashed instructions are not cleared here:
        // nothing reads a squashed slot before its re-rename resets it.)
        // The ROB tail at or younger than `from` is exactly the squashed
        // set (slab keys mirror ROB contents).
        let keep = self.rob.iter().take_while(|&&s| s < from).count();
        let squashed = self.rob.len() - keep;
        self.stats.squashed += squashed as u64;
        for i in keep..self.rob.len() {
            let s = *self.rob.get(i).expect("ROB index in range");
            self.insts.remove(s.0);
        }
        self.rob.truncate(keep);
        self.ready_q.retain(|&s| s < from.0);
        self.iq_count = self
            .rob
            .iter()
            .filter(|&&s| {
                let inst = self.insts.get(s.0).expect("surviving inst in flight");
                matches!(inst.state, InstState::Waiting | InstState::Ready)
            })
            .count();
        self.lq.squash_from(from);

        // SSNs roll back to the youngest surviving store.
        let keep_ssn = self
            .rob
            .iter()
            .map(|&s| self.insts.get(s.0).expect("surviving inst").my_ssn)
            .max()
            .unwrap_or(Ssn::NONE)
            .max(self.ssn_cmt);
        self.sq.squash_from(keep_ssn.next());
        self.ssn_ren = keep_ssn;
        // Policy touch-point: flush repair (SAT rollback, LFST clear).
        self.policy.on_flush(from);

        // Rebuild the rename map from the surviving window, oldest first.
        self.rename_map = [None; sqip_isa::NUM_REGS];
        for i in 0..self.rob.len() {
            let s = *self.rob.get(i).expect("ROB index in range");
            if let Some(d) = self.rec(s).dst {
                self.rename_map[d.index()] = Some(s);
            }
        }

        self.front_q.clear();
        self.rename_stop = RenameStop::Width;
        if self.pending_redirect.is_some_and(|s| s >= from) {
            self.pending_redirect = None;
        }
        self.fetch_idx = from.0 as usize;
        self.fetch_stall_until = self.cycle + 1;
        self.draining_for_wrap = false;
    }

    /// Full pipeline flush: squash everything younger than the committing
    /// load and refetch from the next instruction.
    fn flush_younger(&mut self, from: Seq) {
        self.stats.flushes += 1;
        self.incarnation += 1;

        self.stats.squashed += self.rob.len() as u64;
        self.insts.clear();
        self.rob.clear();
        self.ready_q.clear();
        self.iq_count = 0;
        self.lq.clear();
        self.sq.clear();
        self.wake_on_value.clear_all();
        self.wake_on_store_exec.clear_all();
        self.wake_on_store_exec_strict.clear_all();
        self.wake_on_store_commit.clear_all();
        self.front_q.clear();
        self.rename_stop = RenameStop::Width;
        self.rename_map = [None; sqip_isa::NUM_REGS];

        // All in-flight stores were squashed; the rename-time SSN counter
        // rolls back to the committed high-water mark, and the policy
        // undoes the squashed stores' speculative predictor writes.
        self.ssn_ren = self.ssn_cmt;
        self.policy.on_flush(from.next());
        self.draining_for_wrap = false;

        self.pending_redirect = None;
        self.fetch_idx = from.0 as usize + 1;
        self.fetch_stall_until = self.cycle + 1;
    }
}
