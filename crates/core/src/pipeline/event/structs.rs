//! Ring-indexed, allocation-free backing stores for the event engine's
//! in-flight state.
//!
//! The reference engine keeps per-instruction state in `HashMap`s and the
//! ready set in a `BTreeSet`; every access hashes or rebalances. The
//! event engine exploits the same windowing argument as
//! [`SeqRing`](crate::pipeline::window::SeqRing): live sequence numbers
//! (and live store SSNs) are dense and span less than the machine window,
//! so `key % capacity` is collision-free for any two simultaneously live
//! keys, and a fixed ring of slots replaces the map. Lists of waiters are
//! owned by their slot and only ever `clear()`ed, never dropped, so after
//! warm-up the engine performs no per-instruction allocation — the slots
//! and their `Vec`s form the free list.

use crate::dyninst::DynInst;
use sqip_isa::OpClass;
use sqip_types::{Seq, Ssn};

/// In-flight instruction state in a ring keyed by `seq % capacity`.
///
/// Drop-in replacement for the reference engine's `HashMap<u64, DynInst>`:
/// the set of live keys is exactly the ROB contents, whose sequence
/// numbers are consecutive, so a ring sized past the ROB never sees two
/// live keys in one slot (checked by a tag compare on every access).
pub(crate) struct InstSlab {
    /// Capacity mask (power-of-two ring, like
    /// [`SeqRing`](crate::pipeline::window::SeqRing): a mask, not a
    /// division, on every access).
    /// Liveness is encoded in each slot's own `seq` tag: an empty slot
    /// holds [`InstSlab::EMPTY`] (not a reachable sequence number), so a
    /// lookup touches exactly one array. Indexing masks with
    /// `slots.len() - 1` (power-of-two length), a pattern the optimiser
    /// recognises as in-bounds.
    slots: Vec<DynInst>,
}

impl InstSlab {
    /// Tag of an unoccupied slot; real sequence numbers are trace
    /// indices and can never reach `u64::MAX`.
    const EMPTY: u64 = u64::MAX;

    pub(crate) fn new(rob_size: usize, fetch_width: usize) -> InstSlab {
        let cap = crate::pipeline::window::seq_ring_capacity(rob_size, fetch_width);
        InstSlab {
            slots: vec![DynInst::new(Seq(InstSlab::EMPTY), 0, Ssn::NONE); cap],
        }
    }

    #[inline]
    fn idx(&self, seq: u64) -> usize {
        (seq as usize) & (self.slots.len() - 1)
    }

    #[inline]
    pub(crate) fn get(&self, seq: u64) -> Option<&DynInst> {
        let i = self.idx(seq);
        if self.slots[i].seq.0 == seq {
            Some(&self.slots[i])
        } else {
            None
        }
    }

    #[inline]
    pub(crate) fn get_mut(&mut self, seq: u64) -> Option<&mut DynInst> {
        let i = self.idx(seq);
        if self.slots[i].seq.0 == seq {
            Some(&mut self.slots[i])
        } else {
            None
        }
    }

    /// Inserts (or replaces, after a squash re-rename) the instruction.
    #[inline]
    pub(crate) fn insert(&mut self, seq: u64, inst: DynInst) {
        debug_assert_eq!(inst.seq.0, seq, "slab key must match the instruction");
        let i = self.idx(seq);
        debug_assert!(
            self.slots[i].seq.0 == InstSlab::EMPTY || self.slots[i].seq.0 == seq,
            "instruction slab slot collision: {} vs live {}",
            seq,
            self.slots[i].seq.0
        );
        self.slots[i] = inst;
    }

    #[inline]
    pub(crate) fn remove(&mut self, seq: u64) {
        let i = self.idx(seq);
        if self.slots[i].seq.0 == seq {
            self.slots[i].seq = Seq(InstSlab::EMPTY);
        }
    }

    /// Drops everything (full pipeline flush).
    pub(crate) fn clear(&mut self) {
        for s in &mut self.slots {
            s.seq = Seq(InstSlab::EMPTY);
        }
    }

    /// Recomputes every live instruction's cached record facts
    /// (`op_class`, `has_dst`) from the record window. Used after
    /// snapshot load: the cache is derived state and is not serialised.
    pub(crate) fn rebuild_record_cache(&mut self, window: &crate::pipeline::window::RecordWindow) {
        for slot in &mut self.slots {
            if slot.seq.0 != InstSlab::EMPTY {
                let rec = window.rec(slot.seq);
                slot.op_class = rec.op.class();
                slot.has_dst = rec.dst.is_some();
            }
        }
    }
}

/// The issue-port index an op class contends for (the order of
/// `issue_stage`'s port-budget array and of [`ReadyLanes`]'s lanes).
pub(crate) const fn port_of(class: OpClass) -> usize {
    match class {
        OpClass::IntAlu | OpClass::IntMul | OpClass::None => 0,
        OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => 1,
        OpClass::Branch => 2,
        OpClass::Load => 3,
        OpClass::Store => 4,
    }
}

/// Number of issue-port lanes ([`port_of`]'s range).
pub(crate) const NUM_LANES: usize = 5;

/// The scheduler's ready set, split into one dense lane per issue port.
///
/// Where the reference engine scans a single ordered set oldest-first
/// and dispatches on each candidate's class, issue selection here is a
/// min-seq merge over at most [`NUM_LANES`] lane tails: lanes whose
/// port budget is exhausted drop out of the merge wholesale, so a
/// cycle's selection touches O(issue width × lanes) entries instead of
/// the whole ready set. Each lane is kept sorted descending (oldest
/// entry at the tail), so the merge peeks and pops in O(1) per lane.
///
/// The selection is provably the reference order: the reference scan
/// skips (without consuming total-width budget) exactly the candidates
/// whose port budget is zero, and the merge's min over budgeted lanes
/// is exactly the next non-skipped candidate of that scan.
#[derive(Default)]
pub(crate) struct ReadyLanes {
    lanes: [Vec<u64>; NUM_LANES],
    len: usize,
}

impl ReadyLanes {
    #[inline]
    pub(crate) fn insert(&mut self, seq: u64, class: OpClass) {
        let lane = &mut self.lanes[port_of(class)];
        // Descending order: oldest (smallest) seq at the tail.
        if let Err(pos) = lane.binary_search_by(|x| seq.cmp(x)) {
            lane.insert(pos, seq);
            self.len += 1;
        }
    }

    #[cfg(test)]
    pub(crate) fn remove(&mut self, seq: u64) {
        for lane in &mut self.lanes {
            if let Ok(pos) = lane.binary_search_by(|x| seq.cmp(x)) {
                lane.remove(pos);
                self.len -= 1;
                return;
            }
        }
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Every ready sequence number in ascending order (the old
    /// single-set iteration order), for tests and snapshots.
    pub(crate) fn sorted_seqs(&self) -> Vec<u64> {
        let mut all: Vec<u64> = Vec::with_capacity(self.len);
        for lane in &self.lanes {
            all.extend_from_slice(lane);
        }
        all.sort_unstable();
        all
    }

    pub(crate) fn retain(&mut self, mut f: impl FnMut(&u64) -> bool) {
        for lane in &mut self.lanes {
            let before = lane.len();
            lane.retain(|s| f(s));
            self.len -= before - lane.len();
        }
    }

    /// One cycle's issue selection: repeatedly pops the oldest entry
    /// among lanes with remaining port budget, decrementing that port
    /// and the shared total, until the total is spent or no budgeted
    /// lane has entries. Selected seqs land in `out` oldest-first.
    /// `touches` counts lane-tail peeks (the selection-cost observable).
    pub(crate) fn pop_selected(
        &mut self,
        ports: &mut [usize; NUM_LANES],
        mut total: usize,
        out: &mut Vec<u64>,
        touches: &mut u64,
    ) {
        while total > 0 {
            let mut best = u64::MAX;
            let mut best_lane = usize::MAX;
            for (l, lane) in self.lanes.iter().enumerate() {
                if ports[l] == 0 {
                    continue;
                }
                if let Some(&s) = lane.last() {
                    *touches += 1;
                    if s < best {
                        best = s;
                        best_lane = l;
                    }
                }
            }
            if best_lane == usize::MAX {
                break;
            }
            self.lanes[best_lane].pop();
            self.len -= 1;
            ports[best_lane] -= 1;
            total -= 1;
            out.push(best);
        }
    }

    pub(crate) fn clear(&mut self) {
        for lane in &mut self.lanes {
            lane.clear();
        }
        self.len = 0;
    }

    /// Redistributes a flat snapshot-loaded seq list into per-port lanes
    /// using each record's class from the window (used after checkpoint
    /// restore, where only the merged sequence numbers are serialised —
    /// the lane split is derived state).
    pub(crate) fn rebuild_classes(&mut self, window: &crate::pipeline::window::RecordWindow) {
        let seqs = self.sorted_seqs();
        self.clear();
        for s in seqs {
            self.insert(s, window.rec(Seq(s)).op.class());
        }
    }
}

/// Span of the near rings: the furthest-ahead event they can hold.
/// Covers every predicted latency of the short-latency op classes (and
/// every `issue_to_exec` depth); rarer further-out events fall back to
/// the event wheel.
pub(crate) const NEAR_SPAN: u64 = 64;

/// Whether an event due at `at` is near enough for a [`NearRing`]
/// (strictly future, within the span).
#[inline]
pub(crate) fn fits_near(now: u64, at: u64) -> bool {
    at > now && at - now <= NEAR_SPAN
}

/// Deferred events within the next [`NEAR_SPAN`] cycles, keyed by due
/// cycle — the structure that lets `issue_stage` stay off the event
/// wheel entirely on the common path. One instance holds pending value
/// broadcasts (payload: producer seq), another pending executions
/// (payload: `(seq, incarnation)`).
///
/// A slot holds the payloads due at one cycle (`at % NEAR_SPAN` is
/// collision-free because every pending due cycle lies in a single
/// `NEAR_SPAN`-wide window past the current cycle). Draining pops whole
/// slots; slot `Vec`s are recycled, so steady-state scheduling is
/// allocation-free. Like the wheel's events, entries are **never
/// removed by flushes**: a squashed producer's broadcast still fires
/// and drains whatever consumers are registered (possibly none), and a
/// squashed execution is dropped by the dispatcher's incarnation check
/// — the reference engine's heap does exactly the same, so a stale
/// drain is a bit-identical no-op.
pub(crate) struct NearRing<T> {
    /// Occupancy bitmap over the slots (one bit per slot).
    occ: u64,
    /// The due cycle each occupied slot holds.
    cycles: [u64; NEAR_SPAN as usize],
    slots: Vec<Vec<T>>,
    /// Earliest occupied due cycle (`u64::MAX` when empty).
    earliest: u64,
    len: usize,
}

impl<T> NearRing<T> {
    pub(crate) fn new() -> NearRing<T> {
        NearRing {
            occ: 0,
            cycles: [0; NEAR_SPAN as usize],
            slots: std::iter::repeat_with(Vec::new)
                .take(NEAR_SPAN as usize)
                .collect(),
            earliest: u64::MAX,
            len: 0,
        }
    }

    /// Queues `payload` for cycle `at`. The caller guarantees
    /// [`fits_near`]; within one span window two distinct pending
    /// cycles can never share a slot.
    #[inline]
    pub(crate) fn schedule(&mut self, at: u64, payload: T) {
        let i = (at % NEAR_SPAN) as usize;
        if self.slots[i].is_empty() {
            self.cycles[i] = at;
            self.occ |= 1u64 << i;
        } else {
            debug_assert_eq!(
                self.cycles[i], at,
                "near-ring slot collision across the span window"
            );
        }
        self.slots[i].push(payload);
        self.earliest = self.earliest.min(at);
        self.len += 1;
    }

    /// Earliest pending due cycle, for skip-ahead.
    #[inline]
    pub(crate) fn next_at(&self) -> Option<u64> {
        (self.earliest != u64::MAX).then_some(self.earliest)
    }

    /// Moves the earliest due slot's payloads into `out` if that slot
    /// is due at or before `now`. Returns whether anything was taken.
    pub(crate) fn take_due(&mut self, now: u64, out: &mut Vec<T>) -> bool {
        if self.earliest > now {
            return false;
        }
        let i = (self.earliest % NEAR_SPAN) as usize;
        debug_assert!(self.occ & (1u64 << i) != 0);
        self.len -= self.slots[i].len();
        out.append(&mut self.slots[i]);
        self.occ &= !(1u64 << i);
        self.earliest = self.rescan_earliest();
        true
    }

    fn rescan_earliest(&self) -> u64 {
        let mut occ = self.occ;
        let mut earliest = u64::MAX;
        while occ != 0 {
            let i = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            earliest = earliest.min(self.cycles[i]);
        }
        earliest
    }
}

/// Waiter lists in a ring keyed by `key % capacity` — the event engine's
/// replacement for `HashMap<u64, Vec<u64>>` wake tables.
///
/// A slot is occupied while its list is non-empty; its `Vec` is never
/// dropped, so steady-state pushes are allocation-free. The windowing
/// argument that makes the ring sound: keys are either in-flight sequence
/// numbers (producers with a pending wakeup broadcast) or in-flight store
/// SSNs (stores with registered dependents), both of which are removed —
/// by the broadcast, the store's execution, or its speculative
/// `StoreWake` — before the key space can wrap back onto the slot. A
/// debug assertion checks for collisions on every push.
pub(crate) struct WaiterRing {
    /// Capacity mask (power-of-two ring).
    mask: u64,
    keys: Vec<u64>,
    lists: Vec<Vec<u64>>,
    /// Total waiters across all slots (cheap emptiness check).
    len: usize,
}

impl WaiterRing {
    pub(crate) fn new(cap: usize) -> WaiterRing {
        let cap = cap.next_power_of_two();
        WaiterRing {
            mask: cap as u64 - 1,
            keys: vec![0; cap],
            lists: vec![Vec::new(); cap],
            len: 0,
        }
    }

    /// Whether any waiter is registered under any key.
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn idx(&self, key: u64) -> usize {
        (key & self.mask) as usize
    }

    /// Appends `waiter` to `key`'s list.
    ///
    /// # Panics
    ///
    /// Panics if a *different* live key already occupies `key`'s slot.
    /// The engine's windowing invariants make this unreachable for its
    /// own keys; the one externally influenced key space is a custom
    /// [`ForwardingPolicy`](crate::ForwardingPolicy) returning a
    /// commit-gate SSN more than a ring capacity ahead of the commit
    /// point — better a loud panic (with the reference engine as the
    /// workaround) than a silently lost wakeup. The check is a compare
    /// the hot path performs anyway.
    #[inline]
    pub(crate) fn push(&mut self, key: u64, waiter: u64) {
        let i = self.idx(key);
        if self.lists[i].is_empty() {
            self.keys[i] = key;
        } else {
            assert_eq!(
                self.keys[i], key,
                "waiter ring slot collision: two live keys share a slot                  (a policy scheduled a wake implausibly far ahead; run                  this design under Engine::Reference)"
            );
        }
        self.lists[i].push(waiter);
        self.len += 1;
    }

    /// Whether `key` has any registered waiters.
    #[inline]
    pub(crate) fn contains(&self, key: u64) -> bool {
        let i = self.idx(key);
        !self.lists[i].is_empty() && self.keys[i] == key
    }

    /// Moves `key`'s waiters into `out` (the slot's allocation is kept).
    #[inline]
    pub(crate) fn remove_into(&mut self, key: u64, out: &mut Vec<u64>) {
        let i = self.idx(key);
        if !self.lists[i].is_empty() && self.keys[i] == key {
            self.len -= self.lists[i].len();
            out.append(&mut self.lists[i]);
        }
    }

    /// Empties every slot (full pipeline flush), keeping allocations.
    pub(crate) fn clear_all(&mut self) {
        for l in &mut self.lists {
            l.clear();
        }
        self.len = 0;
    }
}

impl sqip_snapshot::Snapshot for InstSlab {
    fn save(&self, w: &mut sqip_snapshot::SnapWriter) -> Result<(), sqip_snapshot::SnapError> {
        self.slots.save(w)
    }
    fn load(r: &mut sqip_snapshot::SnapReader) -> Result<InstSlab, sqip_snapshot::SnapError> {
        let slots = Vec::<DynInst>::load(r)?;
        if !slots.len().is_power_of_two() {
            return Err(sqip_snapshot::SnapError::Corrupt(format!(
                "instruction slab of {} slots (want a power of two)",
                slots.len()
            )));
        }
        Ok(InstSlab { slots })
    }
}

impl sqip_snapshot::Snapshot for ReadyLanes {
    fn save(&self, w: &mut sqip_snapshot::SnapWriter) -> Result<(), sqip_snapshot::SnapError> {
        // The merged ascending seq list — the same bytes the pre-lane
        // `ReadySet` wrote, so the format is lane-layout-agnostic.
        self.sorted_seqs().save(w)
    }
    fn load(r: &mut sqip_snapshot::SnapReader) -> Result<ReadyLanes, sqip_snapshot::SnapError> {
        let seqs = Vec::<u64>::load(r)?;
        if !seqs.windows(2).all(|p| p[0] < p[1]) {
            return Err(sqip_snapshot::SnapError::Corrupt(
                "ready set is not sorted and deduplicated".into(),
            ));
        }
        // Staged into lane 0 (descending); the lane split is derived
        // state, recomputed by the engine's `rebuild_classes` once the
        // record window is restored.
        let len = seqs.len();
        let mut lanes: [Vec<u64>; NUM_LANES] = Default::default();
        lanes[0] = seqs;
        lanes[0].reverse();
        Ok(ReadyLanes { lanes, len })
    }
}

impl<T: Clone + sqip_snapshot::Snapshot> sqip_snapshot::Snapshot for NearRing<T> {
    fn save(&self, w: &mut sqip_snapshot::SnapWriter) -> Result<(), sqip_snapshot::SnapError> {
        // Occupied slots in due-cycle order, each with its payload list
        // in push order (occupancy/earliest are derived on load).
        let mut due: Vec<(u64, Vec<T>)> = Vec::new();
        let mut occ = self.occ;
        while occ != 0 {
            let i = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            due.push((self.cycles[i], self.slots[i].clone()));
        }
        due.sort_unstable_by_key(|(at, _)| *at);
        due.save(w)
    }
    fn load(r: &mut sqip_snapshot::SnapReader) -> Result<NearRing<T>, sqip_snapshot::SnapError> {
        let due = Vec::<(u64, Vec<T>)>::load(r)?;
        let mut near = NearRing::new();
        for (at, payloads) in due {
            let i = (at % NEAR_SPAN) as usize;
            if !near.slots[i].is_empty() || payloads.is_empty() {
                return Err(sqip_snapshot::SnapError::Corrupt(
                    "near ring: colliding or empty slot".into(),
                ));
            }
            for p in payloads {
                near.schedule(at, p);
            }
        }
        Ok(near)
    }
}

impl sqip_snapshot::Snapshot for WaiterRing {
    fn save(&self, w: &mut sqip_snapshot::SnapWriter) -> Result<(), sqip_snapshot::SnapError> {
        self.mask.save(w)?;
        self.keys.save(w)?;
        self.lists.save(w)?;
        self.len.save(w)
    }
    fn load(r: &mut sqip_snapshot::SnapReader) -> Result<WaiterRing, sqip_snapshot::SnapError> {
        let mask = u64::load(r)?;
        let keys = Vec::<u64>::load(r)?;
        let lists = Vec::<Vec<u64>>::load(r)?;
        let len = usize::load(r)?;
        let cap = mask.wrapping_add(1);
        let waiters: usize = lists.iter().map(Vec::len).sum();
        if !cap.is_power_of_two()
            || keys.len() as u64 != cap
            || lists.len() as u64 != cap
            || waiters != len
        {
            return Err(sqip_snapshot::SnapError::Corrupt(format!(
                "waiter ring: mask {mask:#x}, {} keys, {} lists, len {len} vs {waiters} waiters",
                keys.len(),
                lists.len()
            )));
        }
        Ok(WaiterRing {
            mask,
            keys,
            lists,
            len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inst_slab_tags_distinguish_ring_tenants() {
        let mut slab = InstSlab::new(4, 1);
        let cap = (2 * 4 + 4 + 64u64).next_power_of_two();
        slab.insert(3, DynInst::new(Seq(3), 0, Ssn::NONE));
        assert!(slab.get(3).is_some());
        assert!(slab.get(3 + cap).is_none(), "same slot, different tenant");
        slab.remove(3 + cap); // no-op: tag mismatch
        assert!(slab.get(3).is_some());
        slab.remove(3);
        assert!(slab.get(3).is_none());
    }

    #[test]
    fn ready_lanes_are_ordered_and_dedup() {
        let mut r = ReadyLanes::default();
        for (s, c) in [
            (9, OpClass::IntAlu),
            (3, OpClass::Load),
            (7, OpClass::IntAlu),
            (3, OpClass::Load),
        ] {
            r.insert(s, c);
        }
        assert_eq!(r.sorted_seqs(), vec![3, 7, 9]);
        r.remove(7);
        r.retain(|&s| s < 9);
        assert_eq!(r.sorted_seqs(), vec![3]);
        assert!(!r.is_empty());
    }

    #[test]
    fn lane_selection_matches_the_oldest_first_port_budget_scan() {
        // Reference semantics: scan ascending; a zero port budget skips
        // the candidate WITHOUT consuming total width; total exhaustion
        // stops everything.
        let mut r = ReadyLanes::default();
        for (s, c) in [
            (1, OpClass::Load),
            (2, OpClass::IntAlu),
            (3, OpClass::Load),
            (4, OpClass::Store),
            (5, OpClass::IntAlu),
            (6, OpClass::IntAlu),
        ] {
            r.insert(s, c);
        }
        // Budgets: 2 int, 0 fp, 0 branch, 1 load, 1 store; total 3.
        // Scan order 1(load,take) 2(int,take) 3(load,port dry,skip)
        // 4(store,take) -> total spent.
        let mut ports = [2, 0, 0, 1, 1];
        let mut out = Vec::new();
        let mut touches = 0u64;
        r.pop_selected(&mut ports, 3, &mut out, &mut touches);
        assert_eq!(out, vec![1, 2, 4]);
        assert_eq!(r.sorted_seqs(), vec![3, 5, 6]);
        assert!(touches > 0);
    }

    #[test]
    fn near_rings_drain_in_due_order_and_recycle_slots() {
        let mut n = NearRing::<u64>::new();
        assert!(fits_near(10, 11));
        assert!(fits_near(10, 10 + NEAR_SPAN));
        assert!(!fits_near(10, 10));
        assert!(!fits_near(10, 11 + NEAR_SPAN));
        n.schedule(12, 100);
        n.schedule(15, 200);
        n.schedule(12, 101);
        assert_eq!(n.next_at(), Some(12));
        let mut out = Vec::new();
        assert!(!n.take_due(11, &mut out), "nothing due yet");
        assert!(n.take_due(12, &mut out));
        assert_eq!(out, vec![100, 101]);
        assert_eq!(n.next_at(), Some(15));
        out.clear();
        assert!(n.take_due(15, &mut out));
        assert_eq!(out, vec![200]);
        assert_eq!(n.next_at(), None);
        // A span later, the same slot index serves a new cycle.
        n.schedule(12 + NEAR_SPAN, 300);
        assert_eq!(n.next_at(), Some(12 + NEAR_SPAN));
    }

    #[test]
    fn waiter_ring_drains_into_scratch_and_keeps_capacity() {
        let mut w = WaiterRing::new(8);
        w.push(5, 100);
        w.push(5, 101);
        assert!(w.contains(5));
        assert!(!w.contains(13), "slot shared, key differs");
        let mut out = Vec::new();
        w.remove_into(5, &mut out);
        assert_eq!(out, vec![100, 101]);
        assert!(!w.contains(5));
        // The freed slot is immediately reusable by the wrapped key.
        w.push(13, 7);
        assert!(w.contains(13));
    }
}
