//! Ring-indexed, allocation-free backing stores for the event engine's
//! in-flight state.
//!
//! The reference engine keeps per-instruction state in `HashMap`s and the
//! ready set in a `BTreeSet`; every access hashes or rebalances. The
//! event engine exploits the same windowing argument as
//! [`SeqRing`](crate::pipeline::window::SeqRing): live sequence numbers
//! (and live store SSNs) are dense and span less than the machine window,
//! so `key % capacity` is collision-free for any two simultaneously live
//! keys, and a fixed ring of slots replaces the map. Lists of waiters are
//! owned by their slot and only ever `clear()`ed, never dropped, so after
//! warm-up the engine performs no per-instruction allocation — the slots
//! and their `Vec`s form the free list.

use crate::dyninst::DynInst;
use sqip_isa::OpClass;
use sqip_types::{Seq, Ssn};

/// In-flight instruction state in a ring keyed by `seq % capacity`.
///
/// Drop-in replacement for the reference engine's `HashMap<u64, DynInst>`:
/// the set of live keys is exactly the ROB contents, whose sequence
/// numbers are consecutive, so a ring sized past the ROB never sees two
/// live keys in one slot (checked by a tag compare on every access).
pub(crate) struct InstSlab {
    /// Capacity mask (power-of-two ring, like
    /// [`SeqRing`](crate::pipeline::window::SeqRing): a mask, not a
    /// division, on every access).
    /// Liveness is encoded in each slot's own `seq` tag: an empty slot
    /// holds [`InstSlab::EMPTY`] (not a reachable sequence number), so a
    /// lookup touches exactly one array. Indexing masks with
    /// `slots.len() - 1` (power-of-two length), a pattern the optimiser
    /// recognises as in-bounds.
    slots: Vec<DynInst>,
}

impl InstSlab {
    /// Tag of an unoccupied slot; real sequence numbers are trace
    /// indices and can never reach `u64::MAX`.
    const EMPTY: u64 = u64::MAX;

    pub(crate) fn new(rob_size: usize, fetch_width: usize) -> InstSlab {
        let cap = crate::pipeline::window::seq_ring_capacity(rob_size, fetch_width);
        InstSlab {
            slots: vec![DynInst::new(Seq(InstSlab::EMPTY), 0, Ssn::NONE); cap],
        }
    }

    #[inline]
    fn idx(&self, seq: u64) -> usize {
        (seq as usize) & (self.slots.len() - 1)
    }

    #[inline]
    pub(crate) fn get(&self, seq: u64) -> Option<&DynInst> {
        let i = self.idx(seq);
        if self.slots[i].seq.0 == seq {
            Some(&self.slots[i])
        } else {
            None
        }
    }

    #[inline]
    pub(crate) fn get_mut(&mut self, seq: u64) -> Option<&mut DynInst> {
        let i = self.idx(seq);
        if self.slots[i].seq.0 == seq {
            Some(&mut self.slots[i])
        } else {
            None
        }
    }

    /// Inserts (or replaces, after a squash re-rename) the instruction.
    #[inline]
    pub(crate) fn insert(&mut self, seq: u64, inst: DynInst) {
        debug_assert_eq!(inst.seq.0, seq, "slab key must match the instruction");
        let i = self.idx(seq);
        debug_assert!(
            self.slots[i].seq.0 == InstSlab::EMPTY || self.slots[i].seq.0 == seq,
            "instruction slab slot collision: {} vs live {}",
            seq,
            self.slots[i].seq.0
        );
        self.slots[i] = inst;
    }

    #[inline]
    pub(crate) fn remove(&mut self, seq: u64) {
        let i = self.idx(seq);
        if self.slots[i].seq.0 == seq {
            self.slots[i].seq = Seq(InstSlab::EMPTY);
        }
    }

    /// Drops everything (full pipeline flush).
    pub(crate) fn clear(&mut self) {
        for s in &mut self.slots {
            s.seq = Seq(InstSlab::EMPTY);
        }
    }

    /// Recomputes every live instruction's cached record facts
    /// (`op_class`, `has_dst`) from the record window. Used after
    /// snapshot load: the cache is derived state and is not serialised.
    pub(crate) fn rebuild_record_cache(&mut self, window: &crate::pipeline::window::RecordWindow) {
        for slot in &mut self.slots {
            if slot.seq.0 != InstSlab::EMPTY {
                let rec = window.rec(slot.seq);
                slot.op_class = rec.op.class();
                slot.has_dst = rec.dst.is_some();
            }
        }
    }
}

/// The scheduler's ready set: a sorted `Vec` standing in for the
/// reference engine's `BTreeSet<u64>`, in SoA form — sequence numbers in
/// one array, each entry's [`OpClass`] (captured at insert) in a
/// parallel one.
///
/// Issue selection scans oldest-first; the set rarely holds more than a
/// few dozen entries, so binary-search-plus-memmove beats tree
/// rebalancing and keeps iteration a contiguous slice scan. Caching the
/// class means the per-cycle issue scan indexes two small dense arrays
/// instead of loading a 72-byte trace record per entry; the class is
/// stable across squash re-fetch (the same sequence number replays the
/// same golden record), so the cache can never go stale.
#[derive(Default)]
pub(crate) struct ReadySet {
    seqs: Vec<u64>,
    classes: Vec<OpClass>,
}

impl ReadySet {
    #[inline]
    pub(crate) fn insert(&mut self, seq: u64, class: OpClass) {
        if let Err(pos) = self.seqs.binary_search(&seq) {
            self.seqs.insert(pos, seq);
            self.classes.insert(pos, class);
        }
    }

    #[cfg(test)]
    pub(crate) fn remove(&mut self, seq: u64) {
        if let Ok(pos) = self.seqs.binary_search(&seq) {
            self.seqs.remove(pos);
            self.classes.remove(pos);
        }
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Ascending sequence-number order, like `BTreeSet` iteration.
    #[cfg(test)]
    pub(crate) fn iter(&self) -> std::slice::Iter<'_, u64> {
        self.seqs.iter()
    }

    pub(crate) fn retain(&mut self, mut f: impl FnMut(&u64) -> bool) {
        let mut w = 0;
        for r in 0..self.seqs.len() {
            if f(&self.seqs[r]) {
                self.seqs[w] = self.seqs[r];
                self.classes[w] = self.classes[r];
                w += 1;
            }
        }
        self.seqs.truncate(w);
        self.classes.truncate(w);
    }

    /// One-pass issue selection: visits entries oldest-first, removes
    /// those `select` claims (returns `true` for), keeps the rest —
    /// fusing the reference engine's scan-then-remove into a single
    /// compaction.
    pub(crate) fn take_selected(&mut self, mut select: impl FnMut(u64, OpClass) -> bool) {
        let mut w = 0;
        for r in 0..self.seqs.len() {
            let (s, c) = (self.seqs[r], self.classes[r]);
            if !select(s, c) {
                self.seqs[w] = s;
                self.classes[w] = c;
                w += 1;
            }
        }
        self.seqs.truncate(w);
        self.classes.truncate(w);
    }

    pub(crate) fn clear(&mut self) {
        self.seqs.clear();
        self.classes.clear();
    }

    /// Recomputes the cached classes from the record window (used after
    /// checkpoint restore, where only the sequence numbers are
    /// serialised — the classes are derived state).
    pub(crate) fn rebuild_classes(&mut self, window: &crate::pipeline::window::RecordWindow) {
        self.classes = self
            .seqs
            .iter()
            .map(|&s| window.rec(Seq(s)).op.class())
            .collect();
    }
}

/// Waiter lists in a ring keyed by `key % capacity` — the event engine's
/// replacement for `HashMap<u64, Vec<u64>>` wake tables.
///
/// A slot is occupied while its list is non-empty; its `Vec` is never
/// dropped, so steady-state pushes are allocation-free. The windowing
/// argument that makes the ring sound: keys are either in-flight sequence
/// numbers (producers with a pending wakeup broadcast) or in-flight store
/// SSNs (stores with registered dependents), both of which are removed —
/// by the broadcast, the store's execution, or its speculative
/// `StoreWake` — before the key space can wrap back onto the slot. A
/// debug assertion checks for collisions on every push.
pub(crate) struct WaiterRing {
    /// Capacity mask (power-of-two ring).
    mask: u64,
    keys: Vec<u64>,
    lists: Vec<Vec<u64>>,
    /// Total waiters across all slots (cheap emptiness check).
    len: usize,
}

impl WaiterRing {
    pub(crate) fn new(cap: usize) -> WaiterRing {
        let cap = cap.next_power_of_two();
        WaiterRing {
            mask: cap as u64 - 1,
            keys: vec![0; cap],
            lists: vec![Vec::new(); cap],
            len: 0,
        }
    }

    /// Whether any waiter is registered under any key.
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn idx(&self, key: u64) -> usize {
        (key & self.mask) as usize
    }

    /// Appends `waiter` to `key`'s list.
    ///
    /// # Panics
    ///
    /// Panics if a *different* live key already occupies `key`'s slot.
    /// The engine's windowing invariants make this unreachable for its
    /// own keys; the one externally influenced key space is a custom
    /// [`ForwardingPolicy`](crate::ForwardingPolicy) returning a
    /// commit-gate SSN more than a ring capacity ahead of the commit
    /// point — better a loud panic (with the reference engine as the
    /// workaround) than a silently lost wakeup. The check is a compare
    /// the hot path performs anyway.
    #[inline]
    pub(crate) fn push(&mut self, key: u64, waiter: u64) {
        let i = self.idx(key);
        if self.lists[i].is_empty() {
            self.keys[i] = key;
        } else {
            assert_eq!(
                self.keys[i], key,
                "waiter ring slot collision: two live keys share a slot                  (a policy scheduled a wake implausibly far ahead; run                  this design under Engine::Reference)"
            );
        }
        self.lists[i].push(waiter);
        self.len += 1;
    }

    /// Whether `key` has any registered waiters.
    #[inline]
    pub(crate) fn contains(&self, key: u64) -> bool {
        let i = self.idx(key);
        !self.lists[i].is_empty() && self.keys[i] == key
    }

    /// Moves `key`'s waiters into `out` (the slot's allocation is kept).
    #[inline]
    pub(crate) fn remove_into(&mut self, key: u64, out: &mut Vec<u64>) {
        let i = self.idx(key);
        if !self.lists[i].is_empty() && self.keys[i] == key {
            self.len -= self.lists[i].len();
            out.append(&mut self.lists[i]);
        }
    }

    /// Empties every slot (full pipeline flush), keeping allocations.
    pub(crate) fn clear_all(&mut self) {
        for l in &mut self.lists {
            l.clear();
        }
        self.len = 0;
    }
}

impl sqip_snapshot::Snapshot for InstSlab {
    fn save(&self, w: &mut sqip_snapshot::SnapWriter) -> Result<(), sqip_snapshot::SnapError> {
        self.slots.save(w)
    }
    fn load(r: &mut sqip_snapshot::SnapReader) -> Result<InstSlab, sqip_snapshot::SnapError> {
        let slots = Vec::<DynInst>::load(r)?;
        if !slots.len().is_power_of_two() {
            return Err(sqip_snapshot::SnapError::Corrupt(format!(
                "instruction slab of {} slots (want a power of two)",
                slots.len()
            )));
        }
        Ok(InstSlab { slots })
    }
}

impl sqip_snapshot::Snapshot for ReadySet {
    fn save(&self, w: &mut sqip_snapshot::SnapWriter) -> Result<(), sqip_snapshot::SnapError> {
        self.seqs.save(w)
    }
    fn load(r: &mut sqip_snapshot::SnapReader) -> Result<ReadySet, sqip_snapshot::SnapError> {
        let seqs = Vec::<u64>::load(r)?;
        if !seqs.windows(2).all(|p| p[0] < p[1]) {
            return Err(sqip_snapshot::SnapError::Corrupt(
                "ready set is not sorted and deduplicated".into(),
            ));
        }
        // Placeholder classes: derived state, recomputed by the engine's
        // `rebuild_classes` once the record window is restored.
        let classes = vec![OpClass::None; seqs.len()];
        Ok(ReadySet { seqs, classes })
    }
}

impl sqip_snapshot::Snapshot for WaiterRing {
    fn save(&self, w: &mut sqip_snapshot::SnapWriter) -> Result<(), sqip_snapshot::SnapError> {
        self.mask.save(w)?;
        self.keys.save(w)?;
        self.lists.save(w)?;
        self.len.save(w)
    }
    fn load(r: &mut sqip_snapshot::SnapReader) -> Result<WaiterRing, sqip_snapshot::SnapError> {
        let mask = u64::load(r)?;
        let keys = Vec::<u64>::load(r)?;
        let lists = Vec::<Vec<u64>>::load(r)?;
        let len = usize::load(r)?;
        let cap = mask.wrapping_add(1);
        let waiters: usize = lists.iter().map(Vec::len).sum();
        if !cap.is_power_of_two()
            || keys.len() as u64 != cap
            || lists.len() as u64 != cap
            || waiters != len
        {
            return Err(sqip_snapshot::SnapError::Corrupt(format!(
                "waiter ring: mask {mask:#x}, {} keys, {} lists, len {len} vs {waiters} waiters",
                keys.len(),
                lists.len()
            )));
        }
        Ok(WaiterRing {
            mask,
            keys,
            lists,
            len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inst_slab_tags_distinguish_ring_tenants() {
        let mut slab = InstSlab::new(4, 1);
        let cap = (2 * 4 + 4 + 64u64).next_power_of_two();
        slab.insert(3, DynInst::new(Seq(3), 0, Ssn::NONE));
        assert!(slab.get(3).is_some());
        assert!(slab.get(3 + cap).is_none(), "same slot, different tenant");
        slab.remove(3 + cap); // no-op: tag mismatch
        assert!(slab.get(3).is_some());
        slab.remove(3);
        assert!(slab.get(3).is_none());
    }

    #[test]
    fn ready_set_is_ordered_and_dedup() {
        let mut r = ReadySet::default();
        for s in [9, 3, 7, 3] {
            r.insert(s, OpClass::IntAlu);
        }
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![3, 7, 9]);
        r.remove(7);
        r.retain(|&s| s < 9);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn waiter_ring_drains_into_scratch_and_keeps_capacity() {
        let mut w = WaiterRing::new(8);
        w.push(5, 100);
        w.push(5, 101);
        assert!(w.contains(5));
        assert!(!w.contains(13), "slot shared, key differs");
        let mut out = Vec::new();
        w.remove_into(5, &mut out);
        assert_eq!(out, vec![100, 101]);
        assert!(!w.contains(5));
        // The freed slot is immediately reusable by the wrapped key.
        w.push(13, 7);
        assert!(w.contains(13));
    }
}
