//! Execution and the load/store unit: the policy's store-queue probe
//! touch-point (associative search vs indexed read), store execution and
//! the LQ-CAM ordering check.

use sqip_isa::{Op, OpClass, TraceRecord};
use sqip_types::Seq;

use crate::config::OrderingMode;
use crate::dyninst::{InstState, Operand};
use crate::pipeline::event::{EventCore, WakeRing};
use crate::pipeline::EvKind;
use crate::policy::SqProbe;

impl EventCore<'_> {
    pub(crate) fn do_execute(&mut self, seq: Seq) {
        // Non-memory instructions need only the op and immediate; loads,
        // stores and branches take the full record copy in their arms.
        let (op, imm) = {
            let r = self.rec(seq);
            (r.op, r.imm)
        };

        // One slab lookup serves both the replay check and operand reads.
        let srcs = self
            .insts
            .get(seq.0)
            .expect("executing inst in flight")
            .srcs;

        // Selective replay: operands whose producers are not actually ready
        // (scheduler latency mis-speculation) force a replay.
        let mut unready = [0u64; sqip_isa::MAX_SRCS];
        let mut n_unready = 0;
        for src in srcs {
            if let Operand::InFlight(p) = src {
                if self.vals.value_ready(p.0) > self.cycle {
                    unready[n_unready] = p.0;
                    n_unready += 1;
                }
            }
        }
        if n_unready > 0 {
            self.replay(seq, &unready[..n_unready]);
            return;
        }

        let get = |o: Operand| match o {
            Operand::None => 0,
            Operand::Value(v) => v,
            Operand::InFlight(p) => self.vals.spec_value(p.0),
        };
        let (s1, s2) = (get(srcs[0]), get(srcs[1]));
        match op.class() {
            OpClass::Load => {
                let rec = *self.rec(seq);
                self.execute_load(seq, &rec);
            }
            OpClass::Store => {
                let rec = *self.rec(seq);
                self.execute_store(seq, &rec, s2);
            }
            OpClass::Branch => {
                let rec = *self.rec(seq);
                self.execute_branch(seq, &rec);
            }
            class => {
                let value = op.eval(s1, s2, imm);
                let latency = self.latency_for(class, false);
                self.complete(seq, value, latency);
            }
        }
    }

    /// Finishes execution: value known, completion scheduled.
    pub(crate) fn complete(&mut self, seq: Seq, value: u64, latency: u64) {
        let ready_at = self.cycle + latency;
        self.vals.set_spec_value(seq.0, value);
        self.vals.set_value_ready(seq.0, ready_at);
        let post = self.cfg.post_exec_depth;
        let inc = {
            let inst = self
                .insts
                .get_mut(seq.0)
                .expect("completing inst in flight");
            inst.state = InstState::Done;
            inst.value = value;
            inst.complete_cycle = ready_at;
            inst.commit_eligible = ready_at + post;
            inst.incarnation
        };
        // Consumers that replayed while this instruction was mid-flight
        // (its issue-time broadcast already fired) re-registered on the
        // wait list; a successful execution is the last broadcast they can
        // get. Time it so their execute lines up with value readiness.
        if self.wake_on_value.contains(seq.0) {
            let at = ready_at
                .saturating_sub(self.cfg.issue_to_exec)
                .max(self.cycle + 1);
            self.wheel
                .schedule(self.cycle, at, EvKind::Broadcast, seq.0, inc);
        }
    }

    fn execute_store(&mut self, seq: Seq, rec: &TraceRecord, data_operand: u64) {
        let span = rec.mem_addr().span(rec.size);
        let data = rec.size.truncate(data_operand);
        let ssn = self
            .insts
            .get(seq.0)
            .expect("executing store in flight")
            .my_ssn;
        self.sq.write(ssn, span, data);
        // Policy touch-point: store execution (LFST update under original
        // Store Sets).
        self.policy.store_executed(rec.pc, ssn);
        if self.cfg.ordering == OrderingMode::LqCam {
            // Conventional LQ search: any younger, already-executed load
            // overlapping this store's span read a stale value. Flush from
            // the oldest such load and train the schedulers.
            let victim = self
                .lq
                .iter()
                .find(|l| l.seq > seq && l.span.is_some_and(|ls| ls.overlaps(span)) && l.svw < ssn)
                .map(|l| (l.seq, l.pc));
            if let Some((lseq, lpc)) = victim {
                self.stats.mis_forwards += 1;
                self.policy.cam_violation(lpc, rec.pc);
                self.complete(seq, data, 1);
                self.squash_from(lseq);
                return;
            }
        }
        self.complete(seq, data, 1);
        // Wake loads waiting on this store's execution (forwarding gate).
        self.wake_all(WakeRing::StoreExec, ssn.0);
        self.wake_all(WakeRing::StoreExecStrict, ssn.0);
    }

    fn execute_branch(&mut self, seq: Seq, rec: &TraceRecord) {
        // (The predictor was trained at fetch; execution only resolves the
        // pending redirect.)
        // Link value for calls; 0 for other transfers.
        let value = if rec.op == Op::Call {
            rec.pc.next().0
        } else {
            0
        };
        self.complete(seq, value, self.cfg.latencies.branch);
        if self.pending_redirect == Some(seq) {
            self.pending_redirect = None;
            self.fetch_stall_until = self.cycle + 1;
        }
    }

    fn execute_load(&mut self, seq: Seq, rec: &TraceRecord) {
        let span = rec.mem_addr().span(rec.size);
        let (prev_store_ssn, ssn_fwd, wait_exec) = {
            let inst = self.insts.get(seq.0).expect("executing load in flight");
            (inst.prev_store_ssn, inst.ssn_fwd, inst.wait_exec_ssn)
        };

        // The load was scheduled chasing a store's execution; if that store
        // replayed, the load replays too (forwarding mis-schedule).
        if let Some(gate) = wait_exec {
            if gate.is_in_flight(self.ssn_cmt) && !self.sq.is_executed(gate) {
                self.stats.replays += 1;
                let inst = self.insts.get_mut(seq.0).expect("load in flight");
                inst.state = InstState::Waiting;
                inst.gates = 1;
                inst.replays += 1;
                self.iq_count += 1;
                self.wake_on_store_exec_strict.push(gate.0, seq.0);
                return;
            }
        }

        // The data cache is accessed in parallel with the SQ in all designs.
        let cache_outcome = self.hierarchy.access(rec.mem_addr());
        let cache_value = self.commit_mem.read(rec.mem_addr(), rec.size);
        let older_unknown = self.sq.has_unexecuted_older(prev_store_ssn);

        // Policy touch-point: the SQ probe (associative search, indexed
        // read, or whatever the design does).
        let probe = self.policy.probe_sq(
            &self.sq,
            prev_store_ssn,
            ssn_fwd,
            self.ssn_cmt,
            span,
            rec.size,
        );
        let (value, latency, forwarded, svw) = match probe {
            SqProbe::Forward {
                ssn,
                value,
                latency,
            } => (value, latency, Some(ssn), ssn),
            SqProbe::Partial { ssn } => {
                // No single entry can supply the value: stall until the
                // store commits, then retry (reads the cache).
                self.stats.partial_stalls += 1;
                let inst = self.insts.get_mut(seq.0).expect("load in flight");
                inst.state = InstState::Waiting;
                inst.gates = 1;
                inst.partial_stalled = true;
                self.iq_count += 1;
                if ssn > self.ssn_cmt {
                    self.wake_on_store_commit.push(ssn.0, seq.0);
                } else {
                    // Committed in the meantime: retry immediately.
                    let inc = self.insts.get(seq.0).expect("load in flight").incarnation;
                    self.wheel
                        .schedule(self.cycle, self.cycle + 1, EvKind::Wake, seq.0, inc);
                }
                return;
            }
            SqProbe::Miss => (
                cache_value,
                cache_outcome.total_latency(),
                None,
                self.ssn_cmt,
            ),
        };

        self.lq
            .record_execution(seq, span, value, svw, older_unknown);
        {
            let inst = self.insts.get_mut(seq.0).expect("load in flight");
            inst.forwarded_from = forwarded;
            inst.svw = svw;
            inst.older_unknown = older_unknown;
        }
        self.complete(seq, value, latency);
    }
}
