//! The **event engine**: the production simulation core.
//!
//! Semantically identical to the reference stepper
//! ([`RefCore`](crate::pipeline::reference::RefCore)) — same stages, same
//! policy touch-points, bit-identical [`SimStats`](crate::SimStats),
//! pinned by differential proptests — but the loop no longer does
//! O(structures) work per simulated cycle:
//!
//! * in-flight instructions live in a ring-indexed [`InstSlab`] instead
//!   of a `HashMap` (no hashing on the hot path);
//! * wake/waiter lists live in [`WaiterRing`]s whose slot `Vec`s are
//!   recycled (free-list-backed, allocation-free in steady state);
//! * wakeups, latencies and replays sit in an [`EventWheel`]
//!   (O(1) schedule, bucket drain instead of heap sift);
//! * the common case never touches the wheel: issue schedules **zero**
//!   wheel events per instruction — executions and value broadcasts
//!   ride 64-cycle [`NearRing`]s and speculative store wakes a
//!   monotonic FIFO, drained around the wheel each cycle in an order
//!   proven to commute with the wheel's (see
//!   [`EventCore::process_events`]);
//! * the ready set is split into per-port lanes ([`ReadyLanes`]) popped
//!   oldest-first under the port budgets — no full-set selection scan;
//! * **idle cycles are skipped**: after each active cycle the engine
//!   computes the next cycle at which *any* stage could do work (next
//!   wheel event, commit eligibility of the ROB head, rename readiness,
//!   fetch stall end) and jumps straight to it — the invariant being
//!   that running the stages on a skipped cycle would have been a no-op,
//!   so the jump is unobservable in the statistics;
//! * derived statistics (cycle count, cache counters) are flushed once
//!   per *active* cycle rather than per simulated cycle.

mod structs;
pub(crate) mod wheel;

use sqip_isa::{IsaError, TraceRecord, TraceSource};
use sqip_mem::{Hierarchy, MemImage};
use sqip_predictors::BranchPredictor;
use sqip_queues::{LoadQueue, StoreQueue, Window};
use sqip_types::{Addr, DataSize, Seq, Ssn};

use crate::config::SimConfig;
use crate::error::SimError;
use crate::oracle::OracleBuilder;
use crate::pipeline::window::{RecordWindow, SeqRing};
use crate::pipeline::{StepOutcome, WATCHDOG_CYCLES};
use crate::policy::{DesignCaps, PolicyHost};
use crate::shared::Analysis;
use crate::stats::SimStats;

pub(crate) use structs::{fits_near, InstSlab, NearRing, ReadyLanes, WaiterRing};
pub use wheel::{EventWheel, WheelEvent};

/// Scheduling-cost counters for the event engine, read through
/// [`Processor::sched_counters`](crate::Processor::sched_counters).
///
/// These are diagnostic state: absent from [`SimStats`], absent from
/// snapshots (a restore resets them), and therefore incapable of
/// perturbing bit-identity. The perf bin divides them by the committed
/// instruction count to report hardware-portable scheduling costs.
///
/// PR 9's engine routed every broadcast and speculative store wake
/// through the wheel, so its wheel-ops figure for the same run equals
/// `wheel_ops + near_ops` here — that sum is the honest baseline when
/// comparing against the fused scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedCounters {
    /// Events scheduled on the event wheel.
    pub wheel_ops: u64,
    /// Executions, broadcasts and store wakes scheduled on the near
    /// structures (rings / FIFO) instead of the wheel.
    pub near_ops: u64,
    /// Value broadcasts delivered (each fans out to its waiter list).
    pub broadcasts: u64,
    /// Ready-lane tail peeks during issue selection.
    pub ready_touches: u64,
}

mod commit;
mod frontend;
mod lsq;
mod schedule;

/// Why the rename stage stopped in the last active cycle — the engine's
/// skip-ahead oracle for the rename/fetch front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RenameStop {
    /// Nothing fetched ahead of rename.
    FrontEmpty,
    /// The front instruction becomes rename-eligible at this cycle.
    NotReady(u64),
    /// Blocked on a structural resource (ROB/IQ/LQ/SQ space, SSN drain)
    /// that only a commit, an issue or a flush can free — all of which
    /// have their own skip-ahead candidates.
    Structural,
    /// Consumed its full width (or ran before ever being invoked); more
    /// work is possible on the very next cycle.
    Width,
}

/// Records pulled from the trace source per block fetch: one virtual
/// source call (and one tee/oracle-ring crossing behind it) amortised
/// over up to this many records. Sized to the record window's slack
/// past the structural pipeline bound, so pulling a full block ahead of
/// the fetch frontier can never overflow the window.
pub const FETCH_BLOCK: usize = 64;

/// The event-driven core. See the module docs; the public entry point is
/// [`Processor`](crate::Processor), which dispatches between this and the
/// reference engine on [`SimConfig::engine`].
pub(crate) struct EventCore<'t> {
    pub(crate) cfg: SimConfig,
    /// The pull-based record stream driving the run.
    source: Box<dyn TraceSource + 't>,
    /// Records between the commit point and the fetch frontier, with
    /// their oracle info (computed once at ingest).
    pub(crate) window: RecordWindow,
    /// The dependence analysis feeding `window`: an owned incremental
    /// oracle, or a shared sweep pass's feed.
    analysis: Analysis,
    /// Exact total record count: the source's up-front hint, or measured
    /// at exhaustion.
    total_records: Option<u64>,
    /// Whether the source has returned `None`.
    source_done: bool,
    /// A source failure, held until the next step surfaces it.
    source_error: Option<IsaError>,
    /// Scratch for block fetches (transient: dead between
    /// [`EventCore::fetch_record`] calls, so not checkpointed).
    fetch_buf: Vec<TraceRecord>,

    pub(crate) cycle: u64,
    pub(crate) incarnation: u64,
    pub(crate) last_commit_cycle: u64,

    // ---- front end ----
    pub(crate) fetch_idx: usize,
    pub(crate) fetch_stall_until: u64,
    /// Mispredicted branch whose resolution fetch is waiting for.
    pub(crate) pending_redirect: Option<Seq>,
    /// Fetched instructions awaiting rename: (seq, rename-eligible cycle,
    /// fetch-time path history snapshot).
    pub(crate) front_q: std::collections::VecDeque<(Seq, u64, u64)>,
    /// Branch-outcome path history at fetch (for path-qualified FSP).
    pub(crate) path_history: u64,
    /// Skip-ahead record of why rename stopped last cycle.
    pub(crate) rename_stop: RenameStop,

    // ---- rename ----
    pub(crate) ssn_ren: Ssn,
    pub(crate) rename_map: [Option<Seq>; sqip_isa::NUM_REGS],
    pub(crate) committed_regs: [u64; sqip_isa::NUM_REGS],
    /// Waiting for the ROB to drain before wrapping the SSN space.
    pub(crate) draining_for_wrap: bool,

    // ---- backend ----
    pub(crate) rob: Window<Seq>,
    pub(crate) insts: InstSlab,
    pub(crate) iq_count: usize,
    pub(crate) ready_q: ReadyLanes,
    pub(crate) wheel: EventWheel,
    /// Short-horizon value broadcasts (the issue-time common case),
    /// fused off the wheel. Same liveness contract as a wheel
    /// `Broadcast`: survives flushes, fires even for squashed producers
    /// (the drain is a no-op once the waiter ring was cleared).
    pub(crate) near: NearRing<u64>,
    /// Pending executions `(seq, incarnation)`, fused off the wheel —
    /// always due `issue_to_exec` cycles out, well inside the ring span
    /// (`issue_to_exec = 0` requests the *current* cycle and takes the
    /// wheel's past-event clamping path instead). Survives flushes like
    /// a wheel `Exec`; the dispatcher's incarnation check drops stale
    /// entries.
    pub(crate) near_execs: NearRing<(u64, u64)>,
    /// Speculative store wakes `(due cycle, store SSN)`, fused off the
    /// wheel. Pushed only by the issue stage at `cycle + 1`, with
    /// same-cycle stores issuing oldest-first, so the queue is sorted by
    /// `(due, ssn)` — exactly the wheel's `StoreWake` drain order.
    pub(crate) store_wakes: std::collections::VecDeque<(u64, u64)>,
    /// Recycled buffer for draining a near-broadcast slot.
    near_scratch: Vec<u64>,
    /// Recycled buffer for draining a near-exec slot.
    near_exec_scratch: Vec<(u64, u64)>,
    /// Producer seq -> consumers waiting for its wakeup broadcast.
    pub(crate) wake_on_value: WaiterRing,
    /// Store SSN -> loads waiting for it to execute (forwarding
    /// dependence). Drained speculatively when the store issues
    /// (StoreWake).
    pub(crate) wake_on_store_exec: WaiterRing,
    /// Store SSN -> loads that already replayed once chasing this store;
    /// drained only when the store actually executes (no more speculative
    /// wakes, breaking replay cascades).
    pub(crate) wake_on_store_exec_strict: WaiterRing,
    /// Store SSN -> loads waiting for it to commit (delay / partial
    /// hit). A ring suffices where the reference engine uses an ordered
    /// map: SSNs commit densely and in order, so a committing store can
    /// only ever release waiters registered under its *own* SSN (any
    /// smaller key was drained at that store's earlier commit).
    pub(crate) wake_on_store_commit: WaiterRing,
    /// Recycled buffer for draining waiter lists.
    wake_scratch: Vec<u64>,
    /// Recycled buffer for issue selection (no per-cycle allocation).
    pub(crate) issue_scratch: Vec<u64>,

    // ---- scheduling-cost instrumentation (diagnostic: not serialised,
    // not in SimStats; see SchedCounters) ----
    /// Executions + broadcasts + store wakes scheduled off-wheel.
    pub(crate) near_ops: u64,
    /// Value broadcasts delivered.
    pub(crate) broadcasts: u64,
    /// Ready-lane tail peeks during issue selection.
    pub(crate) ready_touches: u64,
    /// Test knob: route executions, broadcasts and store wakes through
    /// the wheel (the PR 9 scheduling shape) instead of the near
    /// structures. The differential proptests pin both shapes
    /// bit-identical. Not serialised; defaults to off.
    pub(crate) wheel_only_broadcasts: bool,

    // ---- dense per-seq value state (survives commit; slots reset as
    // their sequence numbers re-enter rename) ----
    pub(crate) vals: SeqRing,

    // ---- memory system ----
    pub(crate) sq: StoreQueue,
    pub(crate) lq: LoadQueue,
    pub(crate) hierarchy: Hierarchy,
    pub(crate) commit_mem: MemImage,
    pub(crate) ssn_cmt: Ssn,

    // ---- design policy + design-independent branch prediction ----
    /// The store-queue design under test: predictor state + decisions at
    /// the five pipeline touch-points (statically dispatched for builtin
    /// designs).
    pub(crate) policy: PolicyHost,
    /// The policy's capabilities, cached at construction for hot paths.
    pub(crate) caps: DesignCaps,
    pub(crate) bp: BranchPredictor,

    pub(crate) stats: SimStats,
}

impl<'t> EventCore<'t> {
    pub(crate) fn new_unchecked(cfg: SimConfig, source: impl TraceSource + 't) -> EventCore<'t> {
        EventCore::with_analysis(cfg, source, Analysis::Own(OracleBuilder::new()))
    }

    pub(crate) fn with_analysis(
        cfg: SimConfig,
        source: impl TraceSource + 't,
        analysis: Analysis,
    ) -> EventCore<'t> {
        let policy = PolicyHost::instantiate(&cfg);
        let caps = policy.caps();
        EventCore {
            total_records: source.len_hint(),
            source: Box::new(source),
            window: RecordWindow::new(cfg.rob_size, cfg.fetch_width),
            analysis,
            source_done: false,
            source_error: None,
            fetch_buf: vec![TraceRecord::default(); FETCH_BLOCK],
            cycle: 0,
            incarnation: 0,
            last_commit_cycle: 0,
            fetch_idx: 0,
            fetch_stall_until: 0,
            pending_redirect: None,
            front_q: std::collections::VecDeque::new(),
            path_history: 0,
            rename_stop: RenameStop::Width,
            ssn_ren: Ssn::NONE,
            rename_map: [None; sqip_isa::NUM_REGS],
            committed_regs: [0; sqip_isa::NUM_REGS],
            draining_for_wrap: false,
            rob: Window::new(cfg.rob_size),
            insts: InstSlab::new(cfg.rob_size, cfg.fetch_width),
            iq_count: 0,
            ready_q: ReadyLanes::default(),
            wheel: EventWheel::new(),
            near: NearRing::new(),
            near_execs: NearRing::new(),
            store_wakes: std::collections::VecDeque::new(),
            near_scratch: Vec::new(),
            near_exec_scratch: Vec::new(),
            wake_on_value: WaiterRing::new(2 * cfg.rob_size + 4 * cfg.fetch_width + 64),
            wake_on_store_exec: WaiterRing::new(2 * cfg.sq_size + 64),
            wake_on_store_exec_strict: WaiterRing::new(2 * cfg.sq_size + 64),
            wake_on_store_commit: WaiterRing::new(2 * cfg.sq_size + 64),
            wake_scratch: Vec::new(),
            issue_scratch: Vec::new(),
            near_ops: 0,
            broadcasts: 0,
            ready_touches: 0,
            wheel_only_broadcasts: false,
            vals: SeqRing::new(cfg.rob_size, cfg.fetch_width),
            sq: StoreQueue::new(cfg.sq_size),
            lq: LoadQueue::new(cfg.lq_size),
            hierarchy: Hierarchy::new(cfg.hierarchy),
            commit_mem: MemImage::new(),
            ssn_cmt: Ssn::NONE,
            bp: BranchPredictor::new(cfg.branch),
            policy,
            caps,
            stats: SimStats::default(),
            cfg,
        }
    }

    pub(crate) fn is_done(&self) -> bool {
        self.total_records
            .is_some_and(|total| self.stats.committed >= total)
    }

    pub(crate) fn total_records(&self) -> Option<u64> {
        self.total_records
    }

    pub(crate) fn buffered_records(&self) -> usize {
        self.window.len()
    }

    pub(crate) fn committed_reg(&self, r: sqip_isa::Reg) -> u64 {
        self.committed_regs[r.index()]
    }

    pub(crate) fn committed_mem(&self, addr: Addr, size: DataSize) -> u64 {
        self.commit_mem.read(addr, size)
    }

    /// Folds the hierarchy counters and cycle count into `stats`. Called
    /// once per *active* cycle (the skip-ahead batching of derived
    /// statistics), so the public snapshot is always consistent.
    fn sync_stats(&mut self) {
        self.stats.cycles = self.cycle;
        self.stats.l1 = self.hierarchy.l1_stats();
        self.stats.l2 = self.hierarchy.l2_stats();
        self.stats.tlb = self.hierarchy.tlb_stats();
    }

    /// Advances to the next cycle with work, capped at `limit`, and
    /// simulates it.
    ///
    /// The engine's one step = the reference engine's `1 + k` steps,
    /// where `k` is the number of provably idle cycles jumped over. The
    /// cap lets callers land exactly on observer interval boundaries or
    /// `run_until` limits; it never affects results, because a capped
    /// landing cycle is by construction idle.
    pub(crate) fn step_bounded(&mut self, limit: u64) -> Result<StepOutcome, SimError> {
        if self.is_done() {
            self.sync_stats();
            return Ok(StepOutcome::Done);
        }
        let watchdog = self.last_commit_cycle + WATCHDOG_CYCLES;
        let target = self.next_active_cycle().min(limit).min(watchdog);
        self.cycle = target.max(self.cycle + 1);

        self.commit_stage();
        self.process_events();
        self.issue_stage();
        self.rename_stage();
        self.fetch_stage();
        self.sync_stats();
        if let Some(source) = &self.source_error {
            return Err(SimError::TraceSource {
                pulled: self.window.end(),
                detail: source.to_string(),
            });
        }
        if self.is_done() {
            return Ok(StepOutcome::Done);
        }
        if self.cycle - self.last_commit_cycle >= WATCHDOG_CYCLES {
            return Err(self.deadlock_error());
        }
        Ok(StepOutcome::Running)
    }

    /// The earliest future cycle at which any stage could possibly do
    /// work, assuming no stage acts before it (self-consistent: machine
    /// state only changes inside stages).
    ///
    /// Candidates may be conservative (waking early onto a cycle where a
    /// stage then does nothing is harmless); they must never be late.
    fn next_active_cycle(&self) -> u64 {
        let floor = self.cycle + 1;
        // Issue: leftover ready instructions select again immediately.
        if !self.ready_q.is_empty() {
            return floor;
        }
        let mut next = u64::MAX;
        // Events: wakeups, latencies, execute-stage entries — on the
        // wheel or the fused near structures. All four must feed the
        // bound: skipping past a due event would deliver it late.
        if let Some(at) = self.wheel.next_at() {
            next = next.min(at.max(floor));
        }
        if let Some(at) = self.near.next_at() {
            next = next.min(at.max(floor));
        }
        if let Some(at) = self.near_execs.next_at() {
            next = next.min(at.max(floor));
        }
        if let Some(&(due, _)) = self.store_wakes.front() {
            next = next.min(due.max(floor));
        }
        // Commit: a completed ROB head commits at its eligibility cycle.
        // (A non-completed head progresses via events, covered above.)
        if let Some(&head) = self.rob.front() {
            if let Some(inst) = self.insts.get(head.0) {
                if inst.state == crate::dyninst::InstState::Done {
                    next = next.min(inst.commit_eligible.max(floor));
                }
            }
        }
        // Rename: keyed off why it stopped last cycle. Structural stalls
        // are freed only by commits/issues/flushes, which have their own
        // candidates and run before rename within a step. A `FrontEmpty`
        // stop is refreshed against the live queue, because fetch runs
        // *after* rename within a step and may have refilled it.
        match self.rename_stop {
            RenameStop::Width => next = next.min(floor),
            RenameStop::NotReady(at) => next = next.min(at.max(floor)),
            RenameStop::FrontEmpty => {
                if let Some(&(_, ready_at, _)) = self.front_q.front() {
                    next = next.min(ready_at.max(floor));
                }
            }
            RenameStop::Structural => {}
        }
        // Fetch: works every cycle it is neither stalled, redirected,
        // out of records, nor out of frontend space.
        let has_records = (self.fetch_idx as u64) < self.window.end()
            || (!self.source_done && self.source_error.is_none());
        if has_records && self.pending_redirect.is_none() && self.front_q.len() < self.front_cap() {
            next = next.min(self.fetch_stall_until.max(floor));
        }
        next
    }

    /// Frontend queue capacity. One definition serves both the fetch
    /// stage and the skip-ahead fetch predicate — they must agree, or
    /// skip-ahead would jump over cycles where fetch has work.
    #[inline]
    pub(crate) fn front_cap(&self) -> usize {
        self.cfg.fetch_width * 4
    }

    fn deadlock_error(&self) -> SimError {
        let head = self.rob.front().map(|&s| {
            let i = self.insts.get(s.0).expect("ROB head in flight");
            format!(
                "head {} op={} state={:?} gates={} fwd={} dly={} wait_exec={:?} prev={} ssn_cmt={}",
                s.0,
                self.rec(s).op,
                i.state,
                i.gates,
                i.ssn_fwd,
                i.ssn_dly,
                i.wait_exec_ssn,
                i.prev_store_ssn,
                self.ssn_cmt
            )
        });
        SimError::Deadlock {
            cycle: self.cycle,
            committed: self.stats.committed,
            detail: format!(
                "fetch_idx {}, rob {}, iq {}, head {:?}",
                self.fetch_idx,
                self.rob.len(),
                self.iq_count,
                head
            ),
        }
    }

    pub(crate) fn rec(&self, seq: Seq) -> &TraceRecord {
        self.window.rec(seq)
    }

    /// Scheduling-cost counters accumulated since construction (or the
    /// last snapshot restore).
    pub(crate) fn sched_counters(&self) -> SchedCounters {
        SchedCounters {
            wheel_ops: self.wheel.ops(),
            near_ops: self.near_ops,
            broadcasts: self.broadcasts,
            ready_touches: self.ready_touches,
        }
    }

    /// Drains `ring`'s waiters for `key` and wakes each one. The scratch
    /// buffer is recycled across calls, so the drain is allocation-free.
    pub(crate) fn wake_all(&mut self, ring: WakeRing, key: u64) {
        let table = match ring {
            WakeRing::Value => &mut self.wake_on_value,
            WakeRing::StoreExec => &mut self.wake_on_store_exec,
            WakeRing::StoreExecStrict => &mut self.wake_on_store_exec_strict,
        };
        if !table.contains(key) {
            return; // nobody registered — the common case
        }
        let mut scratch = std::mem::take(&mut self.wake_scratch);
        debug_assert!(scratch.is_empty());
        match ring {
            WakeRing::Value => self.wake_on_value.remove_into(key, &mut scratch),
            WakeRing::StoreExec => self.wake_on_store_exec.remove_into(key, &mut scratch),
            WakeRing::StoreExecStrict => self
                .wake_on_store_exec_strict
                .remove_into(key, &mut scratch),
        }
        for w in scratch.drain(..) {
            self.wake_one(w, false);
        }
        self.wake_scratch = scratch;
    }

    /// Ensures the record at `fetch_idx` is in the window, pulling from
    /// the source as needed. Returns `None` when the stream is exhausted
    /// (or has failed — the error surfaces from the step); the caller
    /// reads the record through the window, copy-free.
    pub(crate) fn fetch_record(&mut self) -> Option<()> {
        let seq = self.fetch_idx as u64;
        while seq >= self.window.end() {
            if self.source_done || self.source_error.is_some() {
                return None;
            }
            // Pull a whole block ahead of the frontier: one virtual source
            // call — and one tee/oracle-feed ring crossing behind it —
            // amortised over up to FETCH_BLOCK records. Capped to the
            // window's free slots so the pull-ahead can never overflow it;
            // free is nonzero here because the frontier record itself
            // fits within the structural bound.
            let want = self.window.free().min(FETCH_BLOCK);
            debug_assert!(want > 0, "window full at the fetch frontier");
            match self.source.next_block(&mut self.fetch_buf[..want]) {
                Ok(0) => {
                    self.source_done = true;
                    self.total_records = Some(self.window.end());
                    return None;
                }
                Ok(n) => {
                    for i in 0..n {
                        let mut rec = self.fetch_buf[i];
                        // Consumers own the numbering: records are
                        // sequential in pull order whatever the source
                        // put in `seq`.
                        rec.seq = Seq(self.window.end());
                        let fwd = self.analysis.fwd_for(&rec);
                        self.window.push(rec, fwd);
                    }
                }
                Err(e) => {
                    self.source_error = Some(e);
                    return None;
                }
            }
        }
        Some(())
    }
}

/// Which waiter ring [`EventCore::wake_all`] drains.
#[derive(Debug, Clone, Copy)]
pub(crate) enum WakeRing {
    Value,
    StoreExec,
    StoreExecStrict,
}

impl EventCore<'_> {
    /// Records ever pulled from the trace source (the resume position).
    pub(crate) fn records_pulled(&self) -> u64 {
        self.window.end()
    }

    /// Serialises the engine state (everything except `cfg` and the
    /// source, which the checkpoint container carries separately).
    pub(crate) fn save_state(
        &self,
        w: &mut sqip_snapshot::SnapWriter,
    ) -> Result<(), sqip_snapshot::SnapError> {
        use sqip_snapshot::Snapshot as _;
        if let Some(e) = &self.source_error {
            return Err(sqip_snapshot::SnapError::Unsupported(format!(
                "cannot checkpoint with a pending trace-source error: {e}"
            )));
        }
        let Analysis::Own(oracle) = &self.analysis else {
            return Err(sqip_snapshot::SnapError::Unsupported(
                "shared-analysis processors cannot be checkpointed (the \
                 oracle feed belongs to the sweep pass)"
                    .into(),
            ));
        };
        self.window.save(w)?;
        oracle.save(w)?;
        self.total_records.save(w)?;
        self.source_done.save(w)?;
        self.cycle.save(w)?;
        self.incarnation.save(w)?;
        self.last_commit_cycle.save(w)?;
        self.fetch_idx.save(w)?;
        self.fetch_stall_until.save(w)?;
        self.pending_redirect.save(w)?;
        self.front_q.save(w)?;
        self.path_history.save(w)?;
        self.rename_stop.save(w)?;
        self.ssn_ren.save(w)?;
        self.rename_map.save(w)?;
        self.committed_regs.save(w)?;
        self.draining_for_wrap.save(w)?;
        self.rob.save(w)?;
        self.insts.save(w)?;
        self.iq_count.save(w)?;
        self.ready_q.save(w)?;
        self.wheel.save(w)?;
        self.near.save(w)?;
        self.near_execs.save(w)?;
        self.store_wakes.save(w)?;
        self.wake_on_value.save(w)?;
        self.wake_on_store_exec.save(w)?;
        self.wake_on_store_exec_strict.save(w)?;
        self.wake_on_store_commit.save(w)?;
        self.vals.save(w)?;
        self.sq.save(w)?;
        self.lq.save(w)?;
        self.hierarchy.save(w)?;
        self.commit_mem.save(w)?;
        self.ssn_cmt.save(w)?;
        self.policy.save_snapshot(w)?;
        self.bp.save(w)?;
        self.stats.save(w)
    }

    /// Overwrites a freshly constructed engine with checkpointed state
    /// (the mirror of [`EventCore::save_state`]).
    pub(crate) fn load_state(
        &mut self,
        r: &mut sqip_snapshot::SnapReader,
    ) -> Result<(), sqip_snapshot::SnapError> {
        use sqip_snapshot::Snapshot as _;
        self.window = RecordWindow::load(r)?;
        self.analysis = Analysis::Own(OracleBuilder::load(r)?);
        self.total_records = Option::<u64>::load(r)?;
        self.source_done = bool::load(r)?;
        self.cycle = u64::load(r)?;
        self.incarnation = u64::load(r)?;
        self.last_commit_cycle = u64::load(r)?;
        self.fetch_idx = usize::load(r)?;
        self.fetch_stall_until = u64::load(r)?;
        self.pending_redirect = Option::<Seq>::load(r)?;
        self.front_q = std::collections::VecDeque::<(Seq, u64, u64)>::load(r)?;
        self.path_history = u64::load(r)?;
        self.rename_stop = RenameStop::load(r)?;
        self.ssn_ren = Ssn::load(r)?;
        self.rename_map = <[Option<Seq>; sqip_isa::NUM_REGS]>::load(r)?;
        self.committed_regs = <[u64; sqip_isa::NUM_REGS]>::load(r)?;
        self.draining_for_wrap = bool::load(r)?;
        self.rob = Window::<Seq>::load(r)?;
        self.insts = InstSlab::load(r)?;
        self.insts.rebuild_record_cache(&self.window);
        self.iq_count = usize::load(r)?;
        self.ready_q = ReadyLanes::load(r)?;
        self.ready_q.rebuild_classes(&self.window);
        self.wheel = EventWheel::load(r)?;
        self.near = NearRing::<u64>::load(r)?;
        self.near_execs = NearRing::<(u64, u64)>::load(r)?;
        self.store_wakes = std::collections::VecDeque::<(u64, u64)>::load(r)?;
        self.wake_on_value = WaiterRing::load(r)?;
        self.wake_on_store_exec = WaiterRing::load(r)?;
        self.wake_on_store_exec_strict = WaiterRing::load(r)?;
        self.wake_on_store_commit = WaiterRing::load(r)?;
        self.vals = SeqRing::load(r)?;
        self.sq = StoreQueue::load(r)?;
        self.lq = LoadQueue::load(r)?;
        self.hierarchy = Hierarchy::load(r)?;
        self.commit_mem = MemImage::load(r)?;
        self.ssn_cmt = Ssn::load(r)?;
        self.policy = PolicyHost::load_snapshot(r, &self.cfg)?;
        self.caps = self.policy.caps();
        self.bp = BranchPredictor::load(r)?;
        self.stats = SimStats::load(r)?;
        self.wake_scratch.clear();
        self.issue_scratch.clear();
        self.near_scratch.clear();
        self.near_exec_scratch.clear();
        // Diagnostic counters restart at zero, like the wheel's.
        self.near_ops = 0;
        self.broadcasts = 0;
        self.ready_touches = 0;
        Ok(())
    }
}

impl sqip_snapshot::Snapshot for RenameStop {
    fn save(&self, w: &mut sqip_snapshot::SnapWriter) -> Result<(), sqip_snapshot::SnapError> {
        match self {
            RenameStop::FrontEmpty => w.put_u8(0),
            RenameStop::NotReady(cy) => {
                w.put_u8(1);
                w.put_u64(*cy);
            }
            RenameStop::Structural => w.put_u8(2),
            RenameStop::Width => w.put_u8(3),
        }
        Ok(())
    }
    fn load(r: &mut sqip_snapshot::SnapReader) -> Result<RenameStop, sqip_snapshot::SnapError> {
        match r.get_u8()? {
            0 => Ok(RenameStop::FrontEmpty),
            1 => Ok(RenameStop::NotReady(r.get_u64()?)),
            2 => Ok(RenameStop::Structural),
            3 => Ok(RenameStop::Width),
            t => Err(sqip_snapshot::SnapError::Corrupt(format!(
                "rename-stop tag {t}"
            ))),
        }
    }
}
