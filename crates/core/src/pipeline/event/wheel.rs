//! The event wheel: O(1) scheduling for wakeups, latencies and replays.
//!
//! The reference engine keeps its pending events in a `BinaryHeap`; every
//! push and pop pays a logarithmic sift over tuples. The event engine
//! instead slots events into a fixed ring of per-cycle buckets (the
//! *wheel*), with a small overflow heap for the rare event scheduled
//! further ahead than the wheel span (long memory latencies). Scheduling
//! is an index and a push; draining a cycle is taking its bucket.
//!
//! Two properties keep the engine bit-identical to the reference heap:
//!
//! * **Order.** Within a cycle, the heap yields events sorted by
//!   `(cycle, kind, seq, incarnation)`. A bucket preserves insertion
//!   order instead, so it is sorted by the same key before draining.
//! * **The past.** The pipeline may compute a wakeup time at or before
//!   the current cycle (e.g. a zero-latency configuration). The heap
//!   fires such an event on the *next* `process_events` pass, *before*
//!   events scheduled for that cycle; the wheel therefore clamps the
//!   event's bucket to `now + 1` but keeps the original cycle as its
//!   sort key, reproducing the heap's order exactly.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::pipeline::EvKind;

/// Cycles covered by the ring of buckets; events further out wait in the
/// overflow heap and migrate in as the wheel turns.
const SPAN: u64 = 512;

/// Words in the bucket-occupancy bitmap (one bit per bucket).
const OCC_WORDS: usize = SPAN as usize / 64;

/// One scheduled event: what kind, for which sequence number (or store
/// SSN, for [`EvKind::StoreWake`]), and under which squash incarnation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct WheelEvent {
    /// The cycle the event was *requested* for (may be clamped into the
    /// future for delivery; see the module docs).
    pub at: u64,
    /// Event kind; also the second-rank sort key within a cycle.
    pub kind: EvKind,
    /// Target sequence number (or store SSN for `StoreWake`).
    pub seq: u64,
    /// Squash incarnation the event was scheduled under.
    pub inc: u64,
}

/// A fixed-span timing wheel with an overflow heap, yielding events in
/// exactly the order `BinaryHeap<Reverse<(cycle, kind, seq, inc)>>`
/// would.
///
/// Used by the event engine for wakeup broadcasts, targeted re-wakes,
/// speculative store wakes and execute-stage entry. The wheel also
/// answers the engine's skip-ahead question — [`EventWheel::next_at`] is
/// the earliest cycle at which any event is due — in O(occupied span).
pub struct EventWheel {
    /// `buckets[c % SPAN]` holds the events delivered at cycle `c`, for
    /// `c` in `(drained, drained + SPAN]`.
    buckets: Vec<Vec<WheelEvent>>,
    /// Bucket-occupancy bitmap (bit `i` set iff `buckets[i]` is
    /// non-empty): turns the earliest-bucket rescan from an O(SPAN) walk
    /// over bucket headers into a handful of word tests. Derived state —
    /// rebuilt from the buckets on snapshot load, never serialised.
    occ: [u64; OCC_WORDS],
    /// Events beyond the wheel span, keyed by delivery cycle.
    far: BinaryHeap<Reverse<(u64, WheelEvent)>>,
    /// Every bucket at or before this cycle has been drained.
    drained: u64,
    /// Exact earliest non-empty bucket cycle (`u64::MAX` when the wheel
    /// ring is empty; the overflow heap is tracked separately).
    earliest: u64,
    /// Events resident in the ring.
    ring_len: usize,
    /// The bucket currently being drained, sorted descending so that
    /// [`EventWheel::pop_due`] pops ascending from the tail.
    current: Vec<WheelEvent>,
    /// Spare bucket storage, recycled to keep draining allocation-free.
    spare: Vec<WheelEvent>,
    /// Events scheduled over the wheel's lifetime — the scheduling-cost
    /// instrumentation behind the perf bin's wheel-ops/inst metric.
    /// Diagnostic state: never serialised (snapshot loads reset it), so
    /// it cannot perturb snapshot bytes or bit-identity.
    ops: u64,
}

impl EventWheel {
    /// An empty wheel starting at cycle 0.
    #[must_use]
    pub fn new() -> EventWheel {
        EventWheel {
            buckets: (0..SPAN).map(|_| Vec::new()).collect(),
            occ: [0; OCC_WORDS],
            far: BinaryHeap::new(),
            drained: 0,
            earliest: u64::MAX,
            ring_len: 0,
            current: Vec::new(),
            spare: Vec::new(),
            ops: 0,
        }
    }

    /// Schedules `kind` for `seq`/`inc` at cycle `at`, as seen from the
    /// current cycle `now`.
    ///
    /// An event in the past (`at <= now`) is delivered on the next
    /// [`EventWheel::pop_due`] pass — clamped to bucket `now + 1` but
    /// ordered by its requested cycle, exactly like the reference heap.
    pub fn schedule(&mut self, now: u64, at: u64, kind: EvKind, seq: u64, inc: u64) {
        self.ops += 1;
        let ev = WheelEvent { at, kind, seq, inc };
        let place = at.max(now + 1);
        debug_assert!(place > self.drained, "scheduling into a drained bucket");
        if place > self.drained + SPAN {
            self.far.push(Reverse((place, ev)));
        } else {
            let idx = (place % SPAN) as usize;
            self.buckets[idx].push(ev);
            self.occ[idx / 64] |= 1 << (idx % 64);
            self.ring_len += 1;
            self.earliest = self.earliest.min(place);
        }
    }

    /// The earliest cycle at which an event is due, if any — the
    /// skip-ahead bound.
    #[must_use]
    pub fn next_at(&self) -> Option<u64> {
        let mut next = self.earliest;
        if let Some(ev) = self.current.last() {
            next = next.min(ev.at);
        }
        if let Some(&Reverse((at, _))) = self.far.peek() {
            next = next.min(at);
        }
        (next != u64::MAX).then_some(next)
    }

    /// Pops the next event due at or before `now`, in
    /// `(cycle, kind, seq, inc)` order.
    pub fn pop_due(&mut self, now: u64) -> Option<WheelEvent> {
        self.ensure_current(now);
        self.current.pop()
    }

    /// Pops the next due event only if its *requested* cycle precedes
    /// `before`. Events requested in the past get clamped into a later
    /// delivery pass (see the module docs) but keep their original cycle
    /// as sort key, so the reference heap fires them ahead of everything
    /// requested *for* the delivery cycle — this lets the engine drain
    /// exactly those stragglers before its off-wheel event structures.
    pub fn pop_due_before(&mut self, now: u64, before: u64) -> Option<WheelEvent> {
        self.ensure_current(now);
        if self.current.last().is_some_and(|ev| ev.at < before) {
            self.current.pop()
        } else {
            None
        }
    }

    /// Refills `current` with the earliest due bucket so its tail is the
    /// next event due at or before `now` (leaves it empty if none is).
    fn ensure_current(&mut self, now: u64) {
        loop {
            if !self.current.is_empty() {
                return;
            }
            // With an empty ring the window can fast-forward, so overflow
            // events far beyond the old window stay reachable after a
            // long skip. Forward to `now - 1`, not `now`: an event due
            // exactly at `now` must stay inside the window `(drained,
            // drained + SPAN]`, and one due at `now + SPAN` must stay
            // *outside* it — at `drained = now` the two would alias into
            // a single bucket and the later one would fire early.
            if self.ring_len == 0 {
                self.drained = self.drained.max(now.saturating_sub(1));
            }
            // Pull overflow events whose delivery cycle has entered the
            // wheel window.
            while let Some(&Reverse((at, ev))) = self.far.peek() {
                if at > self.drained + SPAN {
                    break;
                }
                self.far.pop();
                let idx = (at % SPAN) as usize;
                self.buckets[idx].push(ev);
                self.occ[idx / 64] |= 1 << (idx % 64);
                self.ring_len += 1;
                self.earliest = self.earliest.min(at);
            }
            if self.earliest > now {
                return;
            }
            // Take the earliest bucket and sort it into heap order.
            let cy = self.earliest;
            let idx = (cy % SPAN) as usize;
            std::mem::swap(&mut self.buckets[idx], &mut self.spare);
            std::mem::swap(&mut self.current, &mut self.spare);
            self.occ[idx / 64] &= !(1 << (idx % 64));
            self.ring_len -= self.current.len();
            if self.current.len() > 1 {
                self.current.sort_unstable_by(|a, b| b.cmp(a));
            }
            self.drained = cy;
            self.rescan_earliest();
        }
    }

    /// Recomputes `earliest` after its bucket was taken: a circular
    /// first-set-bit scan over the occupancy bitmap, starting at the
    /// bucket for cycle `drained + 1` — at most `OCC_WORDS + 1` word
    /// tests and one `trailing_zeros` instead of up to SPAN bucket loads.
    fn rescan_earliest(&mut self) {
        self.earliest = u64::MAX;
        if self.ring_len == 0 {
            return;
        }
        let start = ((self.drained + 1) % SPAN) as usize;
        let (w0, b0) = (start / 64, start % 64);
        for step in 0..=OCC_WORDS {
            let wi = (w0 + step) % OCC_WORDS;
            let mut word = self.occ[wi];
            if step == 0 {
                word &= !0u64 << b0;
            } else if step == OCC_WORDS {
                // Back at the start word: only the bits below `start`
                // (the wrapped-around tail of the window) remain.
                word &= (1u64 << b0) - 1;
            }
            if word != 0 {
                let idx = wi * 64 + word.trailing_zeros() as usize;
                let delta = (idx + SPAN as usize - start) % SPAN as usize;
                self.earliest = self.drained + 1 + delta as u64;
                return;
            }
        }
        debug_assert!(false, "ring_len > 0 but no occupied bucket");
    }

    /// Pending events (ring + overflow + the bucket being drained).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring_len + self.far.len() + self.current.len()
    }

    /// Whether no event is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events scheduled since construction (or since the last snapshot
    /// restore — the counter is diagnostic state, not serialised).
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

sqip_snapshot::snapshot_struct!(WheelEvent { at, kind, seq, inc });

impl sqip_snapshot::Snapshot for EventWheel {
    fn save(&self, w: &mut sqip_snapshot::SnapWriter) -> Result<(), sqip_snapshot::SnapError> {
        self.buckets.save(w)?;
        // The overflow heap's internal layout is insertion-order dependent;
        // serialise its *contents* sorted so equal wheels snapshot to equal
        // bytes.
        let mut far: Vec<(u64, WheelEvent)> = self.far.iter().map(|Reverse(e)| *e).collect();
        far.sort_unstable();
        far.save(w)?;
        self.drained.save(w)?;
        self.earliest.save(w)?;
        self.ring_len.save(w)?;
        self.current.save(w)
    }
    fn load(r: &mut sqip_snapshot::SnapReader) -> Result<EventWheel, sqip_snapshot::SnapError> {
        let buckets = Vec::<Vec<WheelEvent>>::load(r)?;
        let far_items = Vec::<(u64, WheelEvent)>::load(r)?;
        let drained = u64::load(r)?;
        let earliest = u64::load(r)?;
        let ring_len = usize::load(r)?;
        let current = Vec::<WheelEvent>::load(r)?;
        if buckets.len() as u64 != SPAN {
            return Err(sqip_snapshot::SnapError::Corrupt(format!(
                "event wheel with {} buckets (want {SPAN})",
                buckets.len()
            )));
        }
        if buckets.iter().map(Vec::len).sum::<usize>() != ring_len {
            return Err(sqip_snapshot::SnapError::Corrupt(
                "event wheel ring occupancy disagrees with its buckets".into(),
            ));
        }
        let far = far_items.into_iter().map(Reverse).collect();
        // The occupancy bitmap is derived state: rebuild it from the
        // buckets so the snapshot format is unchanged.
        let mut occ = [0u64; OCC_WORDS];
        for (idx, b) in buckets.iter().enumerate() {
            if !b.is_empty() {
                occ[idx / 64] |= 1 << (idx % 64);
            }
        }
        Ok(EventWheel {
            buckets,
            occ,
            far,
            drained,
            earliest,
            ring_len,
            current,
            spare: Vec::new(),
            ops: 0,
        })
    }
}

impl Default for EventWheel {
    fn default() -> EventWheel {
        EventWheel::new()
    }
}

impl std::fmt::Debug for EventWheel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventWheel")
            .field("len", &self.len())
            .field("drained", &self.drained)
            .field("next_at", &self.next_at())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(w: &mut EventWheel, now: u64) -> Vec<WheelEvent> {
        let mut out = Vec::new();
        while let Some(ev) = w.pop_due(now) {
            out.push(ev);
        }
        out
    }

    #[test]
    fn events_fire_in_heap_order() {
        let mut w = EventWheel::new();
        w.schedule(0, 5, EvKind::Exec, 9, 0);
        w.schedule(0, 5, EvKind::Broadcast, 4, 0);
        w.schedule(0, 3, EvKind::Wake, 1, 0);
        w.schedule(0, 5, EvKind::Broadcast, 2, 0);
        assert_eq!(w.next_at(), Some(3));
        assert!(w.pop_due(2).is_none(), "nothing due before cycle 3");
        let evs = drain_all(&mut w, 5);
        let key: Vec<_> = evs.iter().map(|e| (e.at, e.kind, e.seq)).collect();
        assert_eq!(
            key,
            vec![
                (3, EvKind::Wake, 1),
                (5, EvKind::Broadcast, 2),
                (5, EvKind::Broadcast, 4),
                (5, EvKind::Exec, 9),
            ]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn far_events_migrate_into_the_ring() {
        let mut w = EventWheel::new();
        w.schedule(0, 3 * SPAN + 7, EvKind::Broadcast, 1, 0);
        w.schedule(0, 2, EvKind::Exec, 2, 0);
        assert_eq!(w.len(), 2);
        assert_eq!(w.next_at(), Some(2));
        assert_eq!(drain_all(&mut w, 2).len(), 1);
        assert_eq!(w.next_at(), Some(3 * SPAN + 7));
        let evs = drain_all(&mut w, 3 * SPAN + 7);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].seq, 1);
    }

    /// Negative path: a wakeup scheduled *in the past* (the pipeline can
    /// compute one under zero-latency configurations) is delivered on the
    /// next pass, ordered before same-pass future events — the reference
    /// heap's exact behaviour.
    #[test]
    fn past_events_fire_next_pass_before_newer_ones() {
        let mut w = EventWheel::new();
        w.schedule(10, 11, EvKind::Broadcast, 7, 0);
        // Requested for cycle 4, which already passed: bucketed at 11.
        w.schedule(10, 4, EvKind::Exec, 3, 0);
        assert!(w.pop_due(10).is_none(), "nothing due at the current cycle");
        let evs = drain_all(&mut w, 11);
        let key: Vec<_> = evs.iter().map(|e| (e.at, e.kind, e.seq)).collect();
        assert_eq!(
            key,
            vec![(4, EvKind::Exec, 3), (11, EvKind::Broadcast, 7)],
            "the stale event outranks the fresh one, like the heap"
        );
    }

    /// Negative path: duplicate wakeups for one sequence number are all
    /// delivered (the engine's `wake_one` guards make the extras no-ops).
    #[test]
    fn duplicate_wakeups_are_all_delivered() {
        let mut w = EventWheel::new();
        w.schedule(0, 6, EvKind::Wake, 42, 1);
        w.schedule(0, 6, EvKind::Wake, 42, 1);
        let evs = drain_all(&mut w, 6);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0], evs[1]);
    }

    /// Regression: two overflow events exactly `SPAN` cycles apart, with
    /// the ring empty and the engine skipping straight to the first
    /// one's cycle. The empty-ring fast-forward must not migrate both
    /// into one bucket — the later event would fire `SPAN` cycles early.
    #[test]
    fn span_apart_overflow_events_do_not_alias_after_a_skip() {
        let mut w = EventWheel::new();
        w.schedule(0, 600, EvKind::Exec, 1, 0); // beyond the initial window
        w.schedule(0, 600 + SPAN, EvKind::Exec, 2, 0);
        assert_eq!(w.next_at(), Some(600));
        // The engine skips idle cycles straight to 600.
        let due = drain_all(&mut w, 600);
        assert_eq!(due.len(), 1, "only the cycle-600 event is due");
        assert_eq!(due[0].seq, 1);
        assert_eq!(w.next_at(), Some(600 + SPAN));
        let later = drain_all(&mut w, 600 + SPAN);
        assert_eq!(later.len(), 1);
        assert_eq!(later[0].seq, 2);
        assert!(w.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_drain_keeps_order() {
        let mut w = EventWheel::new();
        w.schedule(0, 2, EvKind::Exec, 1, 0);
        assert_eq!(drain_all(&mut w, 2).len(), 1);
        // Scheduling after a drain lands after the drained cycle.
        w.schedule(2, 3, EvKind::Wake, 2, 0);
        w.schedule(2, SPAN + 2, EvKind::Wake, 3, 0); // exactly at span edge
        assert_eq!(w.next_at(), Some(3));
        assert_eq!(drain_all(&mut w, 3).len(), 1);
        assert_eq!(w.next_at(), Some(SPAN + 2));
        assert_eq!(drain_all(&mut w, SPAN + 2).len(), 1);
        assert!(w.is_empty());
    }
}
