//! Front-end stages: fetch (with branch prediction) and rename (the
//! policy's dependence / index prediction touch-point).
//!
//! Identical decision-for-decision to the reference engine's frontend;
//! the only additions are ring-backed waiter registration and the
//! [`RenameStop`] record that feeds skip-ahead.

use sqip_isa::{Op, TraceRecord};
use sqip_types::Seq;

use crate::dyninst::{DynInst, InstState, Operand};
use crate::pipeline::event::{EventCore, RenameStop};
use crate::policy::{OracleHint, PipelineView};

impl EventCore<'_> {
    // ================================================================
    // Fetch
    // ================================================================

    #[inline(never)] // per-cycle stage entry: keep a distinct frame for profiles/codegen audits
    pub(crate) fn fetch_stage(&mut self) {
        if self.cycle < self.fetch_stall_until || self.pending_redirect.is_some() {
            return;
        }
        let mut budget = self.cfg.fetch_width;
        let mut taken_seen = false;
        let front_cap = self.front_cap();
        while budget > 0 && self.front_q.len() < front_cap {
            // Pulls from the trace source on first fetch; squash re-fetches
            // replay out of the in-flight record window. Only the four
            // control-flow fields are read — no whole-record copy.
            if self.fetch_record().is_none() {
                break; // stream exhausted (or failed; the step surfaces it)
            }
            let seq = Seq(self.fetch_idx as u64);
            let (op, taken, pc, next_pc) = {
                let r = self.window.rec(seq);
                (r.op, r.taken, r.pc, r.next_pc)
            };
            let mispredicted = self.predict_branch(op, taken, pc, next_pc);
            self.front_q
                .push_back((seq, self.cycle + self.cfg.front_latency, self.path_history));
            if op.is_conditional() {
                self.path_history = (self.path_history << 1) | u64::from(taken);
            }
            self.fetch_idx += 1;
            budget -= 1;
            if mispredicted {
                self.pending_redirect = Some(seq);
                break;
            }
            if taken {
                if taken_seen {
                    break; // at most one taken branch per fetch cycle
                }
                taken_seen = true;
            }
        }
    }

    /// Consults the branch predictor for a fetched record; returns whether
    /// fetch must stall for resolution (misprediction).
    ///
    /// Tables and history are trained here, at fetch, rather than at
    /// execute: with oracle-path fetch the outcome is already known, and
    /// fetch-time training makes predictor accuracy a pure function of the
    /// fetch sequence instead of execution timing, so store-queue designs
    /// are compared under identical front-end behaviour.
    fn predict_branch(
        &mut self,
        op: Op,
        taken: bool,
        pc: sqip_types::Pc,
        next_pc: sqip_types::Pc,
    ) -> bool {
        match op {
            Op::BranchZ | Op::BranchNZ => {
                let pred = self.bp.predict_conditional(pc);
                let mis = pred.taken != taken; // direct targets resolve at decode
                self.stats.branch_mispredicts += u64::from(mis);
                self.bp.update(pc, true, taken, next_pc);
                mis
            }
            Op::Call => {
                let _ = self.bp.predict_unconditional(pc, true);
                false
            }
            Op::Jump => false,
            Op::Ret => {
                let pred = self.bp.predict_return(pc);
                let mis = pred.target != Some(next_pc);
                self.stats.return_mispredicts += u64::from(mis);
                mis
            }
            _ => false,
        }
    }

    // ================================================================
    // Rename
    // ================================================================

    #[inline(never)] // per-cycle stage entry: keep a distinct frame for profiles/codegen audits
    pub(crate) fn rename_stage(&mut self) {
        self.rename_stop = RenameStop::Width;
        for _ in 0..self.cfg.rename_width {
            let Some(&(seq, ready_at, path)) = self.front_q.front() else {
                self.rename_stop = RenameStop::FrontEmpty;
                break;
            };
            if ready_at > self.cycle {
                self.rename_stop = RenameStop::NotReady(ready_at);
                break;
            }
            if self.rob.is_full() || self.iq_count >= self.cfg.iq_size {
                self.rename_stop = RenameStop::Structural;
                break;
            }
            let rec = *self.rec(seq);
            if rec.is_load() && self.lq.is_full() {
                self.rename_stop = RenameStop::Structural;
                break;
            }
            if rec.is_store() {
                if self.sq.is_full() {
                    self.rename_stop = RenameStop::Structural;
                    break;
                }
                // SSN wrap-around: drain the pipeline, then clear every
                // SSN-holding structure (§3.1).
                if self.ssn_ren.next().low_bits(self.cfg.ssn_bits) == 0 || self.draining_for_wrap {
                    if !self.rob.is_empty() {
                        self.draining_for_wrap = true;
                        self.rename_stop = RenameStop::Structural;
                        break;
                    }
                    self.draining_for_wrap = false;
                    self.policy.on_ssn_wrap();
                    self.stats.ssn_wraps += 1;
                }
            }
            self.front_q.pop_front();
            self.rename_one(seq, &rec, path);
        }
    }

    fn rename_one(&mut self, seq: Seq, rec: &TraceRecord, path: u64) {
        // Claim the sequence number's value-ring slot: clears leftovers
        // both from a squashed incarnation of this seq and from the slot's
        // previous (long-retired) tenant.
        self.vals.reset(seq.0);
        let mut inst = DynInst::new(seq, self.incarnation, self.ssn_ren);
        inst.nondelay_ready = self.cycle;
        inst.path = path;
        inst.op_class = rec.op.class();
        inst.has_dst = rec.dst.is_some();

        // Resolve source operands against the rename map.
        let mut gates = 0u32;
        for (i, src) in rec.srcs.iter().enumerate() {
            inst.srcs[i] = match src {
                None => Operand::None,
                Some(r) => match self.rename_map[r.index()] {
                    Some(p) => {
                        if self.vals.wake_time(p.0) > self.cycle {
                            gates += 1;
                            self.wake_on_value.push(p.0, seq.0);
                        }
                        Operand::InFlight(p)
                    }
                    None => Operand::Value(self.committed_regs[r.index()]),
                },
            };
        }

        if rec.is_store() {
            self.ssn_ren = self.ssn_ren.next();
            inst.my_ssn = self.ssn_ren;
            self.sq
                .allocate(inst.my_ssn, rec.pc)
                .expect("SQ fullness checked before rename");
            // Policy touch-point: store rename (SAT update, in-set
            // serialisation under original Store Sets).
            let view = PipelineView {
                ssn_ren: self.ssn_ren,
                ssn_cmt: self.ssn_cmt,
                sq: &self.sq,
            };
            if let Some(pred) = self.policy.rename_store(rec.pc, inst.my_ssn, seq, &view) {
                if pred.is_in_flight(self.ssn_cmt) && !self.sq.is_executed(pred) {
                    gates += 1;
                    self.wake_on_store_exec.push(pred.0, seq.0);
                }
            }
        }

        if rec.is_load() {
            self.lq
                .allocate(seq, rec.pc)
                .expect("LQ fullness checked before rename");
            gates += self.attach_load_predictions(&mut inst, rec);
        }

        if let Some(d) = rec.dst {
            self.rename_map[d.index()] = Some(seq);
        }

        inst.gates = gates;
        inst.state = if gates == 0 {
            InstState::Ready
        } else {
            InstState::Waiting
        };
        if gates == 0 {
            self.ready_q.insert(seq.0, rec.op.class());
        }
        self.iq_count += 1;
        self.rob
            .push_back(seq)
            .expect("ROB fullness checked before rename");
        self.insts.insert(seq.0, inst);
    }

    /// Policy touch-point: load rename. Feeds the policy (plus golden
    /// forwarding information for oracle designs), copies its decisions
    /// into the in-flight state and arms the scheduling gates it asked
    /// for. Returns the number of gates added.
    fn attach_load_predictions(&mut self, inst: &mut DynInst, rec: &TraceRecord) -> u32 {
        let hint = if self.caps.oracle {
            self.window.fwd(inst.seq).map(|f| OracleHint {
                store_ssn: self.insts.get(f.store_seq.0).map(|s| s.my_ssn),
                covers: f.covers,
            })
        } else {
            None
        };
        let view = PipelineView {
            ssn_ren: self.ssn_ren,
            ssn_cmt: self.ssn_cmt,
            sq: &self.sq,
        };
        let decision = self.policy.rename_load(rec.pc, inst.path, hint, &view);

        inst.pred_store_pc = decision.pred_store_pc;
        inst.ssn_fwd = decision.ssn_fwd;
        inst.ssn_dly = decision.ssn_dly;
        inst.wait_exec_ssn = decision.wait_exec_ssn;
        inst.delay_gated = decision.delay_gated;

        // Arm the gates, dropping any that could never release (already
        // executed / already committed) so no policy can deadlock a load.
        let mut gates = 0;
        if let Some(ssn) = decision.exec_gate {
            if ssn.is_in_flight(self.ssn_cmt) && !self.sq.is_executed(ssn) {
                gates += 1;
                self.wake_on_store_exec.push(ssn.0, inst.seq.0);
            }
        }
        if let Some(ssn) = decision.commit_gate {
            if ssn > self.ssn_cmt {
                gates += 1;
                self.wake_on_store_commit.push(ssn.0, inst.seq.0);
            }
        }
        gates
    }
}
