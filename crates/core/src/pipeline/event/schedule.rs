//! Scheduling: issue selection, event-wheel processing (wakeups, replays)
//! and load-latency speculation (the policy's scheduling touch-point).

use sqip_isa::OpClass;
use sqip_types::Seq;

use crate::dyninst::InstState;
use crate::pipeline::event::{fits_near, EventCore, WakeRing, WheelEvent};
use crate::pipeline::{EvKind, NOT_READY};

impl EventCore<'_> {
    #[inline(never)] // per-cycle stage entry: keep a distinct frame for profiles/codegen audits
    pub(crate) fn issue_stage(&mut self) {
        let mix = self.cfg.issue;
        // Port budgets in a dense array indexed by `port_of` — one lane
        // per port, so selection is a min-seq merge over the lane tails
        // with no full-set scan and no per-candidate class dispatch.
        let mut ports = [mix.int, mix.fp, mix.branch, mix.load, mix.store];
        let mut issued = std::mem::take(&mut self.issue_scratch);
        debug_assert!(issued.is_empty());
        self.ready_q
            .pop_selected(&mut ports, mix.total, &mut issued, &mut self.ready_touches);

        for &seq in &issued {
            self.iq_count -= 1;
            let (inc, my_ssn, fwd_predicted, has_dst, class) = {
                let inst = self.insts.get_mut(seq).expect("ready inst in flight");
                debug_assert_eq!(inst.state, InstState::Ready);
                inst.state = InstState::Issued;
                (
                    inst.incarnation,
                    inst.my_ssn,
                    inst.ssn_fwd.is_some(),
                    inst.has_dst,
                    inst.op_class,
                )
            };
            // The fused hot path: zero wheel events per issued
            // instruction. The Exec, broadcast and speculative store
            // wake that PR 9 all put on the wheel ride the off-wheel
            // near structures; the wheel keeps only what doesn't fit —
            // `issue_to_exec = 0` Execs (requested for the current
            // cycle, delivered via the wheel's past-event clamping) and
            // long-latency broadcasts past the ring span.
            let exec_at = self.cycle + self.cfg.issue_to_exec;
            if !self.wheel_only_broadcasts && fits_near(self.cycle, exec_at) {
                self.near_execs.schedule(exec_at, (seq, inc));
                self.near_ops += 1;
            } else {
                self.wheel
                    .schedule(self.cycle, exec_at, EvKind::Exec, seq, inc);
            }
            if my_ssn.is_some() {
                // Speculatively wake forwarding-gated loads behind this
                // store so their SQ read chases its SQ write. Always due
                // next cycle, and same-cycle stores issue oldest-first
                // (ascending SSN), so the queue stays sorted by
                // (due, ssn) — the wheel's StoreWake drain order.
                if self.wheel_only_broadcasts {
                    self.wheel.schedule(
                        self.cycle,
                        self.cycle + 1,
                        EvKind::StoreWake,
                        my_ssn.0,
                        inc,
                    );
                } else {
                    debug_assert!(self
                        .store_wakes
                        .back()
                        .is_none_or(|&last| last < (self.cycle + 1, my_ssn.0)));
                    self.store_wakes.push_back((self.cycle + 1, my_ssn.0));
                    self.near_ops += 1;
                }
            }

            // Wakeup broadcast for register consumers, timed so a
            // back-to-back dependent executes exactly when the value is
            // predicted to be ready. (The slab read above already
            // captured both record facts this needs; no window load.)
            if has_dst {
                let pred_latency = self.latency_for(class, fwd_predicted);
                let broadcast_at = (exec_at + pred_latency)
                    .saturating_sub(self.cfg.issue_to_exec)
                    .max(self.cycle + 1);
                self.vals.set_wake_time(seq, broadcast_at);
                // Short predicted latencies (the dominant ALU chains) go
                // to the near ring; anything past its span falls back to
                // the wheel, which has no horizon.
                if !self.wheel_only_broadcasts && fits_near(self.cycle, broadcast_at) {
                    self.near.schedule(broadcast_at, seq);
                    self.near_ops += 1;
                } else {
                    self.wheel
                        .schedule(self.cycle, broadcast_at, EvKind::Broadcast, seq, inc);
                }
            }
        }
        issued.clear();
        self.issue_scratch = issued;
    }

    /// The latency the scheduler assumes for an instruction's value —
    /// loads defer to the policy's latency-speculation touch-point
    /// (`fwd_predicted` is the load's forwarding prediction, captured by
    /// the caller so no extra slab lookup is needed here).
    pub(crate) fn latency_for(&self, class: OpClass, fwd_predicted: bool) -> u64 {
        let l = self.cfg.latencies;
        match class {
            OpClass::IntAlu | OpClass::None => l.int_alu,
            OpClass::IntMul => l.int_mul,
            OpClass::FpAdd => l.fp_add,
            OpClass::FpMul => l.fp_mul,
            OpClass::FpDiv => l.fp_div,
            OpClass::Branch => l.branch,
            OpClass::Store => 1,
            OpClass::Load => {
                let cache = self.cfg.hierarchy.l1.hit_latency;
                self.policy.wakeup_latency(fwd_predicted, cache)
            }
        }
    }

    // ================================================================
    // Events (execute, wakeup)
    // ================================================================

    /// Delivers everything due this cycle, in an order bit-identical to
    /// the reference heap's `(cycle, kind, seq, inc)` drain:
    ///
    /// 1. **Past-requested wheel events.** An event requested at or
    ///    before its scheduling cycle (possible under `issue_to_exec =
    ///    0`) is clamped into this pass but keeps its original cycle as
    ///    sort key, so the heap fires it ahead of everything requested
    ///    *for* this cycle — notably such an Exec must not be reordered
    ///    after this cycle's broadcasts (its replay re-registration on
    ///    `wake_on_value` must still catch them).
    /// 2. **Fused near wake deliveries** — the off-wheel broadcasts and
    ///    speculative store wakes, all requested for exactly this cycle
    ///    (the skip-ahead bound lands the engine on every due cycle, so
    ///    nothing here is ever overdue). Delivering them before the
    ///    wheel's same-cycle events is unobservable: same-cycle wake
    ///    deliveries (Broadcast / Wake / StoreWake, in any key order)
    ///    commute — gate releases at one cycle are order-independent
    ///    arithmetic, duplicate wakes no-op on the state check, and
    ///    waiter registration happens only inside Exec arms.
    /// 3. **The wheel**, whose internal order is unchanged. With fusing
    ///    on it holds only wake deliveries for this cycle (every
    ///    same-cycle Exec is either fused or, under `issue_to_exec =
    ///    0`, clamped into phase 1), so phases 2–3 together are one
    ///    commuting block of deliveries.
    /// 4. **Fused near Execs**, in issue (= ascending seq) order —
    ///    matching the heap, which sorts same-cycle Execs after every
    ///    same-cycle delivery kind and by seq among themselves.
    #[inline(never)] // per-cycle stage entry: keep a distinct frame for profiles/codegen audits
    pub(crate) fn process_events(&mut self) {
        while let Some(ev) = self.wheel.pop_due_before(self.cycle, self.cycle) {
            self.dispatch_event(ev);
        }
        let mut scratch = std::mem::take(&mut self.near_scratch);
        while self.near.take_due(self.cycle, &mut scratch) {
            for producer in scratch.drain(..) {
                self.do_broadcast(producer);
            }
        }
        self.near_scratch = scratch;
        while let Some(&(due, ssn)) = self.store_wakes.front() {
            if due > self.cycle {
                break;
            }
            self.store_wakes.pop_front();
            self.wake_all(WakeRing::StoreExec, ssn);
        }
        while let Some(ev) = self.wheel.pop_due(self.cycle) {
            self.dispatch_event(ev);
        }
        let mut execs = std::mem::take(&mut self.near_exec_scratch);
        while self.near_execs.take_due(self.cycle, &mut execs) {
            for (seq, inc) in execs.drain(..) {
                if self.insts.get(seq).is_some_and(|i| i.incarnation == inc) {
                    self.do_execute(Seq(seq));
                }
            }
        }
        self.near_exec_scratch = execs;
    }

    fn dispatch_event(&mut self, ev: WheelEvent) {
        let WheelEvent { kind, seq, inc, .. } = ev;
        // Squashed-incarnation events are dropped (the liveness check
        // lives in the arms that need it). Broadcasts are exempt: a
        // producer may legitimately commit before its re-broadcast
        // fires, and its registered consumers must still wake
        // (wake_one itself guards against squashed consumers).
        let alive = |insts: &super::InstSlab| -> bool {
            insts.get(seq).is_some_and(|i| i.incarnation == inc)
        };
        match kind {
            EvKind::Broadcast => self.do_broadcast(seq),
            EvKind::Wake => {
                if alive(&self.insts) {
                    self.wake_one(seq, false);
                }
            }
            EvKind::StoreWake => {
                // `seq` carries the store's SSN, not a sequence number.
                self.wake_all(WakeRing::StoreExec, seq);
            }
            EvKind::Exec => {
                if alive(&self.insts) {
                    self.do_execute(Seq(seq));
                }
            }
        }
    }

    fn do_broadcast(&mut self, producer: u64) {
        self.broadcasts += 1;
        self.wake_all(WakeRing::Value, producer);
    }

    pub(crate) fn wake_one(&mut self, seq: u64, is_delay_gate: bool) {
        let Some(inst) = self.insts.get_mut(seq) else {
            return;
        };
        if inst.state != InstState::Waiting {
            return;
        }
        if inst.release_gate(self.cycle, is_delay_gate) {
            inst.state = InstState::Ready;
            let class = inst.op_class;
            self.ready_q.insert(seq, class);
        }
    }

    pub(crate) fn replay(&mut self, seq: Seq, unready: &[u64]) {
        self.stats.replays += 1;
        let now = self.cycle;
        let issue_to_exec = self.cfg.issue_to_exec;
        // One slot per source operand: an instruction can have at most
        // MAX_SRCS unready producers, so the fixed buffer cannot
        // overflow (the bound is the ISA's, enforced here by the type).
        debug_assert!(unready.len() <= sqip_isa::MAX_SRCS);
        let mut wakes = [0u64; sqip_isa::MAX_SRCS];
        let mut n_wakes = 0;
        {
            let inst = self.insts.get_mut(seq.0).expect("replaying inst in flight");
            inst.state = InstState::Waiting;
            inst.replays += 1;
            inst.gates = unready.len() as u32;
        }
        for &p in unready {
            let vr = self.vals.value_ready(p);
            if vr == NOT_READY {
                // Producer hasn't executed; it will re-broadcast.
                self.wake_on_value.push(p, seq.0);
            } else {
                wakes[n_wakes] = vr.saturating_sub(issue_to_exec).max(now + 1);
                n_wakes += 1;
            }
        }
        self.iq_count += 1;
        let inc = self
            .insts
            .get(seq.0)
            .expect("replaying inst in flight")
            .incarnation;
        for &at in &wakes[..n_wakes] {
            self.wheel.schedule(now, at, EvKind::Wake, seq.0, inc);
        }
    }
}
