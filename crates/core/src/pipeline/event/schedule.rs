//! Scheduling: issue selection, event-wheel processing (wakeups, replays)
//! and load-latency speculation (the policy's scheduling touch-point).

use sqip_isa::OpClass;
use sqip_types::Seq;

use crate::dyninst::InstState;
use crate::pipeline::event::{EventCore, WakeRing, WheelEvent};
use crate::pipeline::{EvKind, NOT_READY};

/// The issue-port index an op class contends for (the order of
/// `issue_stage`'s port-budget array).
const fn port_of(class: OpClass) -> usize {
    match class {
        OpClass::IntAlu | OpClass::IntMul | OpClass::None => 0,
        OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => 1,
        OpClass::Branch => 2,
        OpClass::Load => 3,
        OpClass::Store => 4,
    }
}

impl EventCore<'_> {
    #[inline(never)] // per-cycle stage entry: keep a distinct frame for profiles/codegen audits
    pub(crate) fn issue_stage(&mut self) {
        let mix = self.cfg.issue;
        let mut total = mix.total;
        // Port budgets in a dense array indexed by `port_of` — a table
        // lookup and an array index per candidate instead of a
        // five-way branch, and no record-window load (the ready set
        // carries each entry's class).
        let mut ports = [mix.int, mix.fp, mix.branch, mix.load, mix.store];
        let mut issued = std::mem::take(&mut self.issue_scratch);
        debug_assert!(issued.is_empty());

        // Selection and removal in one oldest-first compaction pass.
        self.ready_q.take_selected(|seq, class| {
            if total == 0 {
                return false;
            }
            let port = &mut ports[port_of(class)];
            if *port == 0 {
                return false; // port conflict: skip, stay ready
            }
            *port -= 1;
            total -= 1;
            issued.push(seq);
            true
        });

        for &seq in &issued {
            self.iq_count -= 1;
            let (inc, my_ssn, fwd_predicted, has_dst, class) = {
                let inst = self.insts.get_mut(seq).expect("ready inst in flight");
                debug_assert_eq!(inst.state, InstState::Ready);
                inst.state = InstState::Issued;
                (
                    inst.incarnation,
                    inst.my_ssn,
                    inst.ssn_fwd.is_some(),
                    inst.has_dst,
                    inst.op_class,
                )
            };
            let exec_at = self.cycle + self.cfg.issue_to_exec;
            self.wheel
                .schedule(self.cycle, exec_at, EvKind::Exec, seq, inc);
            if my_ssn.is_some() {
                // Speculatively wake forwarding-gated loads behind this
                // store so their SQ read chases its SQ write.
                self.wheel
                    .schedule(self.cycle, self.cycle + 1, EvKind::StoreWake, my_ssn.0, inc);
            }

            // Wakeup broadcast for register consumers, timed so a
            // back-to-back dependent executes exactly when the value is
            // predicted to be ready. (The slab read above already
            // captured both record facts this needs; no window load.)
            if has_dst {
                let pred_latency = self.latency_for(class, fwd_predicted);
                let broadcast_at = (exec_at + pred_latency)
                    .saturating_sub(self.cfg.issue_to_exec)
                    .max(self.cycle + 1);
                self.vals.set_wake_time(seq, broadcast_at);
                self.wheel
                    .schedule(self.cycle, broadcast_at, EvKind::Broadcast, seq, inc);
            }
        }
        issued.clear();
        self.issue_scratch = issued;
    }

    /// The latency the scheduler assumes for an instruction's value —
    /// loads defer to the policy's latency-speculation touch-point
    /// (`fwd_predicted` is the load's forwarding prediction, captured by
    /// the caller so no extra slab lookup is needed here).
    pub(crate) fn latency_for(&self, class: OpClass, fwd_predicted: bool) -> u64 {
        let l = self.cfg.latencies;
        match class {
            OpClass::IntAlu | OpClass::None => l.int_alu,
            OpClass::IntMul => l.int_mul,
            OpClass::FpAdd => l.fp_add,
            OpClass::FpMul => l.fp_mul,
            OpClass::FpDiv => l.fp_div,
            OpClass::Branch => l.branch,
            OpClass::Store => 1,
            OpClass::Load => {
                let cache = self.cfg.hierarchy.l1.hit_latency;
                self.policy.wakeup_latency(fwd_predicted, cache)
            }
        }
    }

    // ================================================================
    // Events (execute, wakeup)
    // ================================================================

    #[inline(never)] // per-cycle stage entry: keep a distinct frame for profiles/codegen audits
    pub(crate) fn process_events(&mut self) {
        while let Some(ev) = self.wheel.pop_due(self.cycle) {
            let WheelEvent { kind, seq, inc, .. } = ev;
            // Squashed-incarnation events are dropped (the liveness check
            // lives in the arms that need it). Broadcasts are exempt: a
            // producer may legitimately commit before its re-broadcast
            // fires, and its registered consumers must still wake
            // (wake_one itself guards against squashed consumers).
            let alive = |insts: &super::InstSlab| -> bool {
                insts.get(seq).is_some_and(|i| i.incarnation == inc)
            };
            match kind {
                EvKind::Broadcast => self.do_broadcast(seq),
                EvKind::Wake => {
                    if alive(&self.insts) {
                        self.wake_one(seq, false);
                    }
                }
                EvKind::StoreWake => {
                    // `seq` carries the store's SSN, not a sequence number.
                    self.wake_all(WakeRing::StoreExec, seq);
                }
                EvKind::Exec => {
                    if alive(&self.insts) {
                        self.do_execute(Seq(seq));
                    }
                }
            }
        }
    }

    fn do_broadcast(&mut self, producer: u64) {
        self.wake_all(WakeRing::Value, producer);
    }

    pub(crate) fn wake_one(&mut self, seq: u64, is_delay_gate: bool) {
        let Some(inst) = self.insts.get_mut(seq) else {
            return;
        };
        if inst.state != InstState::Waiting {
            return;
        }
        if inst.release_gate(self.cycle, is_delay_gate) {
            inst.state = InstState::Ready;
            let class = inst.op_class;
            self.ready_q.insert(seq, class);
        }
    }

    pub(crate) fn replay(&mut self, seq: Seq, unready: &[u64]) {
        self.stats.replays += 1;
        let now = self.cycle;
        let issue_to_exec = self.cfg.issue_to_exec;
        let mut wakes = [0u64; 2];
        let mut n_wakes = 0;
        {
            let inst = self.insts.get_mut(seq.0).expect("replaying inst in flight");
            inst.state = InstState::Waiting;
            inst.replays += 1;
            inst.gates = unready.len() as u32;
        }
        for &p in unready {
            let vr = self.vals.value_ready(p);
            if vr == NOT_READY {
                // Producer hasn't executed; it will re-broadcast.
                self.wake_on_value.push(p, seq.0);
            } else {
                wakes[n_wakes] = vr.saturating_sub(issue_to_exec).max(now + 1);
                n_wakes += 1;
            }
        }
        self.iq_count += 1;
        let inc = self
            .insts
            .get(seq.0)
            .expect("replaying inst in flight")
            .incarnation;
        for &at in &wakes[..n_wakes] {
            self.wheel.schedule(now, at, EvKind::Wake, seq.0, inc);
        }
    }
}
