//! The cycle-level out-of-order processor model.
//!
//! A 19-stage, 8-way machine driven by a golden dynamic-instruction
//! stream (oracle control-flow path, architectural addresses) pulled
//! incrementally from a [`TraceSource`] — a materialized trace, a
//! streaming program interpreter, a recorded trace file, a generator —
//! that recomputes *values* speculatively
//! through the modelled dataflow. Store-load forwarding — the subject of
//! the paper — is simulated exactly: loads obtain values from the store
//! queue or from committed memory as decided by the configured
//! [`ForwardingPolicy`](crate::ForwardingPolicy), wrong values propagate
//! to dependents, and SVW-filtered pre-commit re-execution catches
//! mis-speculations and flushes.
//!
//! The model is implemented **twice**, behind one façade:
//!
//! * [`event`] — the production engine: event wheel, ring-indexed slabs,
//!   idle-cycle skip-ahead (see [`crate::Engine::Event`]);
//! * [`reference`] — the straightforward per-cycle stepper it was
//!   derived from, kept as the differential-testing baseline (see
//!   [`crate::Engine::Reference`]).
//!
//! [`Processor`] dispatches between them on [`SimConfig::engine`]; the
//! two are pinned to bit-identical [`SimStats`] by differential
//! proptests and the golden design fixture.

pub(crate) mod event;
pub(crate) mod reference;
#[cfg(test)]
mod tests;
mod window;

use sqip_isa::{Trace, TraceSource};
use sqip_snapshot::SnapError;
use sqip_types::{Addr, DataSize};

use crate::config::{Engine, SimConfig};
use crate::error::SimError;
use crate::observer::{ObserverAction, SimObserver};
use crate::shared::{Analysis, OracleFeed};
use crate::stats::SimStats;

use event::EventCore;
use reference::RefCore;

pub(crate) const NOT_READY: u64 = u64::MAX;
/// Cycles without a commit after which the simulator declares deadlock.
pub(crate) const WATCHDOG_CYCLES: u64 = 500_000;

/// What a [`Processor::step`] (or [`Processor::run_until`]) left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The trace has not fully committed yet.
    Running,
    /// Every trace record has committed; statistics are final.
    Done,
}

/// Kinds of scheduled pipeline events, in their within-cycle delivery
/// order (the second-rank sort key after the cycle itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EvKind {
    /// Wakeup broadcast: consumers of this producer may now issue.
    Broadcast,
    /// Targeted wake of one waiting instruction (replay re-wake).
    Wake,
    /// Speculative wake of loads gated on a store's execution (the key is
    /// the store's SSN). Fired one cycle after the store issues, so that
    /// a dependent load's SQ access lines up right behind the store's SQ
    /// write; loads that arrive early (the store replayed) replay too.
    StoreWake,
    /// The instruction reaches its execute stage.
    Exec,
}

impl sqip_snapshot::Snapshot for EvKind {
    fn save(&self, w: &mut sqip_snapshot::SnapWriter) -> Result<(), sqip_snapshot::SnapError> {
        w.put_u8(match self {
            EvKind::Broadcast => 0,
            EvKind::Wake => 1,
            EvKind::StoreWake => 2,
            EvKind::Exec => 3,
        });
        Ok(())
    }
    fn load(r: &mut sqip_snapshot::SnapReader) -> Result<EvKind, sqip_snapshot::SnapError> {
        match r.get_u8()? {
            0 => Ok(EvKind::Broadcast),
            1 => Ok(EvKind::Wake),
            2 => Ok(EvKind::StoreWake),
            3 => Ok(EvKind::Exec),
            t => Err(sqip_snapshot::SnapError::Corrupt(format!(
                "event kind tag {t}"
            ))),
        }
    }
}

enum Core<'t> {
    Event(Box<EventCore<'t>>),
    Reference(Box<RefCore<'t>>),
}

/// The simulator.
///
/// Build one per (configuration, input) pair and call [`Processor::run`].
/// The input is any [`TraceSource`] — a materialized [`Trace`] (via
/// [`Processor::new`]), a streaming program interpreter, a recorded trace
/// file, a generator — consumed incrementally through
/// [`Processor::from_source`]: the processor buffers only the records
/// between the commit point and the fetch frontier, so run length is
/// unbounded by memory.
///
/// [`SimConfig::engine`] selects the simulation core: the event-driven
/// engine (default) or the per-cycle reference stepper. The two produce
/// bit-identical statistics; see [`crate::Engine`].
///
/// # Example
///
/// ```
/// use sqip_core::{Processor, SimConfig, SqDesign};
/// use sqip_isa::{trace_program, ProgramBuilder, Reg};
/// use sqip_types::DataSize;
///
/// let mut b = ProgramBuilder::new();
/// let (v, t) = (Reg::new(1), Reg::new(2));
/// b.load_imm(v, 7);
/// b.store(DataSize::Quad, v, Reg::ZERO, 0x100);
/// b.load(DataSize::Quad, t, Reg::ZERO, 0x100);
/// b.halt();
/// let trace = trace_program(&b.build()?, 100)?;
///
/// let stats = Processor::new(SimConfig::with_design(SqDesign::Indexed3FwdDly), &trace).run();
/// assert_eq!(stats.committed, trace.len() as u64);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// Streaming a program directly — no `Trace` is ever materialized, and
/// the statistics are bit-identical to the materialized run:
///
/// ```
/// use sqip_core::{Processor, SimConfig, SqDesign};
/// use sqip_isa::{ProgramBuilder, ProgramSource, Reg};
/// use sqip_types::DataSize;
///
/// let mut b = ProgramBuilder::new();
/// let (ctr, v) = (Reg::new(1), Reg::new(2));
/// b.load_imm(ctr, 1000);
/// let top = b.label("top");
/// b.store(DataSize::Quad, v, Reg::ZERO, 0x100);
/// b.load(DataSize::Quad, v, Reg::ZERO, 0x100);
/// b.add_imm(ctr, ctr, -1);
/// b.branch_nz(ctr, top);
/// b.halt();
///
/// let source = ProgramSource::new(b.build()?, 100_000);
/// let cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
/// let stats = Processor::from_source(cfg, source).try_run()?;
/// assert_eq!(stats.committed, 4 * 1000 + 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Processor<'t> {
    core: Core<'t>,
}

impl<'t> Processor<'t> {
    /// Builds a processor for one run over `trace`, validating the
    /// configuration.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if the configuration is inconsistent
    /// (see [`SimConfig::try_validate`]).
    pub fn try_new(cfg: SimConfig, trace: &'t Trace) -> Result<Processor<'t>, SimError> {
        Processor::try_from_source(cfg, trace.stream())
    }

    /// Builds a processor for one run over `trace`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`SimConfig::validate`]).
    #[must_use]
    pub fn new(cfg: SimConfig, trace: &'t Trace) -> Processor<'t> {
        Processor::from_source(cfg, trace.stream())
    }

    /// Builds a processor over any [`TraceSource`], validating the
    /// configuration. Records are pulled on demand and only an
    /// O(window)-sized span is ever buffered (see
    /// [`Processor::buffered_records`]), so sources of unbounded length
    /// simulate in bounded memory.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if the configuration is inconsistent
    /// (see [`SimConfig::try_validate`]).
    pub fn try_from_source(
        cfg: SimConfig,
        source: impl TraceSource + 't,
    ) -> Result<Processor<'t>, SimError> {
        cfg.try_validate()?;
        Ok(Processor::new_unchecked(cfg, source))
    }

    /// Builds a processor over any [`TraceSource`] (see
    /// [`Processor::try_from_source`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`SimConfig::validate`]).
    #[must_use]
    pub fn from_source(cfg: SimConfig, source: impl TraceSource + 't) -> Processor<'t> {
        cfg.validate();
        Processor::new_unchecked(cfg, source)
    }

    fn new_unchecked(cfg: SimConfig, source: impl TraceSource + 't) -> Processor<'t> {
        let core = match cfg.engine {
            Engine::Event => Core::Event(Box::new(EventCore::new_unchecked(cfg, source))),
            Engine::Reference => Core::Reference(Box::new(RefCore::new_unchecked(cfg, source))),
        };
        Processor { core }
    }

    /// Builds a processor that reads a **shared** dependence-analysis
    /// pass instead of running its own: `source` is typically a
    /// [`sqip_isa::TeeCursor`] over a stream wrapped by
    /// [`crate::oracle_tap`], and `feed` the matching [`OracleFeed`] —
    /// the shared-pass sweep configuration, where one workload pass
    /// drives many design cells. Statistics are bit-identical to a
    /// per-cell run over the same stream.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if the configuration is inconsistent
    /// (see [`SimConfig::try_validate`]).
    pub fn try_from_shared(
        cfg: SimConfig,
        source: impl TraceSource + 't,
        feed: OracleFeed,
    ) -> Result<Processor<'t>, SimError> {
        cfg.try_validate()?;
        let analysis = Analysis::Shared(feed);
        let core = match cfg.engine {
            Engine::Event => Core::Event(Box::new(EventCore::with_analysis(cfg, source, analysis))),
            Engine::Reference => {
                Core::Reference(Box::new(RefCore::with_analysis(cfg, source, analysis)))
            }
        };
        Ok(Processor { core })
    }

    /// Whether the whole record stream has committed. Until the source is
    /// exhausted (or declared an exact length up front) the total is
    /// unknown and this is `false`.
    #[must_use]
    pub fn is_done(&self) -> bool {
        match &self.core {
            Core::Event(c) => c.is_done(),
            Core::Reference(c) => c.is_done(),
        }
    }

    /// Records currently buffered between the commit point and the fetch
    /// frontier. Bounded by the machine's window (ROB + fetch-ahead), not
    /// by the input length — the memory-boundedness guarantee of the
    /// streaming input API, pinned by a regression test.
    #[must_use]
    pub fn buffered_records(&self) -> usize {
        match &self.core {
            Core::Event(c) => c.buffered_records(),
            Core::Reference(c) => c.buffered_records(),
        }
    }

    /// The current cycle number.
    ///
    /// Under the event engine this advances by more than one per
    /// [`Processor::step`] whenever idle cycles were skipped.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        match &self.core {
            Core::Event(c) => c.cycle,
            Core::Reference(c) => c.cycle(),
        }
    }

    /// The statistics accumulated so far. Both engines fold the cycle
    /// count and cache counters in after every step, so the view is
    /// consistent mid-run.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        match &self.core {
            Core::Event(c) => &c.stats,
            Core::Reference(c) => c.stats(),
        }
    }

    /// The committed architectural value of register `r` (used by
    /// cross-design equivalence tests: every sound policy must retire the
    /// same architectural state).
    #[must_use]
    pub fn committed_reg(&self, r: sqip_isa::Reg) -> u64 {
        match &self.core {
            Core::Event(c) => c.committed_reg(r),
            Core::Reference(c) => c.committed_reg(r),
        }
    }

    /// Reads the committed memory image — the architectural memory state
    /// built by retired stores.
    #[must_use]
    pub fn committed_mem(&self, addr: Addr, size: DataSize) -> u64 {
        match &self.core {
            Core::Event(c) => c.committed_mem(addr, size),
            Core::Reference(c) => c.committed_mem(addr, size),
        }
    }

    /// The event engine's scheduling-cost counters (wheel ops, off-wheel
    /// ops, broadcasts delivered, ready-lane touches) accumulated since
    /// construction. `None` under the reference engine, which carries no
    /// scheduler instrumentation. Diagnostic state: never part of
    /// [`SimStats`] or checkpoints, so reading it cannot perturb
    /// bit-identity.
    #[must_use]
    pub fn sched_counters(&self) -> Option<crate::engine::SchedCounters> {
        match &self.core {
            Core::Event(c) => Some(c.sched_counters()),
            Core::Reference(_) => None,
        }
    }

    /// Test knob: routes every broadcast and speculative store wake
    /// through the event wheel (the pre-fusion scheduling shape) so
    /// differential tests can pin the fused off-wheel path bit-identical
    /// against it. No-op under the reference engine.
    #[doc(hidden)]
    pub fn set_wheel_only_scheduling(&mut self, on: bool) {
        if let Core::Event(c) = &mut self.core {
            c.wheel_only_broadcasts = on;
        }
    }

    /// Advances the simulation by one *step*.
    ///
    /// Under the reference engine a step is exactly one cycle. Under the
    /// event engine a step is one **active** cycle: the engine first
    /// jumps over any provably idle cycles (no wakeup due, frontend
    /// stalled, no commit-eligible head) and then simulates the cycle it
    /// lands on, so [`Processor::cycle`] may advance by more than one.
    /// The sequence of active cycles — and every statistic — is identical
    /// between the engines.
    ///
    /// Returns [`StepOutcome::Done`] once the whole trace has committed
    /// (further calls are no-ops that keep returning `Done`).
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if no instruction has committed for an
    /// implausibly long time — a simulator bug, not a program property —
    /// and [`SimError::TraceSource`] if the trace source fails mid-stream
    /// (I/O error, corrupt trace file, interpreter fault).
    pub fn step(&mut self) -> Result<StepOutcome, SimError> {
        match &mut self.core {
            Core::Event(c) => c.step_bounded(u64::MAX),
            Core::Reference(c) => c.step(),
        }
    }

    /// Runs until the trace commits fully or `cycle_limit` is reached,
    /// whichever comes first. The event engine lands exactly on
    /// `cycle_limit` when the trace outlives it.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Deadlock`] from [`Processor::step`].
    pub fn run_until(&mut self, cycle_limit: u64) -> Result<StepOutcome, SimError> {
        while self.cycle() < cycle_limit {
            let outcome = match &mut self.core {
                Core::Event(c) => c.step_bounded(cycle_limit)?,
                Core::Reference(c) => c.step()?,
            };
            if outcome == StepOutcome::Done {
                return Ok(StepOutcome::Done);
            }
        }
        Ok(if self.is_done() {
            StepOutcome::Done
        } else {
            StepOutcome::Running
        })
    }

    /// Runs the trace to completion and returns the statistics.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if the pipeline stops committing.
    pub fn try_run(mut self) -> Result<SimStats, SimError> {
        while self.step()? == StepOutcome::Running {}
        Ok(self.stats().clone())
    }

    /// Runs to completion with observation hooks: `observer` is started
    /// before the first cycle, called every [`SimObserver::interval`]
    /// cycles, and may abort the run early (the partial statistics are
    /// returned, with `committed < trace.len()`).
    ///
    /// Interval boundaries are honoured exactly under both engines: when
    /// the event engine's skip-ahead would jump over a boundary, it is
    /// capped to land on it, so observers see the same per-interval
    /// snapshots the reference engine produces.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if the pipeline stops committing.
    pub fn run_observed<O: SimObserver + ?Sized>(
        mut self,
        observer: &mut O,
    ) -> Result<SimStats, SimError> {
        let len_hint = match &self.core {
            Core::Event(c) => c.total_records(),
            Core::Reference(c) => c.total_records(),
        };
        let cfg = self.config().clone();
        observer.on_start(&cfg, len_hint.map(|n| n as usize));
        let interval = observer.interval().max(1);
        loop {
            // The next interval boundary strictly after the current cycle.
            let boundary = (self.cycle() / interval + 1) * interval;
            let outcome = match &mut self.core {
                Core::Event(c) => c.step_bounded(boundary)?,
                Core::Reference(c) => c.step()?,
            };
            if outcome == StepOutcome::Done {
                break;
            }
            if self.cycle().is_multiple_of(interval)
                && observer.on_interval(self.cycle(), self.stats()) == ObserverAction::Abort
            {
                return Ok(self.stats().clone());
            }
        }
        observer.on_finish(self.stats());
        Ok(self.stats().clone())
    }

    /// Runs the trace to completion and returns the statistics.
    ///
    /// This is the legacy convenience wrapper around
    /// [`Processor::try_run`].
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks (no commit for a long time), which
    /// indicates a simulator bug rather than a program property.
    #[must_use]
    pub fn run(self) -> SimStats {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    fn config(&self) -> &SimConfig {
        match &self.core {
            Core::Event(c) => &c.cfg,
            Core::Reference(c) => &c.cfg,
        }
    }

    /// Serialises the complete simulation state into `out` as a
    /// self-describing checkpoint: configuration, pipeline, predictors,
    /// committed architectural state, and the trace-source position.
    /// [`Processor::restore`] over a fresh source resumes the run with
    /// **bit-identical** statistics to never having stopped.
    ///
    /// # Errors
    ///
    /// [`sqip_snapshot::SnapError::Unsupported`] when the state is not
    /// checkpointable — a custom [`ForwardingPolicy`](crate::ForwardingPolicy)
    /// design, a shared-analysis processor (built by
    /// [`Processor::try_from_shared`]), or a pending trace-source error —
    /// and [`sqip_snapshot::SnapError::Io`] when writing `out` fails.
    ///
    /// # Example
    ///
    /// ```
    /// use sqip_core::{Processor, SimConfig, SqDesign, StepOutcome};
    /// use sqip_isa::{trace_program, ProgramBuilder, ProgramSource, Reg};
    /// use sqip_types::DataSize;
    ///
    /// let mut b = ProgramBuilder::new();
    /// let (ctr, v) = (Reg::new(1), Reg::new(2));
    /// b.load_imm(ctr, 100);
    /// let top = b.label("top");
    /// b.store(DataSize::Quad, v, Reg::ZERO, 0x100);
    /// b.load(DataSize::Quad, v, Reg::ZERO, 0x100);
    /// b.add_imm(ctr, ctr, -1);
    /// b.branch_nz(ctr, top);
    /// b.halt();
    /// let program = b.build()?;
    ///
    /// let cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
    /// let mut p = Processor::from_source(cfg.clone(), ProgramSource::new(program.clone(), 10_000));
    /// p.run_until(500)?;
    ///
    /// // Checkpoint mid-run, then resume in a fresh processor over a
    /// // fresh source.
    /// let mut snap = Vec::new();
    /// p.checkpoint(&mut snap)?;
    /// let mut resumed =
    ///     Processor::restore(&mut snap.as_slice(), ProgramSource::new(program, 10_000))?;
    ///
    /// let straight = p.try_run()?;
    /// let stitched = resumed.try_run()?;
    /// assert_eq!(straight, stitched, "resume is bit-identical");
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn checkpoint(&self, out: &mut impl std::io::Write) -> Result<(), SnapError> {
        use sqip_snapshot::Snapshot as _;
        let mut w = sqip_snapshot::SnapWriter::new();
        let cfg_json = serde_json::to_string(self.config())
            .map_err(|e| SnapError::Corrupt(format!("configuration did not serialise: {e}")))?;
        cfg_json.save(&mut w)?;
        match &self.core {
            Core::Event(c) => {
                c.records_pulled().save(&mut w)?;
                c.save_state(&mut w)?;
            }
            Core::Reference(c) => {
                c.records_pulled().save(&mut w)?;
                c.save_state(&mut w)?;
            }
        }
        w.finish(out)
    }

    /// Rebuilds a checkpointed processor, resuming over `source` — a
    /// fresh instance of the **same** trace source the checkpointed run
    /// consumed. The already-simulated prefix is skipped by pulling (and
    /// discarding) the records the checkpoint had pulled; simulation then
    /// continues bit-identically from the checkpointed cycle. See
    /// [`Processor::checkpoint`] for an example.
    ///
    /// # Errors
    ///
    /// Any [`SnapError`] for a truncated, corrupt, foreign-version or
    /// inconsistent checkpoint; [`SnapError::Source`] when `source` fails
    /// or ends before the checkpointed position;
    /// [`SnapError::Unsupported`] when the checkpointed design is not a
    /// builtin-capability design in this process's registry.
    pub fn restore(
        input: &mut impl std::io::Read,
        source: impl TraceSource + 't,
    ) -> Result<Processor<'t>, SnapError> {
        use sqip_snapshot::Snapshot as _;
        let mut r = sqip_snapshot::SnapReader::new(input)?;
        let cfg_json = String::load(&mut r)?;
        let cfg: SimConfig = serde_json::from_str(&cfg_json)
            .map_err(|e| SnapError::Corrupt(format!("configuration did not parse: {e}")))?;
        cfg.try_validate()
            .map_err(|e| SnapError::Corrupt(format!("checkpointed configuration invalid: {e}")))?;
        let pulls = u64::load(&mut r)?;
        let mut source = source;
        for i in 0..pulls {
            match source.next_record() {
                Ok(Some(_)) => {}
                Ok(None) => {
                    return Err(SnapError::Source(format!(
                        "trace source exhausted at record {i} of the {pulls} \
                         the checkpoint had consumed"
                    )))
                }
                Err(e) => return Err(SnapError::Source(e.to_string())),
            }
        }
        let core = match cfg.engine {
            Engine::Event => {
                let mut c = Box::new(EventCore::with_analysis(
                    cfg,
                    source,
                    Analysis::Own(crate::oracle::OracleBuilder::new()),
                ));
                c.load_state(&mut r)?;
                Core::Event(c)
            }
            Engine::Reference => {
                let mut c = Box::new(RefCore::with_analysis(
                    cfg,
                    source,
                    Analysis::Own(crate::oracle::OracleBuilder::new()),
                ));
                c.load_state(&mut r)?;
                Core::Reference(c)
            }
        };
        r.finish()?;
        Ok(Processor { core })
    }
}

impl std::fmt::Debug for Processor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Processor")
            .field("design", &self.config().design)
            .field("engine", &self.config().engine)
            .field("cycle", &self.cycle())
            .field("committed", &self.stats().committed)
            .field("buffered", &self.buffered_records())
            .finish_non_exhaustive()
    }
}
