//! The cycle-level out-of-order processor model.
//!
//! A 19-stage, 8-way machine driven by a golden dynamic-instruction
//! stream (oracle control-flow path, architectural addresses) pulled
//! incrementally from a [`TraceSource`] — a materialized trace, a
//! streaming program interpreter, a recorded trace file, a generator —
//! that recomputes *values* speculatively
//! through the modelled dataflow. Store-load forwarding — the subject of
//! the paper — is simulated exactly: loads obtain values from the store
//! queue or from committed memory as decided by the configured
//! [`ForwardingPolicy`], wrong values propagate to dependents, and
//! SVW-filtered pre-commit re-execution catches mis-speculations and
//! flushes.
//!
//! The pipeline itself is design-agnostic: every design-specific decision
//! is a call into the policy object resolved from
//! [`SimConfig::design`](crate::SimConfig) via the
//! [`DesignRegistry`](crate::DesignRegistry). The stages live in focused
//! submodules:
//!
//! * [`frontend`](self) — fetch, branch prediction, rename (policy
//!   touch-point 1: dependence / index prediction);
//! * [`schedule`](self) — issue selection, wakeup events, latency
//!   speculation (touch-point 2);
//! * [`lsq`](self) — execution, the SQ probe, the LQ (touch-point 3);
//! * [`commit`](self) — SVW-filtered re-execution, training, flush
//!   repair (touch-points 4 and 5).

mod commit;
mod frontend;
mod lsq;
mod schedule;
#[cfg(test)]
mod tests;
mod window;

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};

use sqip_isa::{IsaError, Trace, TraceRecord, TraceSource};
use sqip_mem::{Hierarchy, MemImage};
use sqip_predictors::BranchPredictor;
use sqip_queues::{LoadQueue, StoreQueue, Window};
use sqip_types::{Addr, DataSize, Seq, Ssn};

use crate::config::SimConfig;
use crate::dyninst::DynInst;
use crate::error::SimError;
use crate::observer::{ObserverAction, SimObserver};
use crate::oracle::OracleBuilder;
use crate::pipeline::window::{RecordWindow, SeqRing};
use crate::policy::{DesignCaps, DesignRegistry, ForwardingPolicy};
use crate::stats::SimStats;

pub(crate) const NOT_READY: u64 = u64::MAX;
/// Cycles without a commit after which the simulator declares deadlock.
const WATCHDOG_CYCLES: u64 = 500_000;

/// What a [`Processor::step`] (or [`Processor::run_until`]) left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The trace has not fully committed yet.
    Running,
    /// Every trace record has committed; statistics are final.
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum EvKind {
    /// Wakeup broadcast: consumers of this producer may now issue.
    Broadcast,
    /// Targeted wake of one waiting instruction (replay re-wake).
    Wake,
    /// Speculative wake of loads gated on a store's execution (key is the
    /// store's SSN). Fired one cycle after the store issues, so that a
    /// dependent load's SQ access lines up right behind the store's SQ
    /// write; loads that arrive early (the store replayed) replay too.
    StoreWake,
    /// The instruction reaches its execute stage.
    Exec,
}

/// The simulator.
///
/// Build one per (configuration, input) pair and call [`Processor::run`].
/// The input is any [`TraceSource`] — a materialized [`Trace`] (via
/// [`Processor::new`]), a streaming program interpreter, a recorded trace
/// file, a generator — consumed incrementally through
/// [`Processor::from_source`]: the processor buffers only the records
/// between the commit point and the fetch frontier, so run length is
/// unbounded by memory.
///
/// # Example
///
/// ```
/// use sqip_core::{Processor, SimConfig, SqDesign};
/// use sqip_isa::{trace_program, ProgramBuilder, Reg};
/// use sqip_types::DataSize;
///
/// let mut b = ProgramBuilder::new();
/// let (v, t) = (Reg::new(1), Reg::new(2));
/// b.load_imm(v, 7);
/// b.store(DataSize::Quad, v, Reg::ZERO, 0x100);
/// b.load(DataSize::Quad, t, Reg::ZERO, 0x100);
/// b.halt();
/// let trace = trace_program(&b.build()?, 100)?;
///
/// let stats = Processor::new(SimConfig::with_design(SqDesign::Indexed3FwdDly), &trace).run();
/// assert_eq!(stats.committed, trace.len() as u64);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// Streaming a program directly — no `Trace` is ever materialized, and
/// the statistics are bit-identical to the materialized run:
///
/// ```
/// use sqip_core::{Processor, SimConfig, SqDesign};
/// use sqip_isa::{ProgramBuilder, ProgramSource, Reg};
/// use sqip_types::DataSize;
///
/// let mut b = ProgramBuilder::new();
/// let (ctr, v) = (Reg::new(1), Reg::new(2));
/// b.load_imm(ctr, 1000);
/// let top = b.label("top");
/// b.store(DataSize::Quad, v, Reg::ZERO, 0x100);
/// b.load(DataSize::Quad, v, Reg::ZERO, 0x100);
/// b.add_imm(ctr, ctr, -1);
/// b.branch_nz(ctr, top);
/// b.halt();
///
/// let source = ProgramSource::new(b.build()?, 100_000);
/// let cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
/// let stats = Processor::from_source(cfg, source).try_run()?;
/// assert_eq!(stats.committed, 4 * 1000 + 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Processor<'t> {
    pub(crate) cfg: SimConfig,
    /// The pull-based record stream driving the run.
    source: Box<dyn TraceSource + 't>,
    /// Records between the commit point and the fetch frontier, with
    /// their oracle info (computed once at ingest).
    pub(crate) window: RecordWindow,
    /// The streaming oracle pass feeding `window`.
    oracle: OracleBuilder,
    /// Exact total record count: the source's up-front hint, or measured
    /// at exhaustion.
    total_records: Option<u64>,
    /// Whether the source has returned `None`.
    source_done: bool,
    /// A source failure, held until [`Processor::step`] surfaces it.
    source_error: Option<IsaError>,

    pub(crate) cycle: u64,
    pub(crate) incarnation: u64,
    pub(crate) last_commit_cycle: u64,

    // ---- front end ----
    pub(crate) fetch_idx: usize,
    pub(crate) fetch_stall_until: u64,
    /// Mispredicted branch whose resolution fetch is waiting for.
    pub(crate) pending_redirect: Option<Seq>,
    /// Fetched instructions awaiting rename: (seq, rename-eligible cycle,
    /// fetch-time path history snapshot).
    pub(crate) front_q: std::collections::VecDeque<(Seq, u64, u64)>,
    /// Branch-outcome path history at fetch (for path-qualified FSP).
    pub(crate) path_history: u64,

    // ---- rename ----
    pub(crate) ssn_ren: Ssn,
    pub(crate) rename_map: [Option<Seq>; sqip_isa::NUM_REGS],
    pub(crate) committed_regs: [u64; sqip_isa::NUM_REGS],
    /// Waiting for the ROB to drain before wrapping the SSN space.
    pub(crate) draining_for_wrap: bool,

    // ---- backend ----
    pub(crate) rob: Window<Seq>,
    pub(crate) insts: HashMap<u64, DynInst>,
    pub(crate) iq_count: usize,
    pub(crate) ready_q: BTreeSet<u64>,
    pub(crate) events: BinaryHeap<Reverse<(u64, EvKind, u64, u64)>>,
    /// Producer seq -> consumers waiting for its wakeup broadcast.
    pub(crate) wake_on_value: HashMap<u64, Vec<u64>>,
    /// Store SSN -> loads waiting for it to execute (forwarding dependence).
    /// Drained speculatively when the store issues (StoreWake).
    pub(crate) wake_on_store_exec: HashMap<u64, Vec<u64>>,
    /// Store SSN -> loads that already replayed once chasing this store;
    /// drained only when the store actually executes (no more speculative
    /// wakes, breaking replay cascades).
    pub(crate) wake_on_store_exec_strict: HashMap<u64, Vec<u64>>,
    /// Store SSN -> loads waiting for it to commit (delay / partial hit).
    pub(crate) wake_on_store_commit: BTreeMap<u64, Vec<u64>>,

    // ---- dense per-seq value state (survives commit; slots reset as
    // their sequence numbers re-enter rename) ----
    pub(crate) vals: SeqRing,

    // ---- memory system ----
    pub(crate) sq: StoreQueue,
    pub(crate) lq: LoadQueue,
    pub(crate) hierarchy: Hierarchy,
    pub(crate) commit_mem: MemImage,
    pub(crate) ssn_cmt: Ssn,

    // ---- design policy + design-independent branch prediction ----
    /// The store-queue design under test: predictor state + decisions at
    /// the five pipeline touch-points.
    pub(crate) policy: Box<dyn ForwardingPolicy>,
    /// The policy's capabilities, cached at construction for hot paths.
    pub(crate) caps: DesignCaps,
    pub(crate) bp: BranchPredictor,

    pub(crate) stats: SimStats,
}

impl<'t> Processor<'t> {
    /// Builds a processor for one run over `trace`, validating the
    /// configuration.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if the configuration is inconsistent
    /// (see [`SimConfig::try_validate`]).
    pub fn try_new(cfg: SimConfig, trace: &'t Trace) -> Result<Processor<'t>, SimError> {
        Processor::try_from_source(cfg, trace.stream())
    }

    /// Builds a processor for one run over `trace`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`SimConfig::validate`]).
    #[must_use]
    pub fn new(cfg: SimConfig, trace: &'t Trace) -> Processor<'t> {
        Processor::from_source(cfg, trace.stream())
    }

    /// Builds a processor over any [`TraceSource`], validating the
    /// configuration. Records are pulled on demand and only an
    /// O(window)-sized span is ever buffered (see
    /// [`Processor::buffered_records`]), so sources of unbounded length
    /// simulate in bounded memory.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if the configuration is inconsistent
    /// (see [`SimConfig::try_validate`]).
    pub fn try_from_source(
        cfg: SimConfig,
        source: impl TraceSource + 't,
    ) -> Result<Processor<'t>, SimError> {
        cfg.try_validate()?;
        Ok(Processor::new_unchecked(cfg, source))
    }

    /// Builds a processor over any [`TraceSource`] (see
    /// [`Processor::try_from_source`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`SimConfig::validate`]).
    #[must_use]
    pub fn from_source(cfg: SimConfig, source: impl TraceSource + 't) -> Processor<'t> {
        cfg.validate();
        Processor::new_unchecked(cfg, source)
    }

    fn new_unchecked(cfg: SimConfig, source: impl TraceSource + 't) -> Processor<'t> {
        let policy = DesignRegistry::global()
            .instantiate(cfg.design, &cfg)
            .expect("design resolved during config validation");
        let caps = policy.caps();
        Processor {
            total_records: source.len_hint(),
            source: Box::new(source),
            window: RecordWindow::default(),
            oracle: OracleBuilder::new(),
            source_done: false,
            source_error: None,
            cycle: 0,
            incarnation: 0,
            last_commit_cycle: 0,
            fetch_idx: 0,
            fetch_stall_until: 0,
            pending_redirect: None,
            front_q: std::collections::VecDeque::new(),
            path_history: 0,
            ssn_ren: Ssn::NONE,
            rename_map: [None; sqip_isa::NUM_REGS],
            committed_regs: [0; sqip_isa::NUM_REGS],
            draining_for_wrap: false,
            rob: Window::new(cfg.rob_size),
            insts: HashMap::new(),
            iq_count: 0,
            ready_q: BTreeSet::new(),
            events: BinaryHeap::new(),
            wake_on_value: HashMap::new(),
            wake_on_store_exec: HashMap::new(),
            wake_on_store_exec_strict: HashMap::new(),
            wake_on_store_commit: BTreeMap::new(),
            vals: SeqRing::new(cfg.rob_size, cfg.fetch_width),
            sq: StoreQueue::new(cfg.sq_size),
            lq: LoadQueue::new(cfg.lq_size),
            hierarchy: Hierarchy::new(cfg.hierarchy),
            commit_mem: MemImage::new(),
            ssn_cmt: Ssn::NONE,
            bp: BranchPredictor::new(cfg.branch),
            policy,
            caps,
            stats: SimStats::default(),
            cfg,
        }
    }

    /// Whether the whole record stream has committed. Until the source is
    /// exhausted (or declared an exact length up front) the total is
    /// unknown and this is `false`.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.total_records
            .is_some_and(|total| self.stats.committed >= total)
    }

    /// Records currently buffered between the commit point and the fetch
    /// frontier. Bounded by the machine's window (ROB + fetch-ahead), not
    /// by the input length — the memory-boundedness guarantee of the
    /// streaming input API, pinned by a regression test.
    #[must_use]
    pub fn buffered_records(&self) -> usize {
        self.window.len()
    }

    /// The current cycle number.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The statistics accumulated so far. [`Processor::step`] folds the
    /// cycle count and cache counters in after every cycle, so the view
    /// is consistent mid-run.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The committed architectural value of register `r` (used by
    /// cross-design equivalence tests: every sound policy must retire the
    /// same architectural state).
    #[must_use]
    pub fn committed_reg(&self, r: sqip_isa::Reg) -> u64 {
        self.committed_regs[r.index()]
    }

    /// Reads the committed memory image — the architectural memory state
    /// built by retired stores.
    #[must_use]
    pub fn committed_mem(&self, addr: Addr, size: DataSize) -> u64 {
        self.commit_mem.read(addr, size)
    }

    /// Folds the hierarchy counters and cycle count into `stats` so the
    /// snapshot is consistent at any point of the run. Idempotent.
    fn sync_stats(&mut self) {
        self.stats.cycles = self.cycle;
        self.stats.l1 = self.hierarchy.l1_stats();
        self.stats.l2 = self.hierarchy.l2_stats();
        self.stats.tlb = self.hierarchy.tlb_stats();
    }

    /// Simulates one cycle.
    ///
    /// Returns [`StepOutcome::Done`] once the whole trace has committed
    /// (further calls are no-ops that keep returning `Done`).
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if no instruction has committed for an
    /// implausibly long time — a simulator bug, not a program property —
    /// and [`SimError::TraceSource`] if the trace source fails mid-stream
    /// (I/O error, corrupt trace file, interpreter fault).
    pub fn step(&mut self) -> Result<StepOutcome, SimError> {
        if self.is_done() {
            self.sync_stats();
            return Ok(StepOutcome::Done);
        }
        self.cycle += 1;
        self.commit_stage();
        self.process_events();
        self.issue_stage();
        self.rename_stage();
        self.fetch_stage();
        self.sync_stats();
        if let Some(source) = &self.source_error {
            return Err(SimError::TraceSource {
                pulled: self.window.end(),
                detail: source.to_string(),
            });
        }
        if self.is_done() {
            return Ok(StepOutcome::Done);
        }
        if self.cycle - self.last_commit_cycle >= WATCHDOG_CYCLES {
            return Err(self.deadlock_error());
        }
        Ok(StepOutcome::Running)
    }

    /// Runs until the trace commits fully or `cycle_limit` is reached,
    /// whichever comes first.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Deadlock`] from [`Processor::step`].
    pub fn run_until(&mut self, cycle_limit: u64) -> Result<StepOutcome, SimError> {
        while self.cycle < cycle_limit {
            if self.step()? == StepOutcome::Done {
                return Ok(StepOutcome::Done);
            }
        }
        Ok(if self.is_done() {
            StepOutcome::Done
        } else {
            StepOutcome::Running
        })
    }

    /// Runs the trace to completion and returns the statistics.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if the pipeline stops committing.
    pub fn try_run(mut self) -> Result<SimStats, SimError> {
        while self.step()? == StepOutcome::Running {}
        Ok(self.stats)
    }

    /// Runs to completion with observation hooks: `observer` is started
    /// before the first cycle, called every [`SimObserver::interval`]
    /// cycles, and may abort the run early (the partial statistics are
    /// returned, with `committed < trace.len()`).
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if the pipeline stops committing.
    pub fn run_observed<O: SimObserver + ?Sized>(
        mut self,
        observer: &mut O,
    ) -> Result<SimStats, SimError> {
        let len_hint = self.total_records.map(|n| n as usize);
        observer.on_start(&self.cfg, len_hint);
        let interval = observer.interval().max(1);
        while self.step()? == StepOutcome::Running {
            if self.cycle.is_multiple_of(interval)
                && observer.on_interval(self.cycle, &self.stats) == ObserverAction::Abort
            {
                return Ok(self.stats);
            }
        }
        observer.on_finish(&self.stats);
        Ok(self.stats)
    }

    /// Runs the trace to completion and returns the statistics.
    ///
    /// This is the legacy convenience wrapper around
    /// [`Processor::try_run`].
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks (no commit for a long time), which
    /// indicates a simulator bug rather than a program property.
    #[must_use]
    pub fn run(self) -> SimStats {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    fn deadlock_error(&self) -> SimError {
        let head = self.rob.front().map(|&s| {
            let i = &self.insts[&s.0];
            format!(
                "head {} op={} state={:?} gates={} fwd={} dly={} wait_exec={:?} prev={} ssn_cmt={}",
                s.0,
                self.rec(s).op,
                i.state,
                i.gates,
                i.ssn_fwd,
                i.ssn_dly,
                i.wait_exec_ssn,
                i.prev_store_ssn,
                self.ssn_cmt
            )
        });
        SimError::Deadlock {
            cycle: self.cycle,
            committed: self.stats.committed,
            detail: format!(
                "fetch_idx {}, rob {}, iq {}, head {:?}",
                self.fetch_idx,
                self.rob.len(),
                self.iq_count,
                head
            ),
        }
    }

    pub(crate) fn rec(&self, seq: Seq) -> &TraceRecord {
        self.window.rec(seq)
    }

    /// The record at `fetch_idx`, pulling from the source as needed.
    /// Returns `None` when the stream is exhausted (or has failed — the
    /// error surfaces from [`Processor::step`]).
    pub(crate) fn fetch_record(&mut self) -> Option<TraceRecord> {
        let seq = self.fetch_idx as u64;
        while seq >= self.window.end() {
            if self.source_done || self.source_error.is_some() {
                return None;
            }
            match self.source.next_record() {
                Ok(Some(mut rec)) => {
                    // Consumers own the numbering: records are sequential
                    // in pull order whatever the source put in `seq`.
                    rec.seq = Seq(self.window.end());
                    let fwd = self.oracle.ingest(&rec);
                    self.window.push(rec, fwd);
                }
                Ok(None) => {
                    self.source_done = true;
                    self.total_records = Some(self.window.end());
                    return None;
                }
                Err(e) => {
                    self.source_error = Some(e);
                    return None;
                }
            }
        }
        Some(*self.window.rec(Seq(seq)))
    }
}

impl std::fmt::Debug for Processor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Processor")
            .field("design", &self.cfg.design)
            .field("cycle", &self.cycle)
            .field("committed", &self.stats.committed)
            .field("pulled", &self.window.end())
            .field("buffered", &self.window.len())
            .finish_non_exhaustive()
    }
}
