//! Pipeline unit tests (moved from the pre-split `processor.rs`).

use sqip_isa::Trace;

use crate::config::{SimConfig, SqDesign};
use crate::pipeline::Processor;
use crate::stats::SimStats;

mod behaviour {
    use super::*;
    use sqip_isa::{trace_program, ProgramBuilder, Reg};
    use sqip_types::DataSize;

    fn run_design(design: SqDesign, trace: &Trace) -> SimStats {
        Processor::new(SimConfig::with_design(design), trace).run()
    }

    /// st/ld to the same address every iteration: classic forwarding.
    fn forwarding_loop(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new();
        let (ctr, v, t) = (Reg::new(1), Reg::new(2), Reg::new(3));
        b.load_imm(ctr, iters);
        b.load_imm(v, 7);
        let top = b.label("top");
        b.add_imm(v, v, 3);
        b.store(DataSize::Quad, v, Reg::ZERO, 0x100);
        b.load(DataSize::Quad, t, Reg::ZERO, 0x100);
        b.add(t, t, v); // consume the loaded value
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        trace_program(&b.build().unwrap(), 1_000_000).unwrap()
    }

    /// The paper's not-most-recent pathology: X[i] = A * X[i-2].
    fn not_most_recent_loop(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new();
        let (ctr, ptr, x, y) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
        b.load_imm(ctr, iters);
        b.load_imm(ptr, 0x1000);
        // Seed X[0], X[1].
        b.load_imm(x, 1);
        b.store(DataSize::Quad, x, ptr, 0);
        b.store(DataSize::Quad, x, ptr, 8);
        let top = b.label("top");
        b.load(DataSize::Quad, y, ptr, 0); // X[i-2]
        b.mul_imm(y, y, 3); // A * X[i-2]
        b.store(DataSize::Quad, y, ptr, 16); // X[i]
        b.add_imm(ptr, ptr, 8);
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        trace_program(&b.build().unwrap(), 1_000_000).unwrap()
    }

    /// Pointer-chase over a large ring: cache misses, no forwarding.
    fn pointer_chase(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new();
        let (ctr, p) = (Reg::new(1), Reg::new(2));
        // Build a ring of 4096 nodes, stride 1 page to defeat the L1/TLB.
        let nodes = 512i64;
        b.load_imm(ctr, nodes);
        b.load_imm(p, 0x10_0000);
        let init = b.label("init");
        {
            let (nxt,) = (Reg::new(3),);
            b.add_imm(nxt, p, 4096);
            b.store(DataSize::Quad, nxt, p, 0);
            b.add_imm(p, p, 4096);
            b.add_imm(ctr, ctr, -1);
            b.branch_nz(ctr, init);
        }
        // Close the ring.
        let last = 0x10_0000 + (nodes - 1) * 4096;
        let (head,) = (Reg::new(3),);
        b.load_imm(head, 0x10_0000);
        b.load_imm(p, last);
        b.store(DataSize::Quad, head, p, 0);
        // Chase.
        b.load_imm(ctr, iters);
        b.load_imm(p, 0x10_0000);
        let top = b.label("chase");
        b.load(DataSize::Quad, p, p, 0);
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        trace_program(&b.build().unwrap(), 10_000_000).unwrap()
    }

    #[test]
    fn all_designs_complete_a_forwarding_loop() {
        let trace = forwarding_loop(200);
        for design in SqDesign::ALL {
            let stats = run_design(design, &trace);
            assert_eq!(
                stats.committed,
                trace.len() as u64,
                "{design} must commit the whole trace"
            );
            assert!(stats.cycles > 0);
        }
    }

    #[test]
    fn ideal_oracle_never_flushes() {
        let trace = not_most_recent_loop(300);
        let stats = run_design(SqDesign::IdealOracle, &trace);
        assert_eq!(stats.flushes, 0, "oracle scheduling never violates");
        assert_eq!(stats.mis_forwards, 0);
    }

    #[test]
    fn indexed_design_learns_to_forward() {
        let trace = forwarding_loop(500);
        let stats = run_design(SqDesign::Indexed3FwdDly, &trace);
        // After the first training flush, every iteration's load forwards.
        assert!(
            stats.loads_forwarded > 400,
            "expected most loads to forward, got {}",
            stats.loads_forwarded
        );
        assert!(
            stats.mis_forwards <= 3,
            "steady-state forwarding should flush at most a couple of times, got {}",
            stats.mis_forwards
        );
    }

    #[test]
    fn associative_designs_forward_without_training_flushes() {
        let trace = forwarding_loop(300);
        let stats = run_design(SqDesign::Associative3, &trace);
        assert!(stats.loads_forwarded > 250);
        // The associative SQ always finds the right store once scheduling
        // is reasonable; a handful of early ordering violations may occur.
        assert!(stats.mis_forwards <= 3, "got {}", stats.mis_forwards);
    }

    #[test]
    fn delay_prediction_tames_not_most_recent_forwarding() {
        let trace = not_most_recent_loop(800);
        let fwd = run_design(SqDesign::Indexed3Fwd, &trace);
        let dly = run_design(SqDesign::Indexed3FwdDly, &trace);
        assert!(
            fwd.mis_forwards > 5,
            "raw indexed forwarding should flush repeatedly on X[i]=A*X[i-2], got {}",
            fwd.mis_forwards
        );
        assert!(
            dly.mis_forwards * 5 < fwd.mis_forwards,
            "delay prediction should remove most flushes ({} vs {})",
            dly.mis_forwards,
            fwd.mis_forwards
        );
        assert!(dly.loads_delayed > 0, "delays must actually be applied");
        // Delay converts the flush penalty into a (usually smaller, but per
        // the paper not universally smaller — it degrades 6 of 47 programs)
        // delay penalty; require it to stay in the same ballpark here and
        // leave the aggregate comparison to the Figure 4 harness.
        assert!(
            (dly.cycles as f64) < fwd.cycles as f64 * 1.25,
            "delay penalty must stay comparable to the flush penalty ({} vs {})",
            dly.cycles,
            fwd.cycles
        );
    }

    #[test]
    fn values_stay_architectural_across_designs() {
        // The debug_assert in commit_store cross-checks every committed
        // store against the golden trace; run a value-heavy program under
        // every design to exercise it.
        let trace = not_most_recent_loop(200);
        for design in SqDesign::ALL {
            let stats = run_design(design, &trace);
            assert_eq!(stats.committed, trace.len() as u64, "{design}");
        }
    }

    #[test]
    fn cache_misses_trigger_replays() {
        let trace = pointer_chase(2000);
        let stats = run_design(SqDesign::Indexed3FwdDly, &trace);
        assert!(
            stats.l1.misses > 500,
            "page-stride pointer chase must miss, got {:?}",
            stats.l1
        );
        assert!(
            stats.replays > 100,
            "consumers of missing loads must replay, got {}",
            stats.replays
        );
        assert_eq!(stats.mis_forwards, 0, "no forwarding in a pure chase");
    }

    /// acc round-trips through memory every iteration, so SQ forwarding
    /// latency sits on the program's critical path; an independent fdiv
    /// drip keeps the ROB head busy so stores linger in the SQ (otherwise
    /// a lone two-instruction loop commits stores before adjacent loads
    /// reach their SQ access and nothing ever forwards).
    fn serial_forwarding_loop(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new();
        let (ctr, acc, f) = (Reg::new(1), Reg::new(2), Reg::new(5));
        b.load_imm(ctr, iters);
        b.load_imm(acc, 1);
        b.load_imm(f, 12345);
        let top = b.label("top");
        b.fdiv(f, f, f);
        b.store(DataSize::Quad, acc, Reg::ZERO, 0x100);
        b.load(DataSize::Quad, acc, Reg::ZERO, 0x100);
        b.add_imm(acc, acc, 3);
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        trace_program(&b.build().unwrap(), 1_000_000).unwrap()
    }

    #[test]
    fn slow_associative_sq_is_slower_on_forwarding_code() {
        let trace = serial_forwarding_loop(500);
        let fast = run_design(SqDesign::Associative3, &trace);
        let slow = run_design(SqDesign::Associative5Replay, &trace);
        assert!(
            slow.cycles > fast.cycles,
            "5-cycle SQ must cost cycles on forwarding-heavy code ({} vs {})",
            slow.cycles,
            fast.cycles
        );
        assert!(
            slow.replays > fast.replays,
            "forwarded loads replay dependents"
        );
    }

    #[test]
    fn forward_latency_prediction_cuts_replays() {
        let trace = serial_forwarding_loop(500);
        let replay = run_design(SqDesign::Associative5Replay, &trace);
        let fwdpred = run_design(SqDesign::Associative5FwdPred, &trace);
        assert!(
            fwdpred.replays < replay.replays,
            "predicting forwarders avoids replays ({} vs {})",
            fwdpred.replays,
            replay.replays
        );
    }

    /// The registry extension the closed enum could not express: the
    /// indexed scheme at a 5-cycle SQ. It must behave like an indexed
    /// design (forwarding via index prediction) while paying the slower
    /// SQ on forwarding-critical code.
    #[test]
    fn registry_extension_indexed_5_behaves_like_a_slow_indexed_sq() {
        let design: SqDesign = "indexed-5-fwd+dly".parse().expect("extension registered");
        let trace = serial_forwarding_loop(500);
        let fast = run_design(SqDesign::Indexed3FwdDly, &trace);
        let slow = run_design(design, &trace);
        assert_eq!(slow.committed, trace.len() as u64);
        assert!(
            slow.loads_forwarded > 100,
            "the indexed-5 design still forwards, got {}",
            slow.loads_forwarded
        );
        assert!(
            slow.cycles > fast.cycles,
            "a 5-cycle indexed SQ must cost cycles on forwarding-heavy code ({} vs {})",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn branch_mispredicts_are_counted() {
        // A data-dependent unpredictable-ish branch: alternating pattern is
        // actually learnable by gshare, so use a short loop with a final
        // fall-through that mispredicts once per run at most; just sanity
        // check counters move.
        let trace = forwarding_loop(100);
        let stats = run_design(SqDesign::Indexed3FwdDly, &trace);
        assert!(stats.branches > 90);
        assert!(stats.branch_mispredicts <= stats.branches);
    }

    #[test]
    fn svw_filter_limits_reexecution() {
        let trace = forwarding_loop(500);
        let stats = run_design(SqDesign::Indexed3FwdDly, &trace);
        assert!(
            stats.re_executions <= stats.naive_reexec_candidates + stats.mis_forwards,
            "SVW must not re-execute more than the naive rule ({} vs {})",
            stats.re_executions,
            stats.naive_reexec_candidates
        );
    }

    #[test]
    fn ipc_ordering_matches_the_paper() {
        // ideal >= indexed+dly, and every design completes with sane IPC.
        let trace = forwarding_loop(1000);
        let ideal = run_design(SqDesign::IdealOracle, &trace);
        let dly = run_design(SqDesign::Indexed3FwdDly, &trace);
        assert!(
            ideal.cycles <= dly.cycles,
            "oracle must be at least as fast ({} vs {})",
            ideal.cycles,
            dly.cycles
        );
        assert!(
            ideal.ipc() > 0.5,
            "8-wide machine should sustain decent IPC"
        );
    }

    #[test]
    fn ssn_wrap_drains_cleanly() {
        let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
        cfg.ssn_bits = 8; // wrap every 256 stores
        let trace = forwarding_loop(600); // 600 stores => 2 wraps
        let stats = Processor::new(cfg, &trace).run();
        assert_eq!(stats.committed, trace.len() as u64);
        assert_eq!(stats.ssn_wraps, 2);
    }

    #[test]
    fn partial_forwarding_stalls_associative_loads() {
        // Word store, quad load overlapping it: partial hit.
        let mut b = ProgramBuilder::new();
        let (ctr, v, t) = (Reg::new(1), Reg::new(2), Reg::new(3));
        b.load_imm(ctr, 50);
        b.load_imm(v, 0xAB);
        let top = b.label("top");
        b.store(DataSize::Word, v, Reg::ZERO, 0x100);
        b.load(DataSize::Quad, t, Reg::ZERO, 0x100);
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        let trace = trace_program(&b.build().unwrap(), 100_000).unwrap();
        let stats = run_design(SqDesign::Associative3, &trace);
        assert_eq!(stats.committed, trace.len() as u64);
        assert!(stats.partial_stalls > 10, "got {}", stats.partial_stalls);
        // The very first iteration may take an ordering violation before
        // the FSP learns the dependence; after that, loads stall instead.
        assert!(
            stats.mis_forwards <= 2,
            "stall, not mis-speculate: {}",
            stats.mis_forwards
        );
    }

    #[test]
    fn empty_like_program_terminates() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let trace = trace_program(&b.build().unwrap(), 10).unwrap();
        let stats = run_design(SqDesign::Indexed3FwdDly, &trace);
        assert_eq!(stats.committed, 1);
        assert_eq!(stats.loads, 0);
    }
}

mod ordering_tests {
    use super::*;
    use crate::config::OrderingMode;
    use sqip_isa::{trace_program, ProgramBuilder, Reg};
    use sqip_types::DataSize;

    /// A loop guaranteed to produce early-load ordering hazards: the store
    /// data depends on a long fdiv chain, so unscheduled loads race it.
    fn hazard_loop(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new();
        let (ctr, f, t) = (Reg::new(1), Reg::new(2), Reg::new(3));
        b.load_imm(ctr, iters);
        b.load_imm(f, 12345);
        let top = b.label("top");
        b.fdiv(f, f, f); // slow producer
        b.add_imm(f, f, 1); // keep the value nonzero and changing
        b.store(DataSize::Quad, f, Reg::ZERO, 0x800);
        b.load(DataSize::Quad, t, Reg::ZERO, 0x800);
        b.xor(t, t, f);
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        trace_program(&b.build().unwrap(), 1_000_000).unwrap()
    }

    fn cam_config(design: SqDesign) -> SimConfig {
        let mut cfg = SimConfig::with_design(design);
        cfg.ordering = OrderingMode::LqCam;
        cfg
    }

    #[test]
    fn lq_cam_detects_and_recovers_from_violations() {
        let trace = hazard_loop(300);
        let stats = Processor::new(cam_config(SqDesign::Associative3), &trace).run();
        // The debug assertions in commit_store verify every committed store
        // against the golden trace, so completion here means the partial
        // squash restored a consistent machine state every time.
        assert_eq!(stats.committed, trace.len() as u64);
        assert!(
            stats.flushes > 0,
            "the hazard loop must violate at least once"
        );
        assert_eq!(stats.re_executions, 0, "LQ CAM mode never re-executes");
    }

    #[test]
    fn lq_cam_matches_svw_results_on_all_associative_designs() {
        let trace = hazard_loop(300);
        for design in [
            SqDesign::IdealOracle,
            SqDesign::Associative3StoreSets,
            SqDesign::Associative3,
            SqDesign::Associative5Replay,
            SqDesign::Associative5FwdPred,
        ] {
            let cam = Processor::new(cam_config(design), &trace).run();
            let svw = Processor::new(SimConfig::with_design(design), &trace).run();
            assert_eq!(cam.committed, trace.len() as u64, "{design} (cam)");
            assert_eq!(svw.committed, trace.len() as u64, "{design} (svw)");
        }
    }

    #[test]
    fn lq_cam_flushes_less_work_than_full_pipeline_flush() {
        // A CAM violation squashes from the offending load, not the whole
        // window, so it should squash less work per flush on average.
        let trace = hazard_loop(400);
        let cam = Processor::new(cam_config(SqDesign::Associative3), &trace).run();
        let svw = Processor::new(SimConfig::with_design(SqDesign::Associative3), &trace).run();
        if cam.flushes > 0 && svw.flushes > 0 {
            let cam_per = cam.squashed as f64 / cam.flushes as f64;
            let svw_per = svw.squashed as f64 / svw.flushes as f64;
            assert!(
                cam_per <= svw_per * 1.1,
                "partial squash should not discard more than a commit-point flush ({cam_per:.0} vs {svw_per:.0})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "wrong-entry forwarding")]
    fn lq_cam_rejects_indexed_designs() {
        let trace = hazard_loop(10);
        let _ = Processor::new(cam_config(SqDesign::Indexed3FwdDly), &trace).run();
    }

    #[test]
    #[should_panic(expected = "wrong-entry forwarding")]
    fn lq_cam_rejects_registry_extension_indexed_designs() {
        // Config validation is capability-driven, so it rejects *any*
        // registered indexed design — including ones added after the fact.
        let design: SqDesign = "indexed-5-fwd+dly".parse().unwrap();
        let trace = hazard_loop(10);
        let _ = Processor::new(cam_config(design), &trace).run();
    }

    #[test]
    fn original_store_sets_learns_to_schedule() {
        let trace = hazard_loop(400);
        let stats = Processor::new(
            SimConfig::with_design(SqDesign::Associative3StoreSets),
            &trace,
        )
        .run();
        assert_eq!(stats.committed, trace.len() as u64);
        // After the first few violations the SSIT/LFST pair gates the load
        // behind the store and violations stop.
        assert!(
            stats.mis_forwards < 20,
            "store sets must learn the dependence, got {} violations",
            stats.mis_forwards
        );
        assert!(stats.loads_forwarded > 200, "and the load then forwards");
    }

    #[test]
    fn original_and_reformulated_store_sets_are_comparable() {
        // §4.4: "in many other cases our formulation slightly outperforms
        // the original" — they should land within a few percent of each
        // other on well-behaved code.
        let trace = hazard_loop(400);
        let orig = Processor::new(
            SimConfig::with_design(SqDesign::Associative3StoreSets),
            &trace,
        )
        .run();
        let reform = Processor::new(SimConfig::with_design(SqDesign::Associative3), &trace).run();
        let ratio = orig.cycles as f64 / reform.cycles as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "formulations should be comparable, got ratio {ratio:.3}"
        );
    }
}

mod path_tests {
    use super::*;
    use sqip_isa::{trace_program, ProgramBuilder, Reg};
    use sqip_types::DataSize;

    /// One load fed by two static stores selected by an alternating branch:
    /// a 1-way (direct-mapped) FSP thrashes between the two dependences,
    /// but with path bits the two paths index different sets and each can
    /// hold its own store.
    fn branch_selected_producer(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new();
        let (ctr, par, v, t) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
        b.load_imm(ctr, iters);
        b.load_imm(v, 5);
        let top = b.label("top");
        b.add_imm(v, v, 1);
        b.and(par, ctr, Reg::new(5)); // parity selector (r5 = 1, prepended)
        b.branch_nz_to(par, "odd");
        b.store(DataSize::Quad, v, Reg::ZERO, 0xA80); // even-path store
        b.jump_to("join");
        b.place("odd");
        b.store(DataSize::Quad, v, Reg::ZERO, 0xA80); // odd-path store
        b.place("join");
        b.load(DataSize::Quad, t, Reg::ZERO, 0xA80);
        b.xor(t, t, v);
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        // Prepend mask setup by rebuilding: simplest to set r5 in a fresh builder.
        let inner = b.build().unwrap();
        let mut outer = ProgramBuilder::new();
        outer.load_imm(Reg::new(5), 1);
        for (_, inst) in inner.iter() {
            let mut i = *inst;
            // shift branch/jump targets by 1 for the prepended instruction
            if i.op.is_branch() && !matches!(i.op, sqip_isa::Op::Ret) {
                i.imm += 1;
            }
            outer.emit(i);
        }
        let p = outer.build().unwrap();
        trace_program(&p, 1_000_000).unwrap()
    }

    #[test]
    fn path_bits_rescue_a_direct_mapped_fsp() {
        let trace = branch_selected_producer(600);
        let run = |path_bits: u32| {
            let mut cfg = SimConfig::with_design(SqDesign::Indexed3Fwd);
            cfg.fsp.ways = 1; // direct-mapped: one dependence per set
            cfg.fsp.path_bits = path_bits;
            Processor::new(cfg, &trace).run()
        };
        let flat = run(0);
        let pathful = run(4);
        assert_eq!(flat.committed, trace.len() as u64);
        assert_eq!(pathful.committed, trace.len() as u64);
        assert!(
            pathful.loads_forwarded > flat.loads_forwarded,
            "path-qualified FSP should separate the two producers: {} vs {}",
            pathful.loads_forwarded,
            flat.loads_forwarded
        );
    }

    #[test]
    fn path_bits_zero_is_the_default_design() {
        // Sanity: path_bits = 0 must behave identically to the plain API.
        let trace = branch_selected_producer(200);
        let a = Processor::new(SimConfig::with_design(SqDesign::Indexed3FwdDly), &trace).run();
        let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
        cfg.fsp.path_bits = 0;
        let b = Processor::new(cfg, &trace).run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.mis_forwards, b.mis_forwards);
    }
}

mod engine_tests {
    use super::*;
    use crate::config::Engine;
    use crate::observer::{ObserverAction, SimObserver};
    use sqip_isa::{trace_program, ProgramBuilder, Reg};
    use sqip_types::DataSize;

    /// A forwarding loop with enough cache-missing work for the event
    /// engine to actually skip cycles.
    fn observed_workload() -> Trace {
        let mut b = ProgramBuilder::new();
        let (ctr, v, t, p) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
        b.load_imm(ctr, 400);
        b.load_imm(p, 0x10_0000);
        let top = b.label("top");
        b.store(DataSize::Quad, v, Reg::ZERO, 0x100);
        b.load(DataSize::Quad, t, Reg::ZERO, 0x100);
        b.load(DataSize::Quad, v, p, 0); // cold, page-strided: misses
        b.add_imm(p, p, 4096);
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        trace_program(&b.build().unwrap(), 1_000_000).unwrap()
    }

    /// Records every interval callback: (cycle, cycles-stat, committed).
    struct Recorder {
        interval: u64,
        samples: Vec<(u64, u64, u64)>,
        abort_after: Option<usize>,
    }

    impl SimObserver for Recorder {
        fn interval(&self) -> u64 {
            self.interval
        }
        fn on_interval(&mut self, cycle: u64, stats: &SimStats) -> ObserverAction {
            self.samples.push((cycle, stats.cycles, stats.committed));
            if self.abort_after.is_some_and(|n| self.samples.len() >= n) {
                ObserverAction::Abort
            } else {
                ObserverAction::Continue
            }
        }
    }

    fn observe(engine: Engine, interval: u64, abort_after: Option<usize>) -> (Recorder, SimStats) {
        let trace = observed_workload();
        let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
        cfg.engine = engine;
        let mut rec = Recorder {
            interval,
            samples: Vec::new(),
            abort_after,
        };
        let stats = Processor::new(cfg, &trace)
            .run_observed(&mut rec)
            .expect("run completes");
        (rec, stats)
    }

    /// Negative path for skip-ahead: interval boundaries land *between*
    /// active cycles, so the event engine must cap its jumps to stop on
    /// each boundary exactly — observers see the same cycle numbers and
    /// the same per-interval statistics as under the reference stepper,
    /// including boundaries falling inside long idle stretches.
    #[test]
    fn skip_ahead_lands_exactly_on_observer_interval_boundaries() {
        for interval in [1, 7, 100, 1000] {
            let (ev, ev_stats) = observe(Engine::Event, interval, None);
            let (rf, rf_stats) = observe(Engine::Reference, interval, None);
            assert_eq!(ev_stats, rf_stats, "final stats diverge @{interval}");
            assert_eq!(
                ev.samples, rf.samples,
                "per-interval observer snapshots diverge @{interval}"
            );
            for &(cycle, cycles_stat, _) in &ev.samples {
                assert_eq!(cycle % interval, 0, "callback off the boundary");
                assert_eq!(cycle, cycles_stat, "stats snapshot inconsistent");
            }
        }
    }

    /// Early abort from an observer stops both engines at the same
    /// boundary with identical partial statistics.
    #[test]
    fn observer_abort_is_engine_invariant() {
        let (ev, ev_stats) = observe(Engine::Event, 50, Some(3));
        let (rf, rf_stats) = observe(Engine::Reference, 50, Some(3));
        assert_eq!(ev.samples.len(), 3);
        assert_eq!(ev.samples, rf.samples);
        assert_eq!(ev_stats, rf_stats);
        assert!(
            ev_stats.committed < observed_workload().len() as u64,
            "abort really cut the run short"
        );
    }

    /// Negative path for the event wheel, end to end: a zero-cycle
    /// issue-to-execute stage makes the pipeline request execute events
    /// for the *current* cycle — "in the past" by the time the wheel sees
    /// them. The wheel clamps them to the next cycle in reference-heap
    /// order; both engines must agree bit-for-bit.
    #[test]
    fn zero_latency_schedule_events_in_the_past_match_reference() {
        let trace = observed_workload();
        let run = |engine: Engine| {
            let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
            cfg.issue_to_exec = 0;
            cfg.engine = engine;
            Processor::new(cfg, &trace)
                .try_run()
                .expect("run completes")
        };
        assert_eq!(run(Engine::Event), run(Engine::Reference));
    }

    /// Negative path for the fused scheduler's liveness exemption:
    /// replay-heavy code under constant branch mispredicts leaves stale
    /// Exec/Wake/broadcast entries in the near rings and on the wheel
    /// after every squash, and replays re-register waiters while those
    /// stale events still drain. The incarnation checks (and cleared
    /// waiter rings) must make every stale delivery a no-op: fused,
    /// wheel-only and reference runs stay bit-identical, with the
    /// squash + replay traffic provably present.
    #[test]
    fn replay_while_squashed_drops_stale_events_in_every_shape() {
        let mut b = ProgramBuilder::new();
        let (ctr, v, t, p, c, one) = (
            Reg::new(1),
            Reg::new(2),
            Reg::new(3),
            Reg::new(4),
            Reg::new(5),
            Reg::new(6),
        );
        b.load_imm(ctr, 300);
        b.load_imm(p, 0x20_0000);
        b.load_imm(one, 1);
        let top = b.label("top");
        // A cold strided load (misses, replays its consumers) feeding a
        // data-dependent branch (mispredicts, squashes those consumers).
        b.load(DataSize::Quad, v, p, 0);
        b.and(c, ctr, one);
        b.store(DataSize::Quad, c, Reg::ZERO, 0x100);
        b.load(DataSize::Quad, t, Reg::ZERO, 0x100);
        let skip = b.forward_label("skip");
        b.branch_z_to(t, &skip);
        b.add_imm(v, v, 3);
        b.place(&skip);
        b.add_imm(p, p, 4096);
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        let trace = trace_program(&b.build().unwrap(), 1_000_000).unwrap();

        let run = |engine: Engine, wheel_only: bool| {
            let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
            cfg.engine = engine;
            let mut proc = Processor::new(cfg, &trace);
            proc.set_wheel_only_scheduling(wheel_only);
            proc.try_run().expect("run completes")
        };
        let fused = run(Engine::Event, false);
        assert!(fused.flushes > 0, "no squashes: test exercises nothing");
        assert!(fused.replays > 0, "no replays: test exercises nothing");
        assert_eq!(fused, run(Engine::Event, true), "fused vs wheel-only");
        assert_eq!(fused, run(Engine::Reference, false), "event vs reference");
    }

    /// Negative path for the fused drain order: a single-cycle ALU
    /// dependency chain makes every consumer's wake arrive the same
    /// cycle it must issue, so near-ring broadcasts, ready-lane
    /// insertion and issue selection interlock cycle by cycle. Any
    /// off-by-one in the drain phases (wake delivered after issue
    /// selection, or an Exec before a same-cycle broadcast) changes the
    /// cycle count; all three scheduling shapes must agree.
    #[test]
    fn same_cycle_issue_and_wake_ordering_is_shape_invariant() {
        let mut b = ProgramBuilder::new();
        let ctr = Reg::new(1);
        b.load_imm(ctr, 200);
        for r in 2..10 {
            b.load_imm(Reg::new(r), i64::from(r));
        }
        let top = b.label("top");
        // An 8-deep chain of 1-cycle ops: each wake must land exactly
        // when its consumer selects, every cycle.
        for r in 2..9 {
            b.add_imm(Reg::new(r + 1), Reg::new(r), 1);
        }
        b.xor(Reg::new(2), Reg::new(9), Reg::new(2));
        b.add_imm(ctr, ctr, -1);
        b.branch_nz(ctr, top);
        b.halt();
        let trace = trace_program(&b.build().unwrap(), 1_000_000).unwrap();

        let run = |engine: Engine, wheel_only: bool| {
            let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
            cfg.engine = engine;
            let mut proc = Processor::new(cfg, &trace);
            proc.set_wheel_only_scheduling(wheel_only);
            proc.try_run().expect("run completes")
        };
        let fused = run(Engine::Event, false);
        assert_eq!(fused.committed, trace.len() as u64);
        assert_eq!(fused, run(Engine::Event, true), "fused vs wheel-only");
        assert_eq!(fused, run(Engine::Reference, false), "event vs reference");
    }

    /// `run_until` is cycle-exact under skip-ahead: the event engine
    /// lands on the requested cycle even when it falls mid-idle-stretch.
    #[test]
    fn run_until_lands_on_the_requested_cycle() {
        let trace = observed_workload();
        let mut cfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
        cfg.engine = Engine::Event;
        let mut p = Processor::new(cfg, &trace);
        let mut rcfg = SimConfig::with_design(SqDesign::Indexed3FwdDly);
        rcfg.engine = Engine::Reference;
        let mut r = Processor::new(rcfg, &trace);
        for limit in [13, 500, 501, 2_000] {
            let a = p.run_until(limit).expect("no deadlock");
            let b = r.run_until(limit).expect("no deadlock");
            assert_eq!(a, b);
            assert_eq!(p.cycle(), r.cycle(), "cycle mismatch at limit {limit}");
            assert_eq!(p.stats(), r.stats(), "stats mismatch at limit {limit}");
        }
    }
}
