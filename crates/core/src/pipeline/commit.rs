//! Commit: the SVW check, filtered re-execution, predictor training and
//! flush repair (the policy's verify and repair touch-points).

use sqip_isa::TraceRecord;
use sqip_types::{Seq, Ssn};

use crate::config::OrderingMode;
use crate::dyninst::InstState;
use crate::pipeline::Processor;
use crate::policy::LoadCommitInfo;

impl Processor<'_> {
    pub(crate) fn commit_stage(&mut self) {
        let mut reexec_budget = self.cfg.reexec_ports;
        for _ in 0..self.cfg.commit_width {
            let Some(&seq) = self.rob.front() else { break };
            let eligible = {
                let inst = &self.insts[&seq.0];
                inst.state == InstState::Done && inst.commit_eligible <= self.cycle
            };
            if !eligible {
                break;
            }
            let rec = *self.rec(seq);
            if rec.is_load() && !self.commit_load(seq, &rec, &mut reexec_budget) {
                break; // re-exec port stall or flush: stop committing
            }
            if rec.is_store() {
                self.commit_store(seq, &rec);
            }
            if rec.op.is_conditional() {
                self.stats.branches += 1;
            }
            self.retire(seq, &rec);
        }
    }

    /// Returns `false` if commit must stop (port stall — load stays; or a
    /// flush was triggered — load already retired inside).
    fn commit_load(&mut self, seq: Seq, rec: &TraceRecord, reexec_budget: &mut usize) -> bool {
        let span = rec.mem_addr().span(rec.size);
        let (svw, older_unknown, value, fwd) = {
            let inst = &self.insts[&seq.0];
            (
                inst.svw,
                inst.older_unknown,
                inst.value,
                inst.forwarded_from,
            )
        };
        self.stats.naive_reexec_candidates += u64::from(older_unknown);

        // SVW filter (policy touch-point): re-execute only if a store the
        // load is vulnerable to wrote its address. Under the conventional
        // LQ CAM, ordering was verified at store execution and no
        // re-execution happens at all.
        let needs_reexec =
            self.cfg.ordering == OrderingMode::SvwReexecution && self.policy.svw_newest(span) > svw;
        let mut flush = false;
        if needs_reexec {
            if *reexec_budget == 0 {
                self.stats.reexec_port_stalls += 1;
                return false;
            }
            *reexec_budget -= 1;
            self.stats.re_executions += 1;
            self.hierarchy.touch(rec.mem_addr());
            let correct = self.commit_mem.read(rec.mem_addr(), rec.size);
            debug_assert_eq!(
                correct, rec.result,
                "commit-time memory must match the golden trace"
            );
            if value != correct {
                // Mis-forwarding (or ordering violation): fix the load's
                // value from re-execution and flush everything younger.
                self.stats.mis_forwards += 1;
                let inst = self.insts.get_mut(&seq.0).expect("load in flight");
                inst.value = correct;
                self.vals.set_spec_value(seq.0, correct);
                flush = true;
            }
        }

        // Policy touch-point: commit-time training (FSP/DDP per Table 1
        // and §3.2–3.3, or original-Store-Sets violation merging).
        let info = {
            let inst = &self.insts[&seq.0];
            LoadCommitInfo {
                pc: rec.pc,
                span,
                flushed: flush,
                pred_store_pc: inst.pred_store_pc,
                ssn_fwd: inst.ssn_fwd,
                prev_store_ssn: inst.prev_store_ssn,
                was_delayed: inst.delay_gated,
                path: inst.path,
            }
        };
        self.policy.train_load_commit(&info);

        // Per-load statistics.
        self.stats.loads += 1;
        self.stats.loads_forwarded += u64::from(fwd.is_some());
        if let Some(f) = self.window.fwd(seq) {
            if f.store_dist < self.cfg.sq_size as u64 {
                self.stats.forwarding_relevant_loads += 1;
            }
        }
        let inst = &self.insts[&seq.0];
        let delay = inst.ddp_delay();
        if inst.delay_gated && delay > 0 {
            self.stats.loads_delayed += 1;
            self.stats.delay_cycles += delay;
        }

        let _ = self.lq.commit_head();
        if flush {
            self.retire(seq, rec);
            self.flush_younger(seq);
            return false;
        }
        true
    }

    fn commit_store(&mut self, seq: Seq, rec: &TraceRecord) {
        let entry = self.sq.commit_head();
        debug_assert_eq!(entry.ssn, self.insts[&seq.0].my_ssn);
        let span = rec.mem_addr().span(rec.size);
        debug_assert_eq!(
            entry.data, rec.result,
            "store data must be architecturally correct by commit"
        );
        self.commit_mem.write(rec.mem_addr(), rec.size, entry.data);
        self.hierarchy.touch(rec.mem_addr());
        // Policy touch-point: verification-structure update (SSBF/SPCT).
        self.policy.store_committed(rec.pc, span, entry.ssn);
        self.ssn_cmt = entry.ssn;
        self.stats.stores += 1;

        // Release delay-gated and partial-stalled loads waiting on stores
        // up to this SSN.
        let mut released = self.wake_on_store_commit.split_off(&(entry.ssn.0 + 1));
        std::mem::swap(&mut released, &mut self.wake_on_store_commit);
        for (_, waiters) in released {
            for w in waiters {
                self.wake_one(w, true);
            }
        }
    }

    fn retire(&mut self, seq: Seq, rec: &TraceRecord) {
        if let Some(d) = rec.dst {
            self.committed_regs[d.index()] = self.insts[&seq.0].value;
            if self.rename_map[d.index()] == Some(seq) {
                self.rename_map[d.index()] = None;
            }
        }
        let _ = self.rob.pop_front();
        self.insts.remove(&seq.0);
        self.policy.on_retire(seq);
        self.stats.committed += 1;
        self.last_commit_cycle = self.cycle;
        // Commit is in-order, so the retiring instruction is always the
        // record window's front: its record can never be re-fetched.
        self.window.pop_front();
    }

    /// Mid-window squash (LQ CAM violation): everything at or younger than
    /// `from` is squashed and refetched; older instructions stay in flight.
    pub(crate) fn squash_from(&mut self, from: Seq) {
        self.stats.flushes += 1;
        self.incarnation += 1;

        // (Value-ring slots of squashed instructions are not cleared here:
        // nothing reads a squashed slot before its re-rename resets it.)
        let squashed: Vec<u64> = self
            .insts
            .keys()
            .copied()
            .filter(|&s| s >= from.0)
            .collect();
        self.stats.squashed += squashed.len() as u64;
        for &s in &squashed {
            self.insts.remove(&s);
        }
        let keep = self.rob.iter().take_while(|&&s| s < from).count();
        self.rob.truncate(keep);
        self.ready_q.retain(|&s| s < from.0);
        self.iq_count = self
            .insts
            .values()
            .filter(|i| matches!(i.state, InstState::Waiting | InstState::Ready))
            .count();
        self.lq.squash_from(from);

        // SSNs roll back to the youngest surviving store.
        let keep_ssn = self
            .insts
            .values()
            .map(|i| i.my_ssn)
            .max()
            .unwrap_or(Ssn::NONE)
            .max(self.ssn_cmt);
        self.sq.squash_from(keep_ssn.next());
        self.ssn_ren = keep_ssn;
        // Policy touch-point: flush repair (SAT rollback, LFST clear).
        self.policy.on_flush(from);

        // Rebuild the rename map from the surviving window, oldest first.
        self.rename_map = [None; sqip_isa::NUM_REGS];
        let survivors: Vec<Seq> = self.rob.iter().copied().collect();
        for s in survivors {
            if let Some(d) = self.rec(s).dst {
                self.rename_map[d.index()] = Some(s);
            }
        }

        self.front_q.clear();
        if self.pending_redirect.is_some_and(|s| s >= from) {
            self.pending_redirect = None;
        }
        self.fetch_idx = from.0 as usize;
        self.fetch_stall_until = self.cycle + 1;
        self.draining_for_wrap = false;
    }

    /// Full pipeline flush: squash everything younger than the committing
    /// load and refetch from the next instruction.
    fn flush_younger(&mut self, from: Seq) {
        self.stats.flushes += 1;
        self.incarnation += 1;

        self.stats.squashed += self.insts.len() as u64;
        self.insts.clear();
        self.rob.clear();
        self.ready_q.clear();
        self.iq_count = 0;
        self.lq.clear();
        self.sq.clear();
        self.wake_on_value.clear();
        self.wake_on_store_exec.clear();
        self.wake_on_store_exec_strict.clear();
        self.wake_on_store_commit.clear();
        self.front_q.clear();
        self.rename_map = [None; sqip_isa::NUM_REGS];

        // All in-flight stores were squashed; the rename-time SSN counter
        // rolls back to the committed high-water mark, and the policy
        // undoes the squashed stores' speculative predictor writes.
        self.ssn_ren = self.ssn_cmt;
        self.policy.on_flush(from.next());
        self.draining_for_wrap = false;

        self.pending_redirect = None;
        self.fetch_idx = from.0 as usize + 1;
        self.fetch_stall_until = self.cycle + 1;
    }
}
