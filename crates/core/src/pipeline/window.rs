//! Bounded sliding-window state: the in-flight record buffer and the
//! per-sequence value ring.
//!
//! These two structures are what unbinds run length from memory: instead
//! of per-trace-record side vectors (`trace.len() + 1` entries), the
//! processor keeps
//!
//! * a [`RecordWindow`] holding exactly the records between the commit
//!   point and the fetch frontier (plus their pre-computed oracle info),
//!   popped as instructions retire, and
//! * a [`SeqRing`] of per-sequence speculative value state sized to the
//!   largest span the pipeline can ever reference (in-flight window +
//!   producers a consumer captured before they retired + fetch-ahead).

use sqip_isa::TraceRecord;
use sqip_types::Seq;

use crate::oracle::OracleFwd;
use crate::pipeline::NOT_READY;

/// The records currently needed by the pipeline: sequence numbers
/// `[commit point, fetch frontier)`. Squashes rewind the fetch index but
/// never discard buffered records (re-fetches replay from the buffer), so
/// each record is pulled from the trace source exactly once.
///
/// Stored as a power-of-two ring keyed by `seq & mask` (records and
/// oracle info in separate arrays, since most lookups want only the
/// record): `rec()` is the single hottest accessor in the simulator, so
/// indexing is one mask and one load, with the in-window check a debug
/// assertion. The occupancy bound is structural — commit trails the fetch
/// frontier by at most ROB + frontend queue + one fetch group — and is
/// enforced by an assertion on `push`.
#[derive(Debug)]
pub(crate) struct RecordWindow {
    /// Sequence number of the oldest buffered record.
    base: u64,
    len: usize,
    mask: u64,
    recs: Vec<TraceRecord>,
    fwds: Vec<Option<OracleFwd>>,
}

impl RecordWindow {
    pub(crate) fn new(rob_size: usize, fetch_width: usize) -> RecordWindow {
        // ROB + frontend queue (4 fetch groups) + one in-progress fetch
        // group + slack.
        let cap = (rob_size + 5 * fetch_width + 64).next_power_of_two();
        RecordWindow {
            base: 0,
            len: 0,
            mask: cap as u64 - 1,
            recs: vec![TraceRecord::default(); cap],
            fwds: vec![None; cap],
        }
    }

    /// The next sequence number to be pulled (== total records pulled).
    pub(crate) fn end(&self) -> u64 {
        self.base + self.len as u64
    }

    /// Buffered record count (the memory-boundedness observable).
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Slots still free before [`RecordWindow::push`] would overflow —
    /// the bound on how far a block fetch may pull ahead of the frontier.
    pub(crate) fn free(&self) -> usize {
        (self.mask as usize + 1) - self.len
    }

    pub(crate) fn push(&mut self, rec: TraceRecord, fwd: Option<OracleFwd>) {
        assert!(
            self.len as u64 <= self.mask,
            "record window overflow: the pipeline buffered more records \
             than the machine window can reference"
        );
        let slot = (self.end() & self.mask) as usize;
        self.recs[slot] = rec;
        self.fwds[slot] = fwd;
        self.len += 1;
    }

    /// Drops the oldest record (its instruction committed).
    pub(crate) fn pop_front(&mut self) {
        debug_assert!(self.len > 0, "popping an empty record window");
        self.len -= 1;
        self.base += 1;
    }

    #[inline]
    fn index(&self, seq: Seq) -> usize {
        debug_assert!(
            seq.0 >= self.base && seq.0 < self.end(),
            "seq {} outside the record window [{}, {})",
            seq.0,
            self.base,
            self.end()
        );
        (seq.0 & self.mask) as usize
    }

    /// The golden record for an in-window sequence number.
    #[inline]
    pub(crate) fn rec(&self, seq: Seq) -> &TraceRecord {
        &self.recs[self.index(seq)]
    }

    /// The oracle forwarding info for an in-window sequence number.
    #[inline]
    pub(crate) fn fwd(&self, seq: Seq) -> Option<OracleFwd> {
        self.fwds[self.index(seq)]
    }
}

/// Dense per-sequence value state (speculative value, readiness cycle,
/// wakeup-broadcast cycle) in a fixed ring keyed by `seq % capacity`.
///
/// A slot is reset when its sequence number enters rename; it stays
/// readable after the instruction retires, because an in-flight consumer
/// may have captured the producer at rename and read its value only at
/// execute. The capacity covers the worst-case readable span: a producer
/// is always within `rob_size` of its consumer's rename point, and the
/// fetch frontier leads the commit point by at most
/// `rob_size + fetch-ahead`, so `2·rob_size + fetch-ahead (+ slack)`
/// suffices for any run length.
#[derive(Debug)]
pub(crate) struct SeqRing {
    /// One record per slot: consumers that read a producer's readiness
    /// usually read its value in the same breath, so the three fields
    /// share a cache line instead of living in three parallel arrays.
    /// The power-of-two length makes slot indexing a `len - 1` mask (a
    /// pattern the optimiser proves in-bounds); the ring is indexed a
    /// dozen times per instruction.
    slots: Vec<SeqSlot>,
}

#[derive(Debug, Clone, Copy)]
struct SeqSlot {
    spec_value: u64,
    value_ready: u64,
    wake_time: u64,
}

const EMPTY_SLOT: SeqSlot = SeqSlot {
    spec_value: 0,
    value_ready: NOT_READY,
    wake_time: NOT_READY,
};

/// Ring capacity covering every sequence number the pipeline can still
/// reference: in-flight window + retired producers a consumer captured +
/// fetch-ahead, rounded to a power of two for mask indexing.
pub(crate) fn seq_ring_capacity(rob_size: usize, fetch_width: usize) -> usize {
    (2 * rob_size + 4 * fetch_width + 64).next_power_of_two()
}

impl SeqRing {
    pub(crate) fn new(rob_size: usize, fetch_width: usize) -> SeqRing {
        let cap = seq_ring_capacity(rob_size, fetch_width);
        SeqRing {
            slots: vec![EMPTY_SLOT; cap],
        }
    }

    #[inline]
    fn slot(&self, seq: u64) -> usize {
        (seq as usize) & (self.slots.len() - 1)
    }

    /// Clears a sequence number's slot as it enters rename (covers both
    /// ring reuse by a far-younger instruction and re-rename after a
    /// squash).
    pub(crate) fn reset(&mut self, seq: u64) {
        let s = self.slot(seq);
        self.slots[s] = EMPTY_SLOT;
    }

    pub(crate) fn spec_value(&self, seq: u64) -> u64 {
        self.slots[self.slot(seq)].spec_value
    }

    pub(crate) fn set_spec_value(&mut self, seq: u64, v: u64) {
        let s = self.slot(seq);
        self.slots[s].spec_value = v;
    }

    pub(crate) fn value_ready(&self, seq: u64) -> u64 {
        self.slots[self.slot(seq)].value_ready
    }

    pub(crate) fn set_value_ready(&mut self, seq: u64, cycle: u64) {
        let s = self.slot(seq);
        self.slots[s].value_ready = cycle;
    }

    pub(crate) fn wake_time(&self, seq: u64) -> u64 {
        self.slots[self.slot(seq)].wake_time
    }

    pub(crate) fn set_wake_time(&mut self, seq: u64, cycle: u64) {
        let s = self.slot(seq);
        self.slots[s].wake_time = cycle;
    }
}

sqip_snapshot::snapshot_struct!(SeqSlot {
    spec_value,
    value_ready,
    wake_time,
});

impl sqip_snapshot::Snapshot for RecordWindow {
    fn save(&self, w: &mut sqip_snapshot::SnapWriter) -> Result<(), sqip_snapshot::SnapError> {
        self.base.save(w)?;
        self.len.save(w)?;
        self.mask.save(w)?;
        self.recs.save(w)?;
        self.fwds.save(w)
    }
    fn load(r: &mut sqip_snapshot::SnapReader) -> Result<RecordWindow, sqip_snapshot::SnapError> {
        let base = u64::load(r)?;
        let len = usize::load(r)?;
        let mask = u64::load(r)?;
        let recs = Vec::<TraceRecord>::load(r)?;
        let fwds = Vec::<Option<OracleFwd>>::load(r)?;
        let cap = mask.wrapping_add(1);
        if !cap.is_power_of_two()
            || recs.len() as u64 != cap
            || fwds.len() as u64 != cap
            || len as u64 > cap
        {
            return Err(sqip_snapshot::SnapError::Corrupt(format!(
                "record window: mask {mask:#x}, {} records, {} oracle slots, len {len}",
                recs.len(),
                fwds.len()
            )));
        }
        Ok(RecordWindow {
            base,
            len,
            mask,
            recs,
            fwds,
        })
    }
}

impl sqip_snapshot::Snapshot for SeqRing {
    fn save(&self, w: &mut sqip_snapshot::SnapWriter) -> Result<(), sqip_snapshot::SnapError> {
        self.slots.save(w)
    }
    fn load(r: &mut sqip_snapshot::SnapReader) -> Result<SeqRing, sqip_snapshot::SnapError> {
        let slots = Vec::<SeqSlot>::load(r)?;
        if !slots.len().is_power_of_two() {
            return Err(sqip_snapshot::SnapError::Corrupt(format!(
                "sequence ring of {} slots (want a power of two)",
                slots.len()
            )));
        }
        Ok(SeqRing { slots })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_window_slides() {
        let mut w = RecordWindow::new(4, 1);
        assert_eq!(w.end(), 0);
        let rec = |seq: u64| {
            let mut b = sqip_isa::ProgramBuilder::new();
            b.halt();
            let t = sqip_isa::trace_program(&b.build().unwrap(), 10).unwrap();
            let mut r = t.records()[0];
            r.seq = Seq(seq);
            r
        };
        w.push(rec(0), None);
        w.push(rec(1), None);
        assert_eq!(w.end(), 2);
        assert_eq!(w.rec(Seq(1)).seq, Seq(1));
        w.pop_front();
        assert_eq!(w.len(), 1);
        assert_eq!(w.end(), 2, "end() is monotonic across pops");
        assert_eq!(w.rec(Seq(1)).seq, Seq(1));
    }

    #[test]
    fn record_window_pops_each_record_exactly_once() {
        // A squash rewinds the *fetch index*, never the window: re-fetches
        // replay buffered records, and only in-order commit pops. The
        // exactly-once invariant is that `pop_front` retires seq `base`,
        // `base` is monotonic, and a record stays readable (for re-fetch)
        // from push until its own pop — no earlier, no later.
        let mut w = RecordWindow::new(4, 1);
        let rec = |seq: u64| {
            let mut b = sqip_isa::ProgramBuilder::new();
            b.halt();
            let t = sqip_isa::trace_program(&b.build().unwrap(), 10).unwrap();
            let mut r = t.records()[0];
            r.seq = Seq(seq);
            r
        };
        for s in 0..6 {
            w.push(rec(s), None);
        }
        // Squash-style re-read: every buffered record is still addressable
        // (a rewound fetch index replays from the buffer, not the source).
        for s in 0..6 {
            assert_eq!(w.rec(Seq(s)).seq, Seq(s));
        }
        // Commit pops 0..3; their slots leave the readable window while
        // the survivors stay re-fetchable.
        for s in 0..3 {
            assert_eq!(w.rec(Seq(s)).seq, Seq(s), "readable until popped");
            w.pop_front();
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.end(), 6, "end() never rewinds");
        for s in 3..6 {
            assert_eq!(w.rec(Seq(s)).seq, Seq(s), "survivors re-fetchable");
        }
        // Ring reuse after pops: new pushes land in freed slots and the
        // window keeps sliding — 6 pushed + 6 more = 12 total, 3 popped.
        for s in 6..12 {
            w.push(rec(s), None);
        }
        assert_eq!(w.end(), 12);
        assert_eq!(w.len(), 9);
        assert_eq!(w.rec(Seq(11)).seq, Seq(11));
    }

    #[test]
    #[should_panic(expected = "record window overflow")]
    fn record_window_rejects_overflow() {
        let mut w = RecordWindow::new(1, 1);
        let mut b = sqip_isa::ProgramBuilder::new();
        b.halt();
        let t = sqip_isa::trace_program(&b.build().unwrap(), 10).unwrap();
        let r = t.records()[0];
        // Capacity is (rob + 5*fetch + 64).next_power_of_two() = 128 for
        // this geometry; the 129th un-popped push must be refused loudly
        // rather than silently overwrite the commit point.
        for s in 0..200 {
            let mut rec = r;
            rec.seq = Seq(s);
            w.push(rec, None);
        }
    }

    #[test]
    fn seq_ring_reset_clears_stale_incarnation_at_squash_refetch() {
        // A squash leaves the squashed sequence numbers' slots dirty (by
        // design — nothing reads them before re-rename); the re-fetch of
        // the *same* sequence number must start from a clean slot the
        // moment rename resets it, or the re-fetched incarnation would
        // see its predecessor's value/readiness.
        let mut r = SeqRing::new(8, 2);
        r.reset(5);
        r.set_spec_value(5, 0xDEAD);
        r.set_value_ready(5, 42);
        r.set_wake_time(5, 40);
        // Squash: seq 5's in-flight state is abandoned mid-execution.
        // Re-fetch re-renames the same seq; rename's reset must clear all
        // three fields.
        r.reset(5);
        assert_eq!(r.spec_value(5), 0);
        assert_eq!(r.value_ready(5), NOT_READY);
        assert_eq!(r.wake_time(5), NOT_READY);
    }

    #[test]
    fn seq_ring_wraparound_across_many_laps() {
        // Long streamed runs lap the ring many times; each lap's tenant
        // must be isolated by its rename-time reset alone.
        let mut r = SeqRing::new(4, 1);
        let cap = r.slots.len() as u64;
        for lap in 0..5u64 {
            let seq = 3 + lap * cap; // same slot every lap
            r.reset(seq);
            assert_eq!(r.spec_value(seq), 0, "lap {lap} starts clean");
            r.set_spec_value(seq, lap + 1);
            r.set_value_ready(seq, 10 * (lap + 1));
            assert_eq!(r.spec_value(seq), lap + 1);
            assert_eq!(r.value_ready(seq), 10 * (lap + 1));
        }
    }

    #[test]
    fn seq_ring_isolates_distant_sequences() {
        let mut r = SeqRing::new(4, 1);
        let cap = r.slots.len() as u64;
        r.reset(3);
        r.set_spec_value(3, 77);
        r.set_value_ready(3, 10);
        assert_eq!(r.spec_value(3), 77);
        assert_eq!(r.value_ready(3), 10);
        // The slot's next tenant starts clean after its rename-time reset.
        r.reset(3 + cap);
        assert_eq!(r.spec_value(3 + cap), 0);
        assert_eq!(r.value_ready(3 + cap), NOT_READY);
        assert_eq!(r.wake_time(3 + cap), NOT_READY);
    }
}
