//! Bounded sliding-window state: the in-flight record buffer and the
//! per-sequence value ring.
//!
//! These two structures are what unbinds run length from memory: instead
//! of per-trace-record side vectors (`trace.len() + 1` entries), the
//! processor keeps
//!
//! * a [`RecordWindow`] holding exactly the records between the commit
//!   point and the fetch frontier (plus their pre-computed oracle info),
//!   popped as instructions retire, and
//! * a [`SeqRing`] of per-sequence speculative value state sized to the
//!   largest span the pipeline can ever reference (in-flight window +
//!   producers a consumer captured before they retired + fetch-ahead).

use std::collections::VecDeque;

use sqip_isa::TraceRecord;
use sqip_types::Seq;

use crate::oracle::OracleFwd;
use crate::pipeline::NOT_READY;

/// The records currently needed by the pipeline: sequence numbers
/// `[commit point, fetch frontier)`. Squashes rewind the fetch index but
/// never discard buffered records (re-fetches replay from the buffer), so
/// each record is pulled from the trace source exactly once.
#[derive(Debug, Default)]
pub(crate) struct RecordWindow {
    /// Sequence number of `buf`'s front element.
    base: u64,
    buf: VecDeque<(TraceRecord, Option<OracleFwd>)>,
}

impl RecordWindow {
    /// The next sequence number to be pulled (== total records pulled).
    pub(crate) fn end(&self) -> u64 {
        self.base + self.buf.len() as u64
    }

    /// Buffered record count (the memory-boundedness observable).
    pub(crate) fn len(&self) -> usize {
        self.buf.len()
    }

    pub(crate) fn push(&mut self, rec: TraceRecord, fwd: Option<OracleFwd>) {
        self.buf.push_back((rec, fwd));
    }

    /// Drops the oldest record (its instruction committed).
    pub(crate) fn pop_front(&mut self) {
        debug_assert!(!self.buf.is_empty(), "popping an empty record window");
        self.buf.pop_front();
        self.base += 1;
    }

    fn index(&self, seq: Seq) -> usize {
        debug_assert!(
            seq.0 >= self.base && seq.0 < self.end(),
            "seq {} outside the record window [{}, {})",
            seq.0,
            self.base,
            self.end()
        );
        (seq.0 - self.base) as usize
    }

    /// The golden record for an in-window sequence number.
    pub(crate) fn rec(&self, seq: Seq) -> &TraceRecord {
        &self.buf[self.index(seq)].0
    }

    /// The oracle forwarding info for an in-window sequence number.
    pub(crate) fn fwd(&self, seq: Seq) -> Option<OracleFwd> {
        self.buf[self.index(seq)].1
    }
}

/// Dense per-sequence value state (speculative value, readiness cycle,
/// wakeup-broadcast cycle) in a fixed ring keyed by `seq % capacity`.
///
/// A slot is reset when its sequence number enters rename; it stays
/// readable after the instruction retires, because an in-flight consumer
/// may have captured the producer at rename and read its value only at
/// execute. The capacity covers the worst-case readable span: a producer
/// is always within `rob_size` of its consumer's rename point, and the
/// fetch frontier leads the commit point by at most
/// `rob_size + fetch-ahead`, so `2·rob_size + fetch-ahead (+ slack)`
/// suffices for any run length.
#[derive(Debug)]
pub(crate) struct SeqRing {
    cap: usize,
    spec_value: Vec<u64>,
    value_ready: Vec<u64>,
    wake_time: Vec<u64>,
}

impl SeqRing {
    pub(crate) fn new(rob_size: usize, fetch_width: usize) -> SeqRing {
        let cap = 2 * rob_size + 4 * fetch_width + 64;
        SeqRing {
            cap,
            spec_value: vec![0; cap],
            value_ready: vec![NOT_READY; cap],
            wake_time: vec![NOT_READY; cap],
        }
    }

    fn slot(&self, seq: u64) -> usize {
        (seq % self.cap as u64) as usize
    }

    /// Clears a sequence number's slot as it enters rename (covers both
    /// ring reuse by a far-younger instruction and re-rename after a
    /// squash).
    pub(crate) fn reset(&mut self, seq: u64) {
        let s = self.slot(seq);
        self.spec_value[s] = 0;
        self.value_ready[s] = NOT_READY;
        self.wake_time[s] = NOT_READY;
    }

    pub(crate) fn spec_value(&self, seq: u64) -> u64 {
        self.spec_value[self.slot(seq)]
    }

    pub(crate) fn set_spec_value(&mut self, seq: u64, v: u64) {
        let s = self.slot(seq);
        self.spec_value[s] = v;
    }

    pub(crate) fn value_ready(&self, seq: u64) -> u64 {
        self.value_ready[self.slot(seq)]
    }

    pub(crate) fn set_value_ready(&mut self, seq: u64, cycle: u64) {
        let s = self.slot(seq);
        self.value_ready[s] = cycle;
    }

    pub(crate) fn wake_time(&self, seq: u64) -> u64 {
        self.wake_time[self.slot(seq)]
    }

    pub(crate) fn set_wake_time(&mut self, seq: u64, cycle: u64) {
        let s = self.slot(seq);
        self.wake_time[s] = cycle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_window_slides() {
        let mut w = RecordWindow::default();
        assert_eq!(w.end(), 0);
        let rec = |seq: u64| {
            let mut b = sqip_isa::ProgramBuilder::new();
            b.halt();
            let t = sqip_isa::trace_program(&b.build().unwrap(), 10).unwrap();
            let mut r = t.records()[0];
            r.seq = Seq(seq);
            r
        };
        w.push(rec(0), None);
        w.push(rec(1), None);
        assert_eq!(w.end(), 2);
        assert_eq!(w.rec(Seq(1)).seq, Seq(1));
        w.pop_front();
        assert_eq!(w.len(), 1);
        assert_eq!(w.end(), 2, "end() is monotonic across pops");
        assert_eq!(w.rec(Seq(1)).seq, Seq(1));
    }

    #[test]
    fn seq_ring_isolates_distant_sequences() {
        let mut r = SeqRing::new(4, 1);
        let cap = r.cap as u64;
        r.reset(3);
        r.set_spec_value(3, 77);
        r.set_value_ready(3, 10);
        assert_eq!(r.spec_value(3), 77);
        assert_eq!(r.value_ready(3), 10);
        // The slot's next tenant starts clean after its rename-time reset.
        r.reset(3 + cap);
        assert_eq!(r.spec_value(3 + cap), 0);
        assert_eq!(r.value_ready(3 + cap), NOT_READY);
        assert_eq!(r.wake_time(3 + cap), NOT_READY);
    }
}
