//! Observation hooks into a running simulation.

use crate::config::SimConfig;
use crate::stats::SimStats;

/// What an observer wants the simulation to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObserverAction {
    /// Keep simulating.
    Continue,
    /// Stop now; [`crate::Processor::run_observed`] returns the statistics
    /// accumulated so far (with `committed < trace.len()`).
    Abort,
}

/// Callbacks fired by [`crate::Processor::run_observed`].
///
/// Implementations can report progress, sample per-interval statistics, or
/// abort a run early (e.g. fast-forward sampling, wall-clock budgets).
/// All methods have no-op defaults, so an observer only implements what it
/// needs.
///
/// # Example
///
/// ```
/// use sqip_core::{ObserverAction, Processor, SimConfig, SimObserver, SimStats, SqDesign};
/// use sqip_isa::{trace_program, ProgramBuilder, Reg};
/// use sqip_types::DataSize;
///
/// struct Progress {
///     samples: u64,
/// }
///
/// impl SimObserver for Progress {
///     fn interval(&self) -> u64 {
///         1_000
///     }
///     fn on_interval(&mut self, _cycle: u64, _stats: &SimStats) -> ObserverAction {
///         self.samples += 1;
///         ObserverAction::Continue
///     }
/// }
///
/// let mut b = ProgramBuilder::new();
/// let (ctr, v) = (Reg::new(1), Reg::new(2));
/// b.load_imm(ctr, 2_000);
/// let top = b.label("top");
/// b.store(DataSize::Quad, v, Reg::ZERO, 0x100);
/// b.load(DataSize::Quad, v, Reg::ZERO, 0x100);
/// b.add_imm(ctr, ctr, -1);
/// b.branch_nz(ctr, top);
/// b.halt();
/// let trace = trace_program(&b.build()?, 100_000)?;
///
/// let mut progress = Progress { samples: 0 };
/// let stats = Processor::new(SimConfig::default(), &trace).run_observed(&mut progress)?;
/// assert_eq!(stats.committed, trace.len() as u64);
/// assert_eq!(progress.samples, (stats.cycles - 1) / 1_000);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub trait SimObserver {
    /// Cycles between [`SimObserver::on_interval`] callbacks.
    fn interval(&self) -> u64 {
        100_000
    }

    /// Fired once before the first cycle. `trace_len` is the exact total
    /// record count when the input declares one up front (materialized
    /// traces); streaming sources of unknown length pass `None`.
    fn on_start(&mut self, _config: &SimConfig, _trace_len: Option<usize>) {}

    /// Fired every [`SimObserver::interval`] cycles with a consistent
    /// statistics snapshot. Return [`ObserverAction::Abort`] to stop the
    /// run early.
    fn on_interval(&mut self, _cycle: u64, _stats: &SimStats) -> ObserverAction {
        ObserverAction::Continue
    }

    /// Fired once when the trace fully commits (not on early abort).
    fn on_finish(&mut self, _stats: &SimStats) {}
}
