//! Simulation statistics — every number the paper's tables and figures
//! report, plus diagnostics.

use sqip_mem::CacheStats;

use serde::{Deserialize, Serialize};

/// Counters and derived metrics from one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub committed: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Committed branches (conditional only).
    pub branches: u64,
    /// Conditional branch direction mispredictions.
    pub branch_mispredicts: u64,
    /// Return-address mispredictions.
    pub return_mispredicts: u64,

    /// Loads whose architectural producing store was within SQ-size dynamic
    /// stores at commit — the "load forwarding rate" population of Table 3.
    pub forwarding_relevant_loads: u64,
    /// Loads that actually obtained their value from the SQ.
    pub loads_forwarded: u64,
    /// Loads that obtained a *wrong* value, detected by re-execution
    /// (each costs a pipeline flush) — "mis-forwardings".
    pub mis_forwards: u64,
    /// Pipeline flushes (mis-forwardings + ordering violations; same
    /// mechanism detects both).
    pub flushes: u64,
    /// Dynamic instructions squashed by flushes (lost work).
    pub squashed: u64,

    /// Loads whose execution was delayed by the delay index predictor.
    pub loads_delayed: u64,
    /// Total cycles of DDP-induced delay across delayed loads.
    pub delay_cycles: u64,
    /// Loads stalled on a partial (non-containing) SQ overlap.
    pub partial_stalls: u64,

    /// Loads re-executed before commit (SVW-filtered).
    pub re_executions: u64,
    /// Loads that the *unfiltered* Cain–Lipasti rule (executed in the
    /// presence of an older store with unknown address) would re-execute —
    /// for the §2 ablation (≈9% SPECint unfiltered vs ≈1% with SVW).
    pub naive_reexec_candidates: u64,
    /// Commit-stage stalls because re-execution ports were exhausted.
    pub reexec_port_stalls: u64,

    /// Dependent-instruction replays (scheduler mis-speculation on load
    /// latency: cache misses, or forwarding on a slow associative SQ).
    pub replays: u64,
    /// SSN wrap-around pipeline drains.
    pub ssn_wraps: u64,

    /// L1 data cache statistics.
    pub l1: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// TLB statistics.
    pub tlb: CacheStats,
}

impl SimStats {
    /// Committed instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Percentage of dynamic loads that are forwarding-relevant
    /// (Table 3, "%load forward").
    #[must_use]
    pub fn pct_loads_forwarding(&self) -> f64 {
        percent(self.forwarding_relevant_loads, self.loads)
    }

    /// Mis-forwardings per 1000 dynamic loads (Table 3, "mis-forward/1000").
    #[must_use]
    pub fn mis_forwards_per_1000(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.mis_forwards as f64 * 1000.0 / self.loads as f64
        }
    }

    /// Percentage of dynamic loads delayed by the DDP (Table 3, "%load
    /// delay").
    #[must_use]
    pub fn pct_loads_delayed(&self) -> f64 {
        percent(self.loads_delayed, self.loads)
    }

    /// Average delay cycles per *delayed* load (Table 3, "avg. delay
    /// cycles").
    #[must_use]
    pub fn avg_delay_cycles(&self) -> f64 {
        if self.loads_delayed == 0 {
            0.0
        } else {
            self.delay_cycles as f64 / self.loads_delayed as f64
        }
    }

    /// Fraction of loads re-executed (the SVW filter's figure of merit).
    #[must_use]
    pub fn pct_loads_reexecuted(&self) -> f64 {
        percent(self.re_executions, self.loads)
    }

    /// Fraction of loads the unfiltered rule would re-execute.
    #[must_use]
    pub fn pct_loads_naive_reexec(&self) -> f64 {
        percent(self.naive_reexec_candidates, self.loads)
    }

    /// Conditional branch misprediction rate, in percent.
    #[must_use]
    pub fn branch_mispredict_rate(&self) -> f64 {
        percent(self.branch_mispredicts, self.branches)
    }
}

sqip_snapshot::snapshot_struct!(SimStats {
    cycles,
    committed,
    loads,
    stores,
    branches,
    branch_mispredicts,
    return_mispredicts,
    forwarding_relevant_loads,
    loads_forwarded,
    mis_forwards,
    flushes,
    squashed,
    loads_delayed,
    delay_cycles,
    partial_stalls,
    re_executions,
    naive_reexec_candidates,
    reexec_port_stalls,
    replays,
    ssn_wraps,
    l1,
    l2,
    tlb,
});

fn percent(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 * 100.0 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            cycles: 100,
            committed: 250,
            loads: 1000,
            forwarding_relevant_loads: 129,
            mis_forwards: 3,
            loads_delayed: 23,
            delay_cycles: 1219,
            re_executions: 10,
            branches: 50,
            branch_mispredicts: 2,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.pct_loads_forwarding() - 12.9).abs() < 1e-12);
        assert!((s.mis_forwards_per_1000() - 3.0).abs() < 1e-12);
        assert!((s.pct_loads_delayed() - 2.3).abs() < 1e-12);
        assert!((s.avg_delay_cycles() - 53.0).abs() < 1e-9);
        assert!((s.pct_loads_reexecuted() - 1.0).abs() < 1e-12);
        assert!((s.branch_mispredict_rate() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.pct_loads_forwarding(), 0.0);
        assert_eq!(s.mis_forwards_per_1000(), 0.0);
        assert_eq!(s.avg_delay_cycles(), 0.0);
    }
}

#[cfg(test)]
mod derived_tests {
    use super::*;

    #[test]
    fn table3_row_shape_for_the_paper_average() {
        // The paper's All.avg row: 12.9% forwarding, 1.8 then 0.3
        // mis-forwards per 1000, 2.3% delayed at 53.1 cycles — verify the
        // metric plumbing reconstructs a row like that exactly.
        let s = SimStats {
            loads: 100_000,
            forwarding_relevant_loads: 12_900,
            mis_forwards: 30,
            loads_delayed: 2_300,
            delay_cycles: 122_130,
            ..SimStats::default()
        };
        assert!((s.pct_loads_forwarding() - 12.9).abs() < 1e-9);
        assert!((s.mis_forwards_per_1000() - 0.3).abs() < 1e-9);
        assert!((s.pct_loads_delayed() - 2.3).abs() < 1e-9);
        assert!((s.avg_delay_cycles() - 53.1).abs() < 1e-9);
    }

    #[test]
    fn reexec_rates_are_percentages_of_loads() {
        let s = SimStats {
            loads: 200,
            re_executions: 2,
            naive_reexec_candidates: 18,
            ..SimStats::default()
        };
        assert!((s.pct_loads_reexecuted() - 1.0).abs() < 1e-9);
        assert!(
            (s.pct_loads_naive_reexec() - 9.0).abs() < 1e-9,
            "the paper's 9% vs 1% contrast"
        );
    }
}
