//! `sqip-core` — a cycle-level out-of-order processor implementing
//! **store-load forwarding via store queue index prediction** (Sha, Martin
//! & Roth, MICRO-38, 2005), together with every baseline the paper
//! compares against.
//!
//! # What this crate models
//!
//! An 8-way, 512-entry-window, 19-stage dynamically scheduled processor
//! whose load/store unit is an open, pluggable design axis: each
//! [`SqDesign`] name resolves through the [`DesignRegistry`] to a
//! [`ForwardingPolicy`] object owning the design's predictor state and
//! pipeline decisions (see the [`policy`] module). Pre-registered:
//!
//! | [`SqDesign`] | SQ access | latency | scheduling |
//! |---|---|---|---|
//! | `ideal-oracle` | associative | 3 | oracle |
//! | `associative-3-storesets` | associative | 3 | original SSIT/LFST Store Sets |
//! | `associative-3` | associative | 3 | FSP/SAT (reformulated Store Sets) |
//! | `associative-5-replay` | associative | 5 | FSP/SAT, optimistic 3-cycle wakeup |
//! | `associative-5-fwdpred` | associative | 5 | FSP/SAT, forward-predicted wakeup |
//! | `indexed-3-fwd` | **indexed** | 3 | forwarding index prediction |
//! | `indexed-3-fwd+dly` | **indexed** | 3 | forwarding + delay index prediction |
//! | `indexed-5-fwd+dly` | **indexed** | 5 | the indexed scheme at a slow SQ (registry extension) |
//!
//! Memory ordering and forwarding mis-speculation are verified by
//! SVW-filtered in-order pre-commit load re-execution, which also trains
//! the predictors — exactly the paper's mechanism.
//!
//! # Quick start
//!
//! ```
//! use sqip_core::{Processor, SimConfig, SqDesign};
//! use sqip_isa::{trace_program, ProgramBuilder, Reg};
//! use sqip_types::DataSize;
//!
//! // A store-load forwarding loop.
//! let mut b = ProgramBuilder::new();
//! let (ctr, v, t) = (Reg::new(1), Reg::new(2), Reg::new(3));
//! b.load_imm(ctr, 100);
//! b.load_imm(v, 7);
//! let top = b.label("top");
//! b.store(DataSize::Quad, v, Reg::ZERO, 0x100);
//! b.load(DataSize::Quad, t, Reg::ZERO, 0x100);
//! b.add_imm(ctr, ctr, -1);
//! b.branch_nz(ctr, top);
//! b.halt();
//! let trace = trace_program(&b.build()?, 10_000)?;
//!
//! let stats = Processor::new(SimConfig::with_design(SqDesign::Indexed3FwdDly), &trace).run();
//! assert_eq!(stats.committed, trace.len() as u64);
//! assert!(stats.loads_forwarded > 0, "the indexed SQ forwards");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dyninst;
mod error;
mod observer;
mod oracle;
mod pipeline;
pub mod policy;
mod shared;
mod stats;

pub use config::{
    Engine, IssueMix, OpLatencies, OrderingMode, ParseDesignError, SimConfig, SqDesign,
};
pub use error::SimError;
pub use observer::{ObserverAction, SimObserver};
pub use oracle::{OracleBuilder, OracleFwd, OracleInfo};
pub use pipeline::{EvKind, Processor, StepOutcome};
pub use shared::{oracle_tap, OracleFeed, OracleTap};

/// Building blocks of the event-driven engine, exposed for
/// documentation, benchmarking and reuse.
///
/// The central type is [`engine::EventWheel`] — the O(1) replacement for
/// the reference engine's event heap; [`EvKind`] names the event kinds
/// it carries. Engine selection is a configuration knob
/// ([`SimConfig::engine`], an [`Engine`]), not a compile-time feature,
/// so the differential tests and the `perf` harness can run both cores
/// in one process.
pub mod engine {
    pub use crate::pipeline::event::{EventWheel, SchedCounters, WheelEvent, FETCH_BLOCK};
}
pub use policy::{
    BuiltinPolicy, DesignCaps, DesignRegistry, ForwardingPolicy, LoadCommitInfo, LoadRename,
    OracleHint, PipelineView, RegistryError, SqProbe,
};
pub use stats::SimStats;
